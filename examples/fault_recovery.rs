//! Graceful degradation under a hung accelerator (the duet-verify demo).
//!
//! The paper's safety claim is that the Duet adapters keep the manycore
//! correct *regardless of what the eFPGA-mapped kernel does*. This example
//! injects an `accel_hang` fault into an FPSoC-like instance running the
//! popcount accelerator and shows both halves of that claim:
//!
//! 1. **With degradation enabled** (a `DegradeConfig` on the fault plan):
//!    the adapter watchdog notices the fabric making no progress, fences
//!    the design, fails the blocked MMIO read with the BOGUS error status,
//!    and the driver program falls back to a software byte-LUT popcount.
//!    The run completes — `RunError` never surfaces — and the final answer
//!    is still correct.
//! 2. **With degradation disabled**: the same fault wedges the run, and
//!    `run_until_halt` returns `RunError::Deadlock` whose stall snapshot
//!    names the hung accelerator instead of panicking.
//!
//! Run: `cargo run --release -p duet-examples --bin fault_recovery`

use std::sync::Arc;

use duet_core::{control_hub::error_codes, RegMode, BOGUS};
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{DegradeConfig, FaultKind, FaultPlan, FaultSpec, RunError, System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

const VEC_ADDR: u64 = 0x1_0000;
const LUT_ADDR: u64 = 0x4_0000;
const OUT_ADDR: u64 = 0x2_0000;

/// Builds the FPSoC popcount system with the given fault plan installed.
///
/// The driver program invokes the accelerator through MMIO and checks the
/// result register for the BOGUS error status: on error it recomputes the
/// popcount in software (the byte-LUT loop the processor-only baseline
/// uses) — the fenced accelerator degrades to the software path instead of
/// wedging the core.
fn build(faults: FaultPlan) -> System {
    let mut cfg = SystemConfig::fpsoc(1, 1, 100.0);
    cfg.faults = faults;
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(false)));

    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(VEC_ADDR, &data);
    let lut: Vec<u8> = (0..=255u8).map(|b| b.count_ones() as u8).collect();
    sys.poke_bytes(LUT_ADDR, &lut);

    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], VEC_ADDR as i64);
    a.sd(regs::T[1], regs::T[0], 0); // invoke the accelerator
    a.ld(regs::T[2], regs::T[0], 8); // blocking result read
    a.li(regs::T[4], BOGUS as i64);
    a.beq(regs::T[2], regs::T[4], "software"); // fenced -> fall back
    a.j("store");
    // Software fallback: byte-LUT popcount over the 64-byte vector.
    a.label("software");
    a.li(regs::S[0], VEC_ADDR as i64);
    a.li(regs::S[1], LUT_ADDR as i64);
    a.li(regs::T[2], 0); // count
    a.li(regs::S[2], 0); // i
    a.label("byte");
    a.add(regs::T[5], regs::S[0], regs::S[2]);
    a.lbu(regs::T[6], regs::T[5], 0);
    a.add(regs::T[5], regs::S[1], regs::T[6]);
    a.lbu(regs::T[6], regs::T[5], 0);
    a.add(regs::T[2], regs::T[2], regs::T[6]);
    a.addi(regs::S[2], regs::S[2], 1);
    a.li(regs::T[5], 64);
    a.blt(regs::S[2], regs::T[5], "byte");
    a.label("store");
    a.li(regs::T[3], OUT_ADDR as i64);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().expect("static program")), "main");
    sys
}

fn main() {
    let expected: u64 = (0..64u32)
        .map(|i| u64::from(((i * 37 + 11) as u8).count_ones()))
        .sum();
    // The kernel is wedged from power-on and never recovers: the fabric
    // accepts the MMIO invocation but no design logic ever ticks.
    let hang = FaultSpec::starting(FaultKind::AccelHang, Time::from_us(0));

    // --- Leg 1: degradation on — fence after 20 us without progress. ---
    println!("== leg 1: accel_hang with graceful degradation ==");
    let plan = FaultPlan::empty().with(hang).with_degrade(DegradeConfig {
        fence_after: Time::from_us(20),
    });
    let mut sys = build(plan);
    match sys.run_until_halt(Time::from_us(2_000)) {
        Ok(t) => println!("run completed at {t} (RunError never surfaced)"),
        Err(e) => panic!("degraded run must complete, got:\n{e}"),
    }
    sys.quiesce(Time::from_us(3_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let got = sys.peek_u64(OUT_ADDR);
    println!("popcount = {got} (expected {expected}) via software fallback");
    assert_eq!(got, expected, "software fallback must be correct");
    assert!(sys.accel_fenced(), "the hung design must be fenced");
    assert_eq!(
        sys.adapter().control.error_code(),
        error_codes::ACCEL_FENCED,
        "the Control Hub must report the fence to the driver"
    );
    println!(
        "fenced: yes, faults injected: {}, checker violations: {}",
        sys.faults_injected(),
        sys.checker_violations()
    );

    // --- Leg 2: same fault, no degradation policy — clean deadlock. ---
    println!();
    println!("== leg 2: accel_hang without degradation ==");
    let mut sys = build(FaultPlan::empty().with(hang));
    match sys.run_until_halt(Time::from_us(2_000)) {
        Ok(t) => panic!("run must deadlock without degradation, halted at {t}"),
        Err(RunError::Deadlock { snapshot, .. }) => {
            println!("deadlock detected, stall snapshot:");
            println!("{}", snapshot.report());
            assert!(
                snapshot.notes.iter().any(|n| n.contains("popcount")),
                "snapshot must name the hung accelerator"
            );
        }
        Err(e) => panic!("expected a deadlock, got:\n{e}"),
    }
    println!("ok: fenced fallback completes, unfenced hang is a structured RunError");
}
