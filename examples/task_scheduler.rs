//! Hardware augmentation showcase (Sec. III-B): an eFPGA-emulated task
//! scheduler driving a parallel discrete-event simulation of a digital
//! circuit, versus the MCS/spin-locked software event queue.
//!
//! Run: `cargo run --release -p duet-examples --bin task_scheduler`

use duet_workloads::common::BenchVariant;
use duet_workloads::pdes::{self, Circuit};

fn main() {
    let (width, layers) = (8u32, 5u32);
    let c = Circuit::generate(width, layers, 99);
    let out = c.eval_ref();
    println!(
        "circuit: {width} gates/layer x {layers} layers ({} gates incl. primary inputs)",
        c.total_gates()
    );
    println!(
        "final layer outputs: {:?}",
        &out[(layers * width) as usize..]
    );

    println!("\nconservative PDES on 4 workers:");
    let base = pdes::run(BenchVariant::ProcOnly, 4, width, layers, 99);
    println!(
        "  locked software queue : {:>10}   correct={}",
        base.runtime, base.correct
    );
    let duet = pdes::run(BenchVariant::Duet, 4, width, layers, 99);
    println!(
        "  hardware scheduler    : {:>10}   correct={}   speedup {:.2}x",
        duet.runtime,
        duet.correct,
        duet.speedup_over(&base)
    );
    println!(
        "\nthe widget is application-agnostic: processors push event pointers\n\
         into an FPGA-bound FIFO; the scheduler fetches records through its\n\
         Memory Hub, orders them, and releases ready events through a token\n\
         FIFO (the non-blocking try_join of Sec. II-F)."
    );
}
