//! Fine-grained acceleration showcase (Sec. III-A): the Barnes-Hut N-body
//! force phase on four processors, with the force kernels offloaded to a
//! pipelined eFPGA accelerator that the threads time-multiplex.
//!
//! Run: `cargo run --release -p duet-examples --bin barnes_hut`

use duet_workloads::barnes_hut::{self, build_octree, forces_ref, generate};
use duet_workloads::common::BenchVariant;

fn main() {
    let n = 32;
    let particles = generate(n, 2026);
    let nodes = build_octree(&particles);
    println!(
        "Barnes-Hut: {n} particles, {} octree nodes, theta^2 = {}",
        nodes.len(),
        barnes_hut::THETA2
    );
    let fr = forces_ref(&particles, &nodes);
    println!(
        "reference force on particle 0: [{:+.4}, {:+.4}, {:+.4}]",
        fr[0][0], fr[0][1], fr[0][2]
    );

    println!("\nrunning the force phase on three system variants (P4M1)...");
    let base = barnes_hut::run(BenchVariant::ProcOnly, 4, n, 2026);
    println!(
        "  processor-only : {:>10}   correct={}",
        base.runtime, base.correct
    );
    let duet = barnes_hut::run(BenchVariant::Duet, 4, n, 2026);
    println!(
        "  duet           : {:>10}   correct={}   speedup {:.2}x",
        duet.runtime,
        duet.correct,
        duet.speedup_over(&base)
    );
    let fpsoc = barnes_hut::run(BenchVariant::Fpsoc, 4, n, 2026);
    println!(
        "  fpsoc-like     : {:>10}   correct={}   speedup {:.2}x",
        fpsoc.runtime,
        fpsoc.correct,
        fpsoc.speedup_over(&base)
    );
    println!(
        "\nthe processors keep the dynamic tree traversal; only the static,\n\
         compute-intensive interaction kernel runs on the eFPGA (Fig. 7)."
    );
}
