//! Communication-mechanism explorer: sweeps the eFPGA clock and prints the
//! round-trip latency of every CPU↔eFPGA mechanism side by side — a
//! miniature interactive version of Fig. 9.
//!
//! Run: `cargo run --release -p duet-examples --bin latency_sweep [mhz...]`

use duet_workloads::synthetic::{measure_latency, Mechanism};

fn main() {
    let freqs: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![20.0, 100.0, 500.0]
        } else {
            args
        }
    };
    println!("round-trip latency (ns) by mechanism and eFPGA clock:");
    print!("{:<26}", "mechanism");
    for f in &freqs {
        print!(" {:>9.0}MHz", f);
    }
    println!();
    for m in Mechanism::ALL {
        print!("{:<26}", m.label());
        for &f in &freqs {
            let p = measure_latency(m, f);
            print!(" {:>12.1}", p.total.as_ns_f64());
        }
        println!();
    }
    println!();
    println!("observations to look for (the paper's Sec. V-C findings):");
    println!("  * shadow registers and proxy-cache CPU pulls are flat across clocks");
    println!("  * normal registers and slow-cache paths degrade as the eFPGA slows");
    println!("  * the proxy cache's advantage grows as the eFPGA clock drops");
}
