//! Quickstart: build a Dolly-P1M1 system, program a soft accelerator onto
//! the eFPGA, and accelerate a tiny kernel — the "hello world" of the Duet
//! architecture.
//!
//! Run: `cargo run --release -p duet-examples --bin quickstart`

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::bitstream::Bitstream;
use duet_fpga::fabric::FabricSpec;
use duet_fpga::ports::SoftAccelerator;
use duet_sim::Time;
use duet_system::{System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

fn main() {
    // 1. A Dolly-P1M1 instance: one processor tile, one C-tile hosting the
    //    Control Hub and a Memory Hub, eFPGA clocked at 189 MHz.
    let cfg = SystemConfig::dolly(1, 1, 189.0);
    println!(
        "system: {} processor(s), {} memory hub(s), {}x{} mesh, eFPGA {:.0} MHz",
        cfg.processors,
        cfg.memory_hubs,
        cfg.mesh_dims().0,
        cfg.mesh_dims().1,
        cfg.fpga_mhz
    );
    let mut sys = System::new(cfg).expect("valid config");

    // 2. The accelerator design and its fabric implementation report
    //    (what the PRGA/VTR flow would produce).
    let accel = PopcountAccel::new(true);
    let report = FabricSpec::k6_frac_n10_mem32k().implement(&accel.netlist());
    println!(
        "accelerator `{}`: {:.0} MHz achievable, {:.1}% CLB, {:.2} mm2 fabric",
        accel.name(),
        report.fmax_mhz,
        100.0 * report.clb_util,
        report.area_mm2
    );
    let bitstream = Bitstream::generate(&FabricSpec::k6_frac_n10_mem32k(), &accel.netlist());
    println!(
        "bitstream: {} words, integrity {}",
        bitstream.len_words(),
        if bitstream.verify() { "ok" } else { "CORRUPT" }
    );

    // 3. Configure shadow registers (Sec. II-F) and attach the design.
    sys.set_reg_mode(0, RegMode::FpgaBound); // argument FIFO
    sys.set_reg_mode(1, RegMode::CpuBound); // result FIFO
    sys.attach_accelerator(Box::new(accel));

    // 4. Put a 512-bit vector in coherent memory.
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let expected: u32 = data.iter().map(|b| b.count_ones()).sum();

    // 5. The processor program: write the vector address to the FPGA-bound
    //    FIFO (invoking the accelerator), read the count back from the
    //    CPU-bound FIFO, store it to memory.
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64); // arg register
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0); // invoke
    a.ld(regs::T[2], regs::T[0], 8); // blocking result read
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");

    // 6. Run and inspect.
    let t = sys
        .run_until_halt(Time::from_us(1_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(2_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let got = sys.peek_u64(0x2_0000);
    println!("popcount(512-bit vector) = {got} (expected {expected}) in {t}");
    assert_eq!(got, u64::from(expected));
    println!("ok: the accelerator read the vector coherently through the Proxy Cache");
}
