//! Sharded-run determinism: the intra-run parallel fast edge must be
//! byte-identical to the serial loop for every workload, shard count,
//! mesh-shard count, scheduling mode, tracing mode, and fault plan.
//!
//! Every cell of {workload} × {1, 2, 4 sim threads} × {edge-skip on/off}
//! × {trace on/off} is compared against the 1-thread serial baseline on
//! three axes — and a second matrix sweeps the *mesh* shard axis
//! ({1, 2, 4} via `DUET_MESH_SHARDS`, sim threads pinned to 1) over the
//! same workloads, skip/trace modes, and an active NoC fault plan:
//!
//! 1. the full run fingerprint (halt/quiesce times, every statistics
//!    block, per-link movement counters, observed memory words),
//! 2. the complete `MetricsRegistry` dump (minus the counters that
//!    legitimately differ across *scheduling* modes: process-wide
//!    atomics, executed-edge counts, rejected-push attempt counters),
//! 3. with tracing on, the rendered text log — per-shard scratch rings
//!    must merge into exactly the serial event order.
//!
//! A separate cell re-runs a faulted workload (NoC delay + reorder +
//! drop, L3 stall + drop) across shard counts: fault windows are pure
//! functions of simulated time and fault budgets have one consumer per
//! edge, so even `RunError` outcomes must render identically.
//!
//! On multi-CPU hosts multi-shard cells use the worker pool
//! automatically; `force_real_worker_threads` pins that path explicitly
//! via `DUET_SIM_FORCE_THREADS=1` so single-CPU CI exercises the barrier
//! protocol too.

use std::sync::{Arc, Mutex, OnceLock};

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{FaultKind, FaultPlan, FaultSpec, System, SystemConfig};
use duet_trace::TraceConfig;
use duet_workloads::popcount::PopcountAccel;

/// Serializes the tests that read or mutate process environment around
/// `System::new` (`DUET_SIM_THREADS`, `DUET_SIM_FORCE_THREADS`), so the
/// explicit env-override assertions can't race the matrix cells.
fn env_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

// ----- workloads (each takes the sim-thread count to configure) -----

/// Producer/consumer over shared memory on two cores: coherence traffic
/// with long spin phases, so skip gating and stall reconstruction run
/// inside the sharded passes.
fn message_passing(threads: usize) -> System {
    let mut cfg = SystemConfig::proc_only(2);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    let iters = 12i64;
    let mut a = Asm::new();
    a.label("producer");
    let (data, flag, i) = (regs::S[0], regs::S[1], regs::S[2]);
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.label("p_loop");
    a.li(regs::T[0], 1000);
    a.mul(regs::T[1], i, regs::T[0]);
    a.sd(regs::T[1], data, 0);
    a.fence();
    a.sd(i, flag, 0);
    a.addi(i, i, 1);
    a.li(regs::T[2], iters + 1);
    a.blt(i, regs::T[2], "p_loop");
    a.halt();
    a.label("consumer");
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.li(regs::S[3], 0x3000);
    a.label("spin");
    a.ld(regs::T[0], flag, 0);
    a.blt(regs::T[0], i, "spin");
    a.ld(regs::T[1], data, 0);
    a.li(regs::T[2], 1000);
    a.mul(regs::T[3], i, regs::T[2]);
    a.bge(regs::T[1], regs::T[3], "ok");
    a.li(regs::T[4], 1);
    a.sd(regs::T[4], regs::S[3], 0);
    a.label("ok");
    a.addi(i, i, 1);
    a.li(regs::T[5], iters + 1);
    a.blt(i, regs::T[5], "spin");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().expect("static program"));
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys
}

/// Four cores hammering one line with fetch-and-add: maximal cross-shard
/// coherence contention, no idle phases.
fn amoadd(threads: usize) -> System {
    let mut cfg = SystemConfig::proc_only(4);
    cfg.sim_threads = threads;
    amoadd_with(cfg)
}

fn amoadd_with(cfg: SystemConfig) -> System {
    let mut sys = System::new(cfg).expect("valid config");
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x7000);
    a.li(regs::S[0], 0);
    a.label("loop");
    a.li(regs::T[1], 1);
    a.amoadd(regs::T[2], regs::T[0], regs::T[1]);
    a.addi(regs::S[0], regs::S[0], 1);
    a.li(regs::T[3], 15);
    a.blt(regs::S[0], regs::T[3], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().expect("static program"));
    for c in 0..4 {
        sys.load_program(c, prog.clone(), "main");
    }
    sys
}

/// The quickstart popcount on Dolly-P1M1: the serial adapter pass, MMIO
/// deferral through the shard lanes, and the slow clock domain.
fn popcount(threads: usize) -> System {
    use duet_core::RegMode;
    let mut cfg = SystemConfig::dolly(1, 1, 189.0);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().expect("static program")), "main");
    sys
}

/// FPSoC variant: slow-domain hubs behind CDC FIFOs, awkward clock ratio.
fn fpsoc_slow_hubs(threads: usize) -> System {
    let mut cfg = SystemConfig::fpsoc(2, 1, 137.0);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x4000);
    a.li(regs::T[1], 0);
    a.label("loop");
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 0);
    a.addi(regs::T[1], regs::T[1], 1);
    a.slti(regs::T[3], regs::T[1], 60);
    a.bnez(regs::T[3], "loop");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().expect("static program"));
    sys.load_program(0, prog.clone(), "main");
    sys.load_program(1, prog, "main");
    sys
}

// ----- the comparable record of one run -----

/// Fingerprint + metrics dump + optional trace rendering for one cell.
struct Cell {
    fp: String,
    metrics: String,
    trace_log: Option<String>,
}

/// Everything observable about a finished run, as one comparable string
/// (the engine-determinism fingerprint, plus the outcome line so faulted
/// runs that end in `RunError` compare too).
fn fingerprint(sys: &System, outcome: &str, mem: &[(u64, usize)]) -> String {
    let mut s = String::new();
    s.push_str(&format!("outcome={outcome} now={}\n", sys.now()));
    s.push_str(&format!("run={:?}\n", sys.stats()));
    s.push_str(&format!("mesh={:?}\n", sys.mesh().stats()));
    for i in 0..sys.config().processors {
        s.push_str(&format!("core{i}={:?}\n", sys.core(i).stats()));
        s.push_str(&format!("l2_{i}={:?}\n", sys.l2(i).stats()));
    }
    if sys.config().has_fpga {
        let a = sys.adapter();
        s.push_str(&format!("ctl={:?}\n", a.control.stats()));
        for (h, hub) in a.hubs.iter().enumerate() {
            s.push_str(&format!(
                "hub{h}={:?} err={} active={}\n",
                hub.stats(),
                hub.error_code(),
                hub.switches().active
            ));
        }
    }
    for (name, report) in sys.link_reports() {
        let st = report.stats;
        s.push_str(&format!(
            "link[{name}] pushes={} pops={} peak={} hist={:?}\n",
            st.pushes, st.pops, st.peak_occupancy, st.occupancy_hist
        ));
    }
    for &(addr, words) in mem {
        for k in 0..words as u64 {
            s.push_str(&format!(
                "m[{:#x}]={:#x}\n",
                addr + 8 * k,
                sys.peek_u64(addr + 8 * k)
            ));
        }
    }
    s
}

/// The registry dump, minus the counters that legitimately differ across
/// scheduling modes (never across shard counts — but the matrix also
/// crosses skip modes, which these counters track by design).
fn metrics_dump(sys: &System) -> String {
    let mut s = String::new();
    for (name, value) in sys.metrics_registry().iter() {
        if name.starts_with("process.") || name == "run.executed_edges" {
            continue;
        }
        if name.starts_with("link.") && name.ends_with(".rejected_pushes") {
            continue;
        }
        s.push_str(&format!("{name}={value}\n"));
    }
    s
}

/// Runs one cell to completion (or a rendered `RunError`).
fn run_cell(
    build: &dyn Fn(usize) -> System,
    threads: usize,
    skip: bool,
    trace: bool,
    halt_deadline: Time,
    quiesce_deadline: Time,
    mem: &[(u64, usize)],
) -> Cell {
    let mut sys = build(threads);
    sys.set_edge_skipping(skip);
    if trace {
        sys.enable_tracing(&TraceConfig::default());
    }
    let outcome = match sys.run_until_halt(halt_deadline) {
        Ok(halt) => {
            let quiesced = sys
                .quiesce(quiesce_deadline)
                .unwrap_or_else(|e| panic!("halted run must quiesce: {e}"));
            format!("ok halt={halt} quiesced={quiesced}")
        }
        Err(e) => format!("err[{e}]"),
    };
    Cell {
        fp: fingerprint(&sys, &outcome, mem),
        metrics: metrics_dump(&sys),
        trace_log: sys.trace_text_log(),
    }
}

/// Crosses one workload over {threads} × {skip} × {trace} and compares
/// every cell to the serial (1-thread) baseline of the same skip mode.
fn assert_shard_invariant(
    label: &str,
    build: &dyn Fn(usize) -> System,
    halt_deadline: Time,
    quiesce_deadline: Time,
    mem: &[(u64, usize)],
) {
    let _guard = env_lock().lock().expect("env lock");
    // This suite sweeps the thread axis itself; CI-level
    // `DUET_SIM_THREADS` / `DUET_MESH_SHARDS` exports (used to push the
    // *other* suites through the sharded paths) would override every
    // cell's config and collapse the axis to a single point.
    std::env::remove_var("DUET_SIM_THREADS");
    std::env::remove_var("DUET_MESH_SHARDS");
    for skip in [true, false] {
        for trace in [false, true] {
            let base = run_cell(build, 1, skip, trace, halt_deadline, quiesce_deadline, mem);
            if trace {
                assert!(base.trace_log.is_some(), "{label}: tracing produced no log");
            }
            for threads in [2usize, 4] {
                let cell = run_cell(
                    build,
                    threads,
                    skip,
                    trace,
                    halt_deadline,
                    quiesce_deadline,
                    mem,
                );
                assert_eq!(
                    base.fp, cell.fp,
                    "{label}: fingerprint diverged at {threads} sim threads \
                     (skip={skip}, trace={trace})"
                );
                assert_eq!(
                    base.metrics, cell.metrics,
                    "{label}: metrics registry diverged at {threads} sim threads \
                     (skip={skip}, trace={trace})"
                );
                assert_eq!(
                    base.trace_log, cell.trace_log,
                    "{label}: trace log diverged at {threads} sim threads (skip={skip})"
                );
            }
        }
    }
}

/// Runs one cell with `DUET_MESH_SHARDS` pinned (sim threads stay 1, so
/// only the mesh-tick partition varies). Caller holds the env lock.
fn run_mesh_cell(
    build: &dyn Fn(usize) -> System,
    mesh_shards: usize,
    skip: bool,
    trace: bool,
    halt_deadline: Time,
    quiesce_deadline: Time,
    mem: &[(u64, usize)],
) -> Cell {
    std::env::set_var("DUET_MESH_SHARDS", mesh_shards.to_string());
    let cell = run_cell(build, 1, skip, trace, halt_deadline, quiesce_deadline, mem);
    std::env::remove_var("DUET_MESH_SHARDS");
    cell
}

/// Crosses one workload over {mesh shards} × {skip} × {trace} and
/// compares every cell to the 1-mesh-shard baseline of the same mode:
/// fingerprints (including per-link peaks and occupancy histograms),
/// metrics dumps, and trace text must not depend on the mesh partition.
fn assert_mesh_shard_invariant(
    label: &str,
    build: &dyn Fn(usize) -> System,
    halt_deadline: Time,
    quiesce_deadline: Time,
    mem: &[(u64, usize)],
) {
    let _guard = env_lock().lock().expect("env lock");
    std::env::remove_var("DUET_SIM_THREADS");
    for skip in [true, false] {
        for trace in [false, true] {
            let base = run_mesh_cell(build, 1, skip, trace, halt_deadline, quiesce_deadline, mem);
            if trace {
                assert!(base.trace_log.is_some(), "{label}: tracing produced no log");
            }
            for shards in [2usize, 4] {
                let cell = run_mesh_cell(
                    build,
                    shards,
                    skip,
                    trace,
                    halt_deadline,
                    quiesce_deadline,
                    mem,
                );
                assert_eq!(
                    base.fp, cell.fp,
                    "{label}: fingerprint diverged at {shards} mesh shards \
                     (skip={skip}, trace={trace})"
                );
                assert_eq!(
                    base.metrics, cell.metrics,
                    "{label}: metrics registry diverged at {shards} mesh shards \
                     (skip={skip}, trace={trace})"
                );
                assert_eq!(
                    base.trace_log, cell.trace_log,
                    "{label}: trace log diverged at {shards} mesh shards (skip={skip})"
                );
            }
        }
    }
}

// ----- the matrix -----

#[test]
fn message_passing_is_shard_invariant() {
    assert_shard_invariant(
        "message_passing",
        &message_passing,
        Time::from_us(10_000),
        Time::from_us(11_000),
        &[(0x1000, 1), (0x2000, 1), (0x3000, 1)],
    );
}

#[test]
fn amoadd_is_shard_invariant() {
    assert_shard_invariant(
        "amoadd",
        &amoadd,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
}

#[test]
fn popcount_accelerator_is_shard_invariant() {
    assert_shard_invariant(
        "popcount",
        &popcount,
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x2_0000, 1)],
    );
}

#[test]
fn fpsoc_slow_hubs_is_shard_invariant() {
    assert_shard_invariant(
        "fpsoc_slow_hubs",
        &fpsoc_slow_hubs,
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x4000, 1)],
    );
}

/// An active fault plan crossing every shard-intercepted kind: delays and
/// stalls (window-only), plus budgeted reorder and drops. Budgets live in
/// atomics with one consumer per edge, windows are pure functions of sim
/// time — so the cells must agree even when the outcome is a `RunError`.
#[test]
fn faulted_run_is_shard_invariant() {
    let window = |kind, from_us: u64, until_us: u64| FaultSpec {
        kind,
        from: Time::from_us(from_us),
        until: Time::from_us(until_us),
    };
    let plan = FaultPlan::empty()
        .with(window(FaultKind::NocDelay { node: 0 }, 0, 20))
        .with(window(FaultKind::L3RespStall { node: 1 }, 10, 40))
        .with(window(FaultKind::NocReorder { node: 2, count: 1 }, 0, 200))
        .with(window(FaultKind::L3RespDrop { node: 3, count: 1 }, 0, 100));
    let build = move |threads: usize| {
        let mut cfg = SystemConfig::proc_only(4);
        cfg.sim_threads = threads;
        cfg.faults = plan.clone();
        amoadd_with(cfg)
    };
    assert_shard_invariant(
        "amoadd+faults",
        &build,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
}

// ----- the mesh-shard matrix -----

#[test]
fn message_passing_is_mesh_shard_invariant() {
    assert_mesh_shard_invariant(
        "message_passing",
        &message_passing,
        Time::from_us(10_000),
        Time::from_us(11_000),
        &[(0x1000, 1), (0x2000, 1), (0x3000, 1)],
    );
}

#[test]
fn amoadd_is_mesh_shard_invariant() {
    assert_mesh_shard_invariant(
        "amoadd",
        &amoadd,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
}

#[test]
fn popcount_accelerator_is_mesh_shard_invariant() {
    assert_mesh_shard_invariant(
        "popcount",
        &popcount,
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x2_0000, 1)],
    );
}

#[test]
fn fpsoc_slow_hubs_is_mesh_shard_invariant() {
    assert_mesh_shard_invariant(
        "fpsoc_slow_hubs",
        &fpsoc_slow_hubs,
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x4000, 1)],
    );
}

/// Mesh sharding under an active NoC fault plan covering all three
/// NoC-level kinds: injection delays (window-only) plus budgeted reorder
/// and drop at eject. Faults intercept at the serial
/// injection-pump/ejection-dispatch boundaries — outside the sharded
/// mesh tick — so windows and budgets must drain identically under any
/// mesh partition, even when the lost message wedges the run.
#[test]
fn noc_faulted_run_is_mesh_shard_invariant() {
    let window = |kind, from_us: u64, until_us: u64| FaultSpec {
        kind,
        from: Time::from_us(from_us),
        until: Time::from_us(until_us),
    };
    let plan = FaultPlan::empty()
        .with(window(FaultKind::NocDelay { node: 0 }, 0, 20))
        .with(window(FaultKind::NocReorder { node: 2, count: 1 }, 0, 200))
        .with(window(FaultKind::NocDrop { node: 3, count: 1 }, 0, 100));
    let build = move |threads: usize| {
        let mut cfg = SystemConfig::proc_only(4);
        cfg.sim_threads = threads;
        cfg.faults = plan.clone();
        amoadd_with(cfg)
    };
    assert_mesh_shard_invariant(
        "amoadd+noc_faults",
        &build,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
}

/// Pins the pooled mesh tick (mesh shard tasks as pool epochs) regardless
/// of host CPU count, and compares it against the serial mesh baseline.
#[test]
fn forced_pool_mesh_tick_matches_serial() {
    let _guard = env_lock().lock().expect("env lock");
    std::env::remove_var("DUET_SIM_THREADS");
    std::env::set_var("DUET_SIM_FORCE_THREADS", "1");
    let pooled = run_mesh_cell(
        &amoadd,
        4,
        true,
        true,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
    std::env::remove_var("DUET_SIM_FORCE_THREADS");
    let serial = run_mesh_cell(
        &amoadd,
        1,
        true,
        true,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
    assert_eq!(
        serial.fp, pooled.fp,
        "pooled mesh tick diverged from serial"
    );
    assert_eq!(serial.metrics, pooled.metrics);
    assert_eq!(serial.trace_log, pooled.trace_log);
}

/// `DUET_MESH_SHARDS` overrides the config, `0` follows the sim-thread
/// shard count, and the result is clamped to the node count.
#[test]
fn mesh_shard_env_and_config_resolution() {
    let _guard = env_lock().lock().expect("env lock");
    std::env::remove_var("DUET_SIM_THREADS");
    std::env::set_var("DUET_MESH_SHARDS", "3");
    let sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
    assert_eq!(sys.mesh_shards(), 3, "env override ignored");
    std::env::set_var("DUET_MESH_SHARDS", "64");
    let sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    assert!(
        sys.mesh_shards() <= 2,
        "mesh shards must be clamped to the node count, got {}",
        sys.mesh_shards()
    );
    std::env::remove_var("DUET_MESH_SHARDS");
    let mut cfg = SystemConfig::proc_only(4);
    cfg.mesh_shards = 2;
    let sys = System::new(cfg).expect("valid config");
    assert_eq!(sys.mesh_shards(), 2, "config mesh_shards ignored");
    let mut cfg = SystemConfig::proc_only(4);
    cfg.sim_threads = 2;
    let sys = System::new(cfg).expect("valid config");
    assert_eq!(
        sys.mesh_shards(),
        2,
        "mesh_shards = 0 must follow the resolved sim-thread shards"
    );
}

/// Pins the real worker-thread path (pool + epoch barrier) regardless of
/// host CPU count, and compares it against the serial baseline.
#[test]
fn force_real_worker_threads_matches_serial() {
    let _guard = env_lock().lock().expect("env lock");
    std::env::remove_var("DUET_SIM_THREADS");
    std::env::set_var("DUET_SIM_FORCE_THREADS", "1");
    let pooled = run_cell(
        &amoadd,
        4,
        true,
        true,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
    std::env::remove_var("DUET_SIM_FORCE_THREADS");
    let serial = run_cell(
        &amoadd,
        1,
        true,
        true,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
    assert_eq!(serial.fp, pooled.fp, "worker pool diverged from serial");
    assert_eq!(serial.metrics, pooled.metrics);
    assert_eq!(serial.trace_log, pooled.trace_log);
}

/// `DUET_SIM_THREADS` overrides the config, `0` means auto, and the
/// resolved count is clamped to the node count.
#[test]
fn env_var_overrides_configured_threads() {
    let _guard = env_lock().lock().expect("env lock");
    std::env::set_var("DUET_SIM_THREADS", "3");
    let sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
    assert_eq!(sys.sim_shards(), 3, "env override ignored");
    std::env::set_var("DUET_SIM_THREADS", "64");
    let sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    assert!(
        sys.sim_shards() <= 2,
        "shard count must be clamped to the node count, got {}",
        sys.sim_shards()
    );
    std::env::set_var("DUET_SIM_THREADS", "0");
    let sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
    assert!(sys.sim_shards() >= 1, "auto must resolve to at least 1");
    std::env::remove_var("DUET_SIM_THREADS");
    let mut cfg = SystemConfig::proc_only(4);
    cfg.sim_threads = 2;
    let sys = System::new(cfg).expect("valid config");
    assert_eq!(sys.sim_shards(), 2, "config sim_threads ignored");
}
