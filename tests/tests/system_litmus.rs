//! Full-system litmus tests: memory-consistency and fault-containment
//! scenarios spanning cores, coherence, the NoC, and the Duet Adapter.

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, SoftAccelerator};
use duet_mem::types::Width;
use duet_sim::Time;
use duet_system::{System, SystemConfig};

/// Message-passing litmus: with a fence between data and flag stores, the
/// consumer must never observe the flag without the data, across many
/// iterations.
#[test]
fn message_passing_litmus_holds_repeatedly() {
    let iters = 24i64;
    let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    // Producer: for each round, write data, fence, set flag = round.
    let mut a = Asm::new();
    a.label("producer");
    let (data, flag, i) = (regs::S[0], regs::S[1], regs::S[2]);
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.label("p_loop");
    // data = i * 1000
    a.li(regs::T[0], 1000);
    a.mul(regs::T[1], i, regs::T[0]);
    a.sd(regs::T[1], data, 0);
    a.fence();
    a.sd(i, flag, 0);
    a.addi(i, i, 1);
    a.li(regs::T[2], iters + 1);
    a.blt(i, regs::T[2], "p_loop");
    a.halt();
    // Consumer: spin until flag == round, then data must be round*1000.
    a.label("consumer");
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.li(regs::S[3], 0x3000); // violation counter
    a.label("c_loop");
    a.label("spin");
    a.ld(regs::T[0], flag, 0);
    a.blt(regs::T[0], i, "spin");
    a.ld(regs::T[1], data, 0);
    // expected >= i*1000 (producer may have advanced further)
    a.li(regs::T[2], 1000);
    a.mul(regs::T[3], i, regs::T[2]);
    a.bge(regs::T[1], regs::T[3], "ok");
    a.li(regs::T[4], 1);
    a.sd(regs::T[4], regs::S[3], 0); // record violation
    a.label("ok");
    a.addi(i, i, 1);
    a.li(regs::T[5], iters + 1);
    a.blt(i, regs::T[5], "c_loop");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys.run_until_halt(Time::from_us(10_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(11_000))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x3000), 0, "consumer saw flag before data");
}

/// A defective accelerator (misaligned request) must be contained: the
/// exception handler deactivates the hubs, an interrupt is raised, and the
/// processors keep running to completion.
struct RogueAccel {
    fired: bool,
}

impl SoftAccelerator for RogueAccel {
    fn name(&self) -> &str {
        "rogue"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        if !self.fired && !ports.hubs.is_empty() {
            // Misaligned store: trips the exception handler's validation
            // (the RTL's parity-check stand-in).
            if ports.hubs[0].store(now, 1, 0x1003, Width::B8, 0xBAD) {
                self.fired = true;
            }
        }
    }

    fn netlist(&self) -> NetlistSummary {
        NetlistSummary {
            name: "rogue",
            luts: 10,
            ffs: 10,
            bram_kbits: 0,
            mults: 0,
            logic_levels: 1,
        }
    }
}

#[test]
fn faulty_accelerator_is_contained() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    sys.attach_accelerator(Box::new(RogueAccel { fired: false }));
    // The core runs a pure-memory workload, oblivious to the rogue fabric.
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x5000);
    a.li(regs::T[1], 0);
    a.label("loop");
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 0);
    a.addi(regs::T[1], regs::T[1], 1);
    a.slti(regs::T[3], regs::T[1], 200);
    a.bnez(regs::T[3], "loop");
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(1_000))
        .unwrap_or_else(|e| panic!("{e}"));
    // Exception latched, hub deactivated, system alive.
    let hub = &sys.adapter().hubs[0];
    assert_ne!(hub.error_code(), 0, "exception must be latched");
    assert!(!hub.switches().active, "hub must be deactivated");
    assert_eq!(sys.peek_u64(0x5000), 199, "the core's work completed");
    assert!(sys.stats().exceptions >= 1, "OS observed the interrupt");
}

/// Deactivated soft-register interfaces return bogus data instead of
/// stalling the system (Sec. II-E).
#[test]
fn deactivated_interface_never_wedges_a_processor() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    sys.set_reg_mode(0, RegMode::CpuBound);
    // No accelerator attached and the interface switched off: a blocking
    // read would hang forever if deactivation didn't bypass it.
    let base = sys.config().mmio_base;
    {
        use duet_core::control_hub::mmio_map;
        use duet_mem::types::MemReq;
        let a = sys.adapter_mut();
        // Fire-and-forget setup write; the OS id space (top bits set)
        // marks responses the system should discard.
        a.mmio_request(
            Time::ZERO,
            MemReq::store(1 << 62, base + mmio_map::INTERFACE_ACTIVE, Width::B8, 0),
            0,
        );
    }
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], base as i64);
    a.ld(regs::T[1], regs::T[0], 0); // would block if active
    a.li(regs::T[2], 0x6000);
    a.sd(regs::T[1], regs::T[2], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(500))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(600))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        sys.peek_u64(0x6000),
        duet_core::BOGUS,
        "deactivated interface returns bogus data"
    );
}

/// Atomic fetch-and-add across four cores through the whole system stack
/// is exact under maximal contention.
#[test]
fn four_core_fetch_add_is_exact() {
    let mut sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x7000);
    a.li(regs::S[0], 0);
    a.label("loop");
    a.li(regs::T[1], 1);
    a.amoadd(regs::T[2], regs::T[0], regs::T[1]);
    a.addi(regs::S[0], regs::S[0], 1);
    a.li(regs::T[3], 25);
    a.blt(regs::S[0], regs::T[3], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    for c in 0..4 {
        sys.load_program(c, prog.clone(), "main");
    }
    sys.run_until_halt(Time::from_us(5_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(6_000))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x7000), 100);
}
