//! Property-style tests of the clock-domain-crossing model — the mechanism
//! every Duet latency result rests on. Cases are generated from a seeded
//! [`SimRng`] so runs are reproducible without external dependencies.

use duet_sim::{AsyncFifo, Clock, SimRng, Time};

fn mhz_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// An entry is never visible before the `sync_stages`-th consumer edge
/// strictly after its push, and becomes visible exactly there.
#[test]
fn synchronizer_delay_is_exact() {
    let mut rng = SimRng::new(0xCDC0);
    for _ in 0..64 {
        let prod = Clock::from_mhz(mhz_in(&mut rng, 20.0, 1000.0));
        let cons = Clock::from_mhz(mhz_in(&mut rng, 20.0, 1000.0));
        let stages = rng.gen_range(1..4) as u32;
        let push_edge = rng.gen_range(1..50);
        let mut f: AsyncFifo<u32> = AsyncFifo::new(8, stages, prod, cons);
        let t_push = Time::from_ps(prod.period().as_ps() * push_edge);
        f.push(t_push, 7).unwrap();
        let visible = cons.nth_edge_after(t_push, stages);
        let just_before = Time::from_ps(visible.as_ps() - 1);
        assert!(f.front(just_before).is_none(), "visible too early");
        assert!(f.front(visible).is_some(), "not visible at the edge");
    }
}

/// FIFO order is preserved for any interleaving of pushes and pops.
#[test]
fn order_preserved_under_random_polling() {
    let mut rng = SimRng::new(0xCDC1);
    for _ in 0..64 {
        let prod = Clock::from_mhz(mhz_in(&mut rng, 50.0, 1000.0));
        let cons = Clock::from_mhz(mhz_in(&mut rng, 50.0, 1000.0));
        let n = rng.gen_range(1..40) as usize;
        let poll_step = rng.gen_range(100..5000);
        let mut f: AsyncFifo<usize> = AsyncFifo::new(64, 2, prod, cons);
        let mut t = prod.first_edge();
        for i in 0..n {
            f.push(t, i).unwrap();
            t = prod.next_edge_after(t);
        }
        let mut out = Vec::new();
        let mut poll = Time::ZERO;
        let mut guard = 0;
        while out.len() < n {
            poll += Time::from_ps(poll_step);
            while let Some(v) = f.pop(poll) {
                out.push(v);
            }
            guard += 1;
            assert!(guard < 1_000_000, "items never delivered");
        }
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}

/// Capacity is never exceeded, and the producer eventually sees freed
/// space after pops (bounded by the backpressure synchronizer).
#[test]
fn producer_occupancy_bounds() {
    let mut rng = SimRng::new(0xCDC2);
    for _ in 0..64 {
        let cap = rng.gen_range(1..8) as usize;
        let n_ops = rng.gen_range(1..100) as usize;
        let prod = Clock::ghz1();
        let cons = Clock::from_mhz(100.0);
        let mut f: AsyncFifo<u8> = AsyncFifo::new(cap, 2, prod, cons);
        let mut t = Time::ZERO;
        let mut pushed = 0u32;
        let mut popped = 0u32;
        for _ in 0..n_ops {
            let do_push = rng.next_bool();
            t += Time::from_ps(1500);
            if do_push {
                if f.can_push(t) {
                    f.push(t, 0).unwrap();
                    pushed += 1;
                }
                assert!(f.producer_occupancy(t) <= cap);
            } else if f.pop(t).is_some() {
                popped += 1;
            }
            assert!(popped <= pushed);
            assert!(f.len() as u32 == pushed - popped);
        }
    }
}
