//! Property-based tests of the clock-domain-crossing model — the mechanism
//! every Duet latency result rests on.

use duet_sim::{AsyncFifo, Clock, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An entry is never visible before the `sync_stages`-th consumer edge
    /// strictly after its push, and becomes visible exactly there.
    #[test]
    fn synchronizer_delay_is_exact(
        prod_mhz in 20.0f64..1000.0,
        cons_mhz in 20.0f64..1000.0,
        stages in 1u32..4,
        push_edge in 1u64..50,
    ) {
        let prod = Clock::from_mhz(prod_mhz);
        let cons = Clock::from_mhz(cons_mhz);
        let mut f: AsyncFifo<u32> = AsyncFifo::new(8, stages, prod, cons);
        let t_push = Time::from_ps(prod.period().as_ps() * push_edge);
        f.push(t_push, 7).unwrap();
        let visible = cons.nth_edge_after(t_push, stages);
        let just_before = Time::from_ps(visible.as_ps() - 1);
        prop_assert!(f.front(just_before).is_none(), "visible too early");
        prop_assert!(f.front(visible).is_some(), "not visible at the edge");
    }

    /// FIFO order is preserved for any interleaving of pushes and pops.
    #[test]
    fn order_preserved_under_random_polling(
        prod_mhz in 50.0f64..1000.0,
        cons_mhz in 50.0f64..1000.0,
        n in 1usize..40,
        poll_step in 100u64..5000,
    ) {
        let prod = Clock::from_mhz(prod_mhz);
        let cons = Clock::from_mhz(cons_mhz);
        let mut f: AsyncFifo<usize> = AsyncFifo::new(64, 2, prod, cons);
        let mut t = prod.first_edge();
        for i in 0..n {
            f.push(t, i).unwrap();
            t = prod.next_edge_after(t);
        }
        let mut out = Vec::new();
        let mut poll = Time::ZERO;
        let mut guard = 0;
        while out.len() < n {
            poll = poll + Time::from_ps(poll_step);
            while let Some(v) = f.pop(poll) {
                out.push(v);
            }
            guard += 1;
            prop_assert!(guard < 1_000_000, "items never delivered");
        }
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    /// Capacity is never exceeded, and the producer eventually sees freed
    /// space after pops (bounded by the backpressure synchronizer).
    #[test]
    fn producer_occupancy_bounds(
        cap in 1usize..8,
        ops in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let prod = Clock::ghz1();
        let cons = Clock::from_mhz(100.0);
        let mut f: AsyncFifo<u8> = AsyncFifo::new(cap, 2, prod, cons);
        let mut t = Time::ZERO;
        let mut pushed = 0u32;
        let mut popped = 0u32;
        for &do_push in &ops {
            t = t + Time::from_ps(1500);
            if do_push {
                if f.can_push(t) {
                    f.push(t, 0).unwrap();
                    pushed += 1;
                }
                prop_assert!(f.producer_occupancy(t) <= cap);
            } else if f.pop(t).is_some() {
                popped += 1;
            }
            prop_assert!(popped <= pushed);
            prop_assert!(f.len() as u32 == pushed - popped);
        }
    }
}
