//! The fault-injection matrix: every `FaultKind` crossed with
//! {edge-skip off/on} × {trace off/on}.
//!
//! Three properties per row:
//!
//! 1. **Checker-fires-or-recovery** — every injected fault ends in one of
//!    the structured outcomes (a completed run with correct memory, a
//!    graceful fence + software-visible error status, or a `RunError`
//!    carrying a stall snapshot / violation). Never a panic, never silent
//!    corruption.
//! 2. **Mode invariance** — the faulted run's full fingerprint (outcome,
//!    metrics registry, observed memory) is bit-identical across all four
//!    {skip, trace} cells. Faults are pure functions of simulated time, so
//!    the optimizer and the tracer must both be invisible to them.
//! 3. **Determinism** — re-running the same plan yields a byte-identical
//!    fingerprint.
//!
//! Plus the no-fault guarantees: an empty/never-active plan (checkers
//! still live) leaves the fingerprint bit-identical to a plain run, and
//! `FaultPlan::randomized` is reproducible from its seed. The `--ignored`
//! soak test drives the randomized plans across the committed seed list
//! (`fault_soak_seeds.txt`) — CI runs it and archives the report.

use std::sync::Arc;

use duet_core::{control_hub::error_codes, RegMode, BOGUS};
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{DegradeConfig, FaultKind, FaultPlan, FaultSpec, RunError, System, SystemConfig};
use duet_trace::TraceConfig;
use duet_workloads::popcount::PopcountAccel;

/// Expected bytes at 0x2_0000 after the popcount scenario completes
/// normally: the popcount of the `(i * 37 + 11)` test vector.
const POPCOUNT_EXPECTED: u64 = 256;

/// What a faulted run is allowed to end as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// `run_until_halt` returned `Ok` and memory checks passed.
    Completed,
    /// `Ok`, but the driver saw the BOGUS error status (fenced design).
    Degraded,
    /// `RunError::Deadlock`.
    Deadlock,
    /// `RunError::ProtocolViolation`.
    Violation,
}

/// One run under a plan: outcome + full comparable fingerprint. The
/// fingerprint folds in the outcome (including the complete `RunError`
/// rendering), the metrics registry minus the counters that legitimately
/// differ across modes, and the observed memory words.
fn run_cell(
    build: &dyn Fn() -> System,
    deadline: Time,
    mem: &[(u64, usize)],
    skip: bool,
    trace: bool,
) -> (Outcome, String) {
    let mut sys = build();
    sys.set_edge_skipping(skip);
    if trace {
        sys.enable_tracing(&TraceConfig::default());
    }
    let result = sys.run_until_halt(deadline);
    let mut fp = String::new();
    let outcome = match &result {
        Ok(halt) => {
            let quiesced = sys
                .quiesce(deadline + Time::from_us(1_000))
                .unwrap_or_else(|e| panic!("halted run must quiesce: {e}"));
            fp.push_str(&format!("outcome=ok halt={halt} quiesced={quiesced}\n"));
            if sys.accel_fenced() {
                Outcome::Degraded
            } else {
                Outcome::Completed
            }
        }
        Err(e) => {
            fp.push_str(&format!("outcome=err\n{e}\n"));
            match e {
                RunError::Deadlock { .. } => Outcome::Deadlock,
                RunError::ProtocolViolation { .. } => Outcome::Violation,
            }
        }
    };
    for (name, value) in sys.metrics_registry().iter() {
        // Rejected pushes count *attempts* (retries differ while a frozen
        // link is polled), process-wide atomics accumulate across runs in
        // one test binary, and executed_edges counts only non-skipped
        // edges — all vary by design across modes.
        if name.starts_with("link.") && name.ends_with(".rejected_pushes") {
            continue;
        }
        if name.starts_with("process.") || name == "run.executed_edges" {
            continue;
        }
        fp.push_str(&format!("{name}={value}\n"));
    }
    for &(addr, words) in mem {
        for k in 0..words as u64 {
            fp.push_str(&format!(
                "m[{:#x}]={:#x}\n",
                addr + 8 * k,
                sys.peek_u64(addr + 8 * k)
            ));
        }
    }
    (outcome, fp)
}

/// Runs the {skip, trace} matrix for one plan and asserts all four cells
/// agree bit-for-bit, then re-runs the first cell to pin same-plan
/// determinism. Returns the common outcome and the baseline fingerprint.
fn run_matrix(
    label: &str,
    build: &dyn Fn() -> System,
    deadline: Time,
    mem: &[(u64, usize)],
) -> (Outcome, String) {
    let (outcome, baseline) = run_cell(build, deadline, mem, false, false);
    for (skip, trace) in [(true, false), (false, true), (true, true)] {
        let (o, fp) = run_cell(build, deadline, mem, skip, trace);
        assert_eq!(
            outcome, o,
            "{label}: outcome changed at skip={skip} trace={trace}"
        );
        assert_eq!(
            baseline, fp,
            "{label}: fingerprint diverged at skip={skip} trace={trace}"
        );
    }
    let (_, again) = run_cell(build, deadline, mem, false, false);
    assert_eq!(
        baseline, again,
        "{label}: same-plan rerun not byte-identical"
    );
    (outcome, baseline)
}

// ----- scenarios -----

/// Two cores, producer/consumer over shared memory: all NoC and L3 faults
/// land on real coherence traffic.
fn two_core_system(faults: FaultPlan) -> System {
    let mut cfg = SystemConfig::proc_only(2);
    cfg.faults = faults;
    let mut sys = System::new(cfg).expect("valid config");
    let mut a = Asm::new();
    a.label("producer");
    a.li(regs::T[0], 0x1000);
    a.li(regs::T[1], 0xBEEF);
    a.sd(regs::T[1], regs::T[0], 0);
    a.fence();
    a.li(regs::T[2], 0x2000);
    a.li(regs::T[3], 1);
    a.sd(regs::T[3], regs::T[2], 0);
    a.halt();
    a.label("consumer");
    a.li(regs::T[0], 0x2000);
    a.label("spin");
    a.ld(regs::T[1], regs::T[0], 0);
    a.beqz(regs::T[1], "spin");
    a.li(regs::T[2], 0x1000);
    a.ld(regs::T[3], regs::T[2], 0);
    a.li(regs::T[4], 0x3000);
    a.sd(regs::T[3], regs::T[4], 0);
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().expect("static program"));
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys
}

/// Memory checks for the two-core scenario after a completed run.
const TWO_CORE_MEM: &[(u64, usize)] = &[(0x1000, 1), (0x2000, 1), (0x3000, 1)];

/// The quickstart popcount on Dolly-P1M1: accelerator, CDC, and slow
/// domain — the target for `accel_hang` and `cdc_freeze`.
fn popcount_system(faults: FaultPlan) -> System {
    let mut cfg = SystemConfig::dolly(1, 1, 189.0);
    cfg.faults = faults;
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().expect("static program")), "main");
    sys
}

fn window(kind: FaultKind, from_us: u64, until_us: u64) -> FaultSpec {
    FaultSpec {
        kind,
        from: Time::from_us(from_us),
        until: Time::from_us(until_us),
    }
}

// ----- the matrix, one row per fault kind -----

#[test]
fn accel_hang_with_degradation_recovers() {
    let plan = FaultPlan::empty()
        .with(FaultSpec::starting(FaultKind::AccelHang, Time::from_us(0)))
        .with_degrade(DegradeConfig {
            fence_after: Time::from_us(20),
        });
    let build = move || popcount_system(plan.clone());
    let (outcome, _) = run_matrix(
        "accel_hang+degrade",
        &build,
        Time::from_us(300),
        &[(0x2_0000, 1)],
    );
    assert_eq!(outcome, Outcome::Degraded);
    // The driver observed the fence as a data value, not a crash.
    let mut sys = build();
    sys.run_until_halt(Time::from_us(300))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x2_0000), BOGUS);
    assert!(sys.faults_injected() >= 1);
    assert_eq!(sys.checker_violations(), 0);
    assert_eq!(
        sys.adapter().control.error_code(),
        error_codes::ACCEL_FENCED
    );
}

#[test]
fn accel_hang_without_degradation_deadlocks_with_named_snapshot() {
    let plan = FaultPlan::empty().with(FaultSpec::starting(FaultKind::AccelHang, Time::from_us(0)));
    let build = move || popcount_system(plan.clone());
    let (outcome, fp) = run_matrix("accel_hang", &build, Time::from_us(300), &[]);
    assert_eq!(outcome, Outcome::Deadlock);
    assert!(
        fp.contains("accelerator `popcount`"),
        "stall snapshot must name the hung accelerator:\n{fp}"
    );
}

#[test]
fn cdc_freeze_window_delays_but_completes() {
    let plan = FaultPlan::empty().with(window(FaultKind::CdcFreeze { hub: 0 }, 0, 50));
    let build = move || popcount_system(plan.clone());
    let (outcome, _) = run_matrix("cdc_freeze", &build, Time::from_us(300), &[(0x2_0000, 1)]);
    assert_eq!(outcome, Outcome::Completed);
    let mut sys = build();
    sys.run_until_halt(Time::from_us(300))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x2_0000), POPCOUNT_EXPECTED);
    assert_eq!(sys.checker_violations(), 0);
}

#[test]
fn noc_delay_window_delays_but_completes() {
    let plan = FaultPlan::empty().with(window(FaultKind::NocDelay { node: 0 }, 0, 20));
    let build = move || two_core_system(plan.clone());
    let (outcome, fp) = run_matrix("noc_delay", &build, Time::from_us(1_000), TWO_CORE_MEM);
    assert_eq!(outcome, Outcome::Completed);
    assert!(
        fp.contains("m[0x3000]=0xbeef"),
        "payload must arrive:\n{fp}"
    );
}

#[test]
fn noc_reorder_checker_fires_or_recovers() {
    let plan = FaultPlan::empty().with(window(FaultKind::NocReorder { node: 1, count: 1 }, 0, 200));
    let build = move || two_core_system(plan.clone());
    let (outcome, fp) = run_matrix("noc_reorder", &build, Time::from_us(300), TWO_CORE_MEM);
    // Swapping adjacent deliveries either trips a checker, wedges the
    // blocking protocol, or (both messages on unrelated flows) is absorbed.
    // Whatever happens must be structured and mode-invariant; on recovery
    // the memory image must still be correct.
    if outcome == Outcome::Completed {
        assert!(fp.contains("m[0x3000]=0xbeef"), "silent corruption:\n{fp}");
    } else {
        assert!(matches!(outcome, Outcome::Deadlock | Outcome::Violation));
    }
}

#[test]
fn noc_drop_is_caught_not_silent() {
    let plan = FaultPlan::empty().with(FaultSpec::starting(
        FaultKind::NocDrop { node: 1, count: 1 },
        Time::from_us(0),
    ));
    let build = move || two_core_system(plan.clone());
    let (outcome, fp) = run_matrix("noc_drop", &build, Time::from_us(300), &[]);
    assert!(
        matches!(outcome, Outcome::Deadlock | Outcome::Violation),
        "a dropped message in a blocking protocol must surface, got {outcome:?}:\n{fp}"
    );
}

#[test]
fn l3_stall_window_delays_but_completes() {
    let plan = FaultPlan::empty().with(window(FaultKind::L3RespStall { node: 0 }, 0, 20));
    let build = move || two_core_system(plan.clone());
    let (outcome, fp) = run_matrix("l3_stall", &build, Time::from_us(1_000), TWO_CORE_MEM);
    assert_eq!(outcome, Outcome::Completed);
    assert!(
        fp.contains("m[0x3000]=0xbeef"),
        "payload must arrive:\n{fp}"
    );
}

#[test]
fn l3_drop_is_caught_not_silent() {
    let plan = FaultPlan::empty().with(FaultSpec::starting(
        FaultKind::L3RespDrop { node: 0, count: 1 },
        Time::from_us(0),
    ));
    let build = move || two_core_system(plan.clone());
    let (outcome, fp) = run_matrix("l3_drop", &build, Time::from_us(300), &[]);
    assert!(
        matches!(outcome, Outcome::Deadlock | Outcome::Violation),
        "a dropped directory response must surface, got {outcome:?}:\n{fp}"
    );
}

// ----- no-fault guarantees -----

/// A plan that schedules nothing active before the deadline — and the
/// always-on checkers — must leave every fingerprint bit-identical to a
/// plain run.
#[test]
fn inactive_plan_and_checkers_are_invisible() {
    let deadline = Time::from_us(300);
    let (o0, fp0) = run_cell(
        &|| popcount_system(FaultPlan::empty()),
        deadline,
        &[(0x2_0000, 1)],
        true,
        false,
    );
    assert_eq!(o0, Outcome::Completed);
    // Empty plan, degrade-only plan, and a window that opens long after
    // the run finishes: all three must be invisible.
    let degrade_only = FaultPlan::empty().with_degrade(DegradeConfig {
        fence_after: Time::from_us(50),
    });
    let never_active = FaultPlan::empty().with(FaultSpec::starting(
        FaultKind::AccelHang,
        Time::from_us(10_000),
    ));
    for (label, plan) in [
        ("degrade-only", degrade_only),
        ("never-active", never_active),
    ] {
        let (o, fp) = run_cell(
            &move || popcount_system(plan.clone()),
            deadline,
            &[(0x2_0000, 1)],
            true,
            false,
        );
        assert_eq!(o0, o, "{label}: outcome changed");
        assert_eq!(fp0, fp, "{label}: fingerprint changed");
    }
    assert!(fp0.contains(&format!("m[0x20000]={POPCOUNT_EXPECTED:#x}")));
}

/// Graceful degradation is contained: while core 0's accelerator hangs
/// and gets fenced, a second core running independent software on the
/// same mesh must produce byte-identical results to the fault-free run.
#[test]
fn degradation_leaves_nonfaulted_core_identical() {
    let build = |faults: FaultPlan| {
        let mut cfg = SystemConfig::dolly(2, 1, 189.0);
        cfg.faults = faults;
        let mut sys = System::new(cfg).expect("valid config");
        sys.set_reg_mode(0, RegMode::FpgaBound);
        sys.set_reg_mode(1, RegMode::CpuBound);
        sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
        let vec_addr = 0x1_0000u64;
        let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        sys.poke_bytes(vec_addr, &data);
        let mmio = sys.config().mmio_base;
        let mut a = Asm::new();
        // Core 0: drive the accelerator (the faulted half).
        a.label("driver");
        a.li(regs::T[0], mmio as i64);
        a.li(regs::T[1], vec_addr as i64);
        a.sd(regs::T[1], regs::T[0], 0);
        a.ld(regs::T[2], regs::T[0], 8);
        a.li(regs::T[3], 0x2_0000);
        a.sd(regs::T[2], regs::T[3], 0);
        a.fence();
        a.halt();
        // Core 1: pure-software running sum over its own region — never
        // touches the adapter or core 0's lines.
        a.label("bystander");
        a.li(regs::S[0], 0x8_0000);
        a.li(regs::S[1], 0);
        a.li(regs::S[2], 0);
        a.label("acc");
        a.add(regs::S[1], regs::S[1], regs::S[2]);
        a.sd(regs::S[1], regs::S[0], 0);
        a.addi(regs::S[0], regs::S[0], 8);
        a.addi(regs::S[2], regs::S[2], 1);
        a.li(regs::T[5], 64);
        a.blt(regs::S[2], regs::T[5], "acc");
        a.fence();
        a.halt();
        let prog = Arc::new(a.assemble().expect("static program"));
        sys.load_program(0, prog.clone(), "driver");
        sys.load_program(1, prog, "bystander");
        sys
    };
    let bystander_mem: Vec<(u64, usize)> = vec![(0x8_0000, 64)];
    let run = |faults: FaultPlan| -> (Outcome, String) {
        let (outcome, fp) = run_cell(
            &move || build(faults.clone()),
            Time::from_us(300),
            &bystander_mem,
            true,
            false,
        );
        // Only the bystander's memory image is the comparable portion:
        // timing-coupled counters legitimately shift when the adapter
        // traffic disappears.
        let mem_only: String = fp
            .lines()
            .filter(|l| l.starts_with("m["))
            .collect::<Vec<_>>()
            .join("\n");
        (outcome, mem_only)
    };
    let (clean_outcome, clean_mem) = run(FaultPlan::empty());
    assert_eq!(clean_outcome, Outcome::Completed);
    let hang = FaultPlan::empty()
        .with(FaultSpec::starting(FaultKind::AccelHang, Time::from_us(0)))
        .with_degrade(DegradeConfig {
            fence_after: Time::from_us(20),
        });
    let (faulted_outcome, faulted_mem) = run(hang);
    assert_eq!(faulted_outcome, Outcome::Degraded);
    assert_eq!(
        clean_mem, faulted_mem,
        "the non-faulted core's results must be identical to the fault-free run"
    );
}

/// Time-travel debugging for faulted runs: checkpoint periodically while
/// a fault plan drives the run toward its structured failure, rewind a
/// *fresh* system to the checkpoint preceding the failure, and replay.
/// The replay must reproduce the identical failure — same `RunError`
/// rendering (stall snapshot included), same state fingerprint, same
/// metrics — even though the replaying system never executed the first
/// two-thirds of the run.
///
/// (No plan in the matrix trips a runtime checker deterministically —
/// reorder swaps are absorbed or wedge the blocking protocol first — so
/// the cell pins the deadlock-with-named-snapshot failure, which carries
/// the checkers' verdict inside its rendering.)
#[test]
fn replay_from_checkpoint_preceding_failure_reproduces_it() {
    let plan = FaultPlan::empty().with(FaultSpec::starting(
        FaultKind::NocDrop { node: 1, count: 1 },
        Time::from_us(0),
    ));
    let deadline = Time::from_us(300);
    let build = move || two_core_system(plan.clone());

    // Reference: straight run into the structured failure.
    let mut reference = build();
    let ref_err = reference
        .run_until_halt(deadline)
        .expect_err("a dropped message in a blocking protocol must surface");
    let ref_fp = reference.divergence_fingerprint();

    // Checkpointed run: snapshot every 100 µs. The wedged clock still
    // advances, so every boundary before the deadline is reached; the
    // last snapshot (200 µs) is the checkpoint preceding the failure.
    let mut sys = build();
    let mut checkpoint: Option<(Time, Vec<u8>)> = None;
    for us in [100u64, 200] {
        let boundary = Time::from_us(us);
        sys.run_until_time(boundary);
        checkpoint = Some((boundary, sys.snapshot()));
    }
    let (at, bytes) = checkpoint.expect("checkpoints taken");
    assert_eq!(at, Time::from_us(200));

    // Rewind a fresh system to the pre-failure checkpoint and replay.
    let mut replay = build();
    replay.restore(&bytes).expect("restore own snapshot");
    let replay_err = replay
        .run_until_halt(deadline)
        .expect_err("replay must hit the same failure");
    assert_eq!(
        format!("{ref_err}"),
        format!("{replay_err}"),
        "replayed failure must render identically (stall snapshot and all)"
    );
    assert_eq!(
        ref_fp,
        replay.divergence_fingerprint(),
        "replayed system must land in the identical state"
    );
    let metrics = |s: &System| {
        s.metrics_registry()
            .iter()
            .filter(|(k, _)| !k.starts_with("process."))
            .map(|(k, v)| format!("{k}={v}\n"))
            .collect::<String>()
    };
    assert_eq!(metrics(&reference), metrics(&replay));
}

/// `FaultPlan::randomized` is a pure function of its seed tuple.
#[test]
fn randomized_plans_are_reproducible() {
    for seed in [1u64, 7, 42, 0xDEAD] {
        let a = FaultPlan::randomized(seed, 2, 1, Time::from_us(100));
        let b = FaultPlan::randomized(seed, 2, 1, Time::from_us(100));
        assert_eq!(a.specs, b.specs, "seed {seed} not reproducible");
        assert!(!a.specs.is_empty());
    }
}

// ----- randomized soak (CI runs with --ignored and archives the report) -----

/// Drives the committed seed list (`fault_soak_seeds.txt`) through
/// randomized plans on both scenarios. Every run must end in a structured
/// outcome and be identical across edge-skip modes; the per-seed report
/// goes to `$DUET_SOAK_REPORT` when set.
#[test]
#[ignore = "soak: run explicitly (CI fault-soak job) with --ignored"]
fn randomized_seed_soak() {
    let seeds_path = concat!(env!("CARGO_MANIFEST_DIR"), "/fault_soak_seeds.txt");
    let seeds: Vec<u64> = std::fs::read_to_string(seeds_path)
        .expect("committed seed list")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("seed lines are u64"))
        .collect();
    assert!(!seeds.is_empty(), "empty seed list");

    let mut report = String::from("seed scenario outcome\n");
    for &seed in &seeds {
        let horizon = Time::from_us(100);
        for scenario in ["two_core", "popcount"] {
            let build = move || match scenario {
                "two_core" => two_core_system(FaultPlan::randomized(seed, 2, 0, horizon)),
                _ => popcount_system(FaultPlan::randomized(seed, 2, 1, horizon)),
            };
            let (o_skip, fp_skip) = run_cell(&build, Time::from_us(500), &[], true, false);
            let (o_full, fp_full) = run_cell(&build, Time::from_us(500), &[], false, false);
            assert_eq!(
                o_skip, o_full,
                "seed {seed} {scenario}: outcome differs across skip modes"
            );
            assert_eq!(
                fp_skip, fp_full,
                "seed {seed} {scenario}: fingerprint differs across skip modes"
            );
            report.push_str(&format!("{seed} {scenario} {o_skip:?}\n"));
        }
    }
    println!("{report}");
    if let Ok(path) = std::env::var("DUET_SOAK_REPORT") {
        if !path.is_empty() {
            std::fs::write(&path, &report).expect("writing soak report");
            println!("soak report written to {path}");
        }
    }
}
