//! Golden-file determinism: run fingerprints must be byte-identical to the
//! values recorded *before* the hot-path state-storage refactor (PR 3:
//! `LineMap` directory/MSHR/page-table storage, `PagedMem` backing store,
//! O(1) run-loop dispatch).
//!
//! One workload per system variant (ProcOnly / Duet / FPSoC) runs with
//! event-horizon edge skipping both on and off; each of the resulting
//! fingerprints must match the committed golden file bit for bit. The
//! golden values were generated from commit `62d99d1` (the last commit
//! with `BTreeMap`-based storage) by running with `DUET_BLESS_GOLDEN=1`.
//!
//! If a *deliberate* timing-model change invalidates these values, re-bless
//! with: `DUET_BLESS_GOLDEN=1 cargo test -p duet-tests --test
//! state_storage_golden` — and say so in the commit message.

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/state_storage_pr3.txt");

/// Everything observable about a finished run, as one comparable string
/// (the same shape as `engine_determinism::fingerprint`).
fn fingerprint(sys: &System, halt: Time, quiesced: Time, mem: &[(u64, usize)]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "halt={halt} quiesced={quiesced} now={}\n",
        sys.now()
    ));
    s.push_str(&format!("run={:?}\n", sys.stats()));
    s.push_str(&format!("mesh={:?}\n", sys.mesh().stats()));
    for i in 0..sys.config().processors {
        s.push_str(&format!("core{i}={:?}\n", sys.core(i).stats()));
        s.push_str(&format!("l2_{i}={:?}\n", sys.l2(i).stats()));
    }
    if sys.config().has_fpga {
        let a = sys.adapter();
        s.push_str(&format!("ctl={:?}\n", a.control.stats()));
        for (h, hub) in a.hubs.iter().enumerate() {
            s.push_str(&format!(
                "hub{h}={:?} err={} active={}\n",
                hub.stats(),
                hub.error_code(),
                hub.switches().active
            ));
        }
    }
    for (name, report) in sys.link_reports() {
        let st = report.stats;
        s.push_str(&format!(
            "link[{name}] pushes={} pops={} peak={} hist={:?}\n",
            st.pushes, st.pops, st.peak_occupancy, st.occupancy_hist
        ));
    }
    for &(addr, words) in mem {
        for k in 0..words as u64 {
            s.push_str(&format!(
                "m[{:#x}]={:#x}\n",
                addr + 8 * k,
                sys.peek_u64(addr + 8 * k)
            ));
        }
    }
    s
}

/// ProcOnly variant: two-core producer/consumer message passing.
fn proc_only_system(threads: usize) -> System {
    let iters = 8i64;
    let mut cfg = SystemConfig::proc_only(2);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    let mut a = Asm::new();
    a.label("producer");
    let (data, flag, i) = (regs::S[0], regs::S[1], regs::S[2]);
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.label("p_loop");
    a.li(regs::T[0], 1000);
    a.mul(regs::T[1], i, regs::T[0]);
    a.sd(regs::T[1], data, 0);
    a.fence();
    a.sd(i, flag, 0);
    a.addi(i, i, 1);
    a.li(regs::T[2], iters + 1);
    a.blt(i, regs::T[2], "p_loop");
    a.halt();
    a.label("consumer");
    a.li(data, 0x1000);
    a.li(flag, 0x2000);
    a.li(i, 1);
    a.label("spin");
    a.ld(regs::T[0], flag, 0);
    a.blt(regs::T[0], i, "spin");
    a.addi(i, i, 1);
    a.li(regs::T[5], iters + 1);
    a.blt(i, regs::T[5], "spin");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys
}

/// Duet variant: the quickstart-style popcount accelerator invoked through
/// shadow registers, reading a vector coherently via the Proxy Cache.
fn duet_system(threads: usize) -> System {
    use duet_core::RegMode;
    let mut cfg = SystemConfig::dolly(1, 1, 189.0);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys
}

/// FPSoC variant: slow-domain hubs behind CDC FIFOs, shared-memory loop.
fn fpsoc_system(threads: usize) -> System {
    let mut cfg = SystemConfig::fpsoc(2, 1, 137.0);
    cfg.sim_threads = threads;
    let mut sys = System::new(cfg).expect("valid config");
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x4000);
    a.li(regs::T[1], 0);
    a.label("loop");
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 0);
    a.addi(regs::T[1], regs::T[1], 1);
    a.slti(regs::T[3], regs::T[1], 40);
    a.bnez(regs::T[3], "loop");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "main");
    sys.load_program(1, prog, "main");
    sys
}

fn run_fingerprint(build: impl Fn() -> System, skip: bool, mem: &[(u64, usize)]) -> String {
    let mut sys = build();
    sys.set_edge_skipping(skip);
    let halt = sys
        .run_until_halt(Time::from_us(10_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let quiesced = sys
        .quiesce(Time::from_us(11_000))
        .unwrap_or_else(|e| panic!("{e}"));
    fingerprint(&sys, halt, quiesced, mem)
}

/// The metrics dump minus the `process.*` namespace: those two counters
/// are process-wide throughput atomics shared by every system in the
/// process, so they accumulate across the reference/probe runs and are not
/// part of any single run's state.
fn per_run_metrics(sys: &System) -> String {
    sys.metrics_registry()
        .iter()
        .filter(|(k, _)| !k.starts_with("process."))
        .map(|(k, v)| format!("{k} = {v}\n"))
        .collect()
}

/// One mid-run checkpoint cell: run uninterrupted as the reference, then in
/// a second "process" snapshot at roughly half the halt time, restore the
/// bytes into a third freshly built system, and continue. Fingerprints,
/// metrics dumps, and (when tracing) trace text logs must be byte-identical.
///
/// Tracing is enabled *at the checkpoint* in both the reference and the
/// restored run, so the two trace windows cover the same interval. The
/// attach must not perturb anything — that invariant is part of what this
/// cell checks.
fn midrun_cell(
    name: &str,
    build: &dyn Fn(usize) -> System,
    mem: &[(u64, usize)],
    threads: usize,
    skip: bool,
    trace: bool,
) {
    use duet_trace::TraceConfig;
    let deadline = Time::from_us(10_000);
    let label = format!("{name} threads={threads} skip={skip} trace={trace}");

    // Probe run: find the halt time so the checkpoint lands mid-run.
    let mut probe = build(threads);
    probe.set_edge_skipping(skip);
    let halt = probe
        .run_until_halt(deadline)
        .unwrap_or_else(|e| panic!("{label}: probe run failed: {e}"));
    let mid = Time::from_ps(halt.as_ps() / 2);
    assert!(mid > Time::ZERO, "{label}: degenerate mid-point");
    drop(probe);

    // Reference: uninterrupted, tracing attached at the checkpoint time.
    let mut reference = build(threads);
    reference.set_edge_skipping(skip);
    reference.run_until_time(mid);
    if trace {
        reference.enable_tracing(&TraceConfig::default());
    }
    let halt_a = reference
        .run_until_halt(deadline)
        .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
    let q_a = reference
        .quiesce(Time::from_us(11_000))
        .unwrap_or_else(|e| panic!("{label}: reference quiesce failed: {e}"));
    let fp_a = fingerprint(&reference, halt_a, q_a, mem);
    let metrics_a = per_run_metrics(&reference);
    let trace_a = reference.trace_text_log();

    // Checkpoint "process": run to the mid-point and serialize.
    let mut writer = build(threads);
    writer.set_edge_skipping(skip);
    writer.run_until_time(mid);
    let snap = writer.snapshot();
    drop(writer);

    // Fresh "process": rebuild the same structure, restore, continue.
    let mut restored = build(threads);
    restored.set_edge_skipping(skip);
    restored
        .restore(&snap)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    if trace {
        restored.enable_tracing(&TraceConfig::default());
    }
    let halt_b = restored
        .run_until_halt(deadline)
        .unwrap_or_else(|e| panic!("{label}: restored run failed: {e}"));
    let q_b = restored
        .quiesce(Time::from_us(11_000))
        .unwrap_or_else(|e| panic!("{label}: restored quiesce failed: {e}"));
    let fp_b = fingerprint(&restored, halt_b, q_b, mem);

    assert_eq!(fp_a, fp_b, "{label}: fingerprint diverged after restore");
    assert_eq!(
        metrics_a,
        per_run_metrics(&restored),
        "{label}: metrics registry diverged after restore"
    );
    if trace {
        assert_eq!(
            trace_a,
            restored.trace_text_log(),
            "{label}: trace text log diverged after restore"
        );
    }
}

#[test]
fn midrun_snapshot_restore_continues_bit_identically() {
    // `build(threads)` must construct the *identical* structure the
    // snapshot writer had (config, programs, accelerator design) — the
    // restore protocol rebuilds structure, snapshots carry only state.
    type Case<'a> = (&'a str, &'a dyn Fn(usize) -> System, &'a [(u64, usize)]);
    let cases: [Case; 3] = [
        ("proc_only", &proc_only_system, &[(0x1000, 1), (0x2000, 1)]),
        ("duet", &duet_system, &[(0x2_0000, 1)]),
        ("fpsoc", &fpsoc_system, &[(0x4000, 1)]),
    ];
    for (name, build, mem) in cases {
        for threads in [1usize, 4] {
            for skip in [false, true] {
                for trace in [false, true] {
                    midrun_cell(name, build, mem, threads, skip, trace);
                }
            }
        }
    }
}

#[test]
fn restore_rejects_mismatched_structure() {
    use duet_sim::SnapError;
    // Snapshot of the Duet system (accelerator attached)...
    let mut writer = duet_system(1);
    writer.run_until_time(Time::from_ns(200));
    let snap = writer.snapshot();

    // ...must not load into a system built from a different config
    // (header hash mismatch fails before any section is read)...
    let mut wrong_cfg = proc_only_system(1);
    assert!(matches!(
        wrong_cfg.restore(&snap),
        Err(SnapError::ConfigHash { .. })
    ));

    // ...and truncated bytes fail loudly rather than half-loading.
    let mut target = duet_system(1);
    assert!(target.restore(&snap[..snap.len() - 1]).is_err());
}

#[test]
fn golden_fingerprints_match_pre_refactor_values() {
    let mut all = String::new();
    type Case = (
        &'static str,
        Box<dyn Fn() -> System>,
        &'static [(u64, usize)],
    );
    let cases: [Case; 3] = [
        (
            "proc_only",
            Box::new(|| proc_only_system(1)),
            &[(0x1000, 1), (0x2000, 1)],
        ),
        ("duet", Box::new(|| duet_system(1)), &[(0x2_0000, 1)]),
        ("fpsoc", Box::new(|| fpsoc_system(1)), &[(0x4000, 1)]),
    ];
    for (name, build, mem) in &cases {
        for skip in [false, true] {
            let fp = run_fingerprint(build, skip, mem);
            all.push_str(&format!("=== {name} skip={} ===\n{fp}", skip as u8));
        }
    }
    if std::env::var("DUET_BLESS_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &all).unwrap();
        eprintln!("blessed golden fingerprints to {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; bless with DUET_BLESS_GOLDEN=1");
    assert_eq!(
        golden, all,
        "run fingerprints diverged from pre-refactor golden values"
    );
}
