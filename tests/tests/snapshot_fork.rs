//! COW fork semantics: `System::fork()` must produce a child in the
//! identical simulated state while allocating only bookkeeping — backing
//! memory is shared page-grained copy-on-write, and pages privatize one at
//! a time as either side writes. The warmed 16×16-mesh probe here is the
//! acceptance criterion for "fork is O(dirty pages)".

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

/// A 256-tile mesh with every core spinning over a private memory stripe,
/// plus a multi-megabyte pre-warmed data image.
fn warmed_16x16() -> System {
    let mut sys = System::new(SystemConfig::mesh_16x16()).expect("valid config");
    // Warm the backing store: 2 MiB of nonzero data. Lines interleave
    // across the 256 home shards, so this touches thousands of distinct
    // backing pages.
    let chunk: Vec<u8> = (0..4096u32).map(|i| (i * 131 + 17) as u8).collect();
    for k in 0..512u64 {
        sys.poke_bytes(0x10_0000 + k * 4096, &chunk);
    }
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[1], 0);
    a.label("loop");
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 0);
    a.addi(regs::T[1], regs::T[1], 1);
    a.slti(regs::T[3], regs::T[1], 6);
    a.bnez(regs::T[3], "loop");
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    for i in 0..sys.config().processors {
        sys.load_program(i, prog.clone(), "main");
        // Each core works a private stripe so the run itself only
        // dirties a bounded, contention-free page set.
        sys.core_mut(i)
            .set_reg(regs::T[0], 0x200_0000 + (i as u64) * 0x1000);
    }
    sys
}

#[test]
fn fork_of_warmed_mesh_allocates_only_dirty_pages() {
    let mut parent = warmed_16x16();
    parent.run_until_time(Time::from_ns(200));

    let (allocated, _) = parent.memory_pages();
    assert!(
        allocated > 1000,
        "warmup should allocate a large page set, got {allocated}"
    );

    let child = parent.fork();

    // Identical simulated state...
    assert_eq!(
        parent.divergence_fingerprint(),
        child.divergence_fingerprint(),
        "fork must not perturb simulated state"
    );
    // ...with every backing page shared: neither side privately owns any.
    let (_, parent_owned) = parent.memory_pages();
    let (child_allocated, child_owned) = child.memory_pages();
    assert_eq!(child_allocated, allocated);
    assert_eq!(parent_owned, 0, "parent pages must all be shared post-fork");
    assert_eq!(child_owned, 0, "child pages must all be shared post-fork");

    // Writes privatize pages one at a time: dirtying 8 addresses on
    // distinct pages costs at most 8 owned pages, not a deep copy.
    let mut child = child;
    for k in 0..8u64 {
        child.poke_bytes(0x10_0000 + k * 4096, &[0xab; 8]);
    }
    let (_, child_owned) = child.memory_pages();
    assert!(
        (1..=8).contains(&child_owned),
        "expected <= 8 privately owned pages after 8 page writes, got {child_owned}"
    );
    let (_, parent_owned) = parent.memory_pages();
    assert!(
        parent_owned <= 8,
        "parent must own only the pages the child dirtied, got {parent_owned}"
    );
}

#[test]
fn forked_child_continues_identically_to_parent() {
    let mut parent = warmed_16x16();
    parent.run_until_time(Time::from_ns(100));
    let mut child = parent.fork();

    let deadline = Time::from_us(10_000);
    let halt_p = parent.run_until_halt(deadline).expect("parent halts");
    let halt_c = child.run_until_halt(deadline).expect("child halts");
    assert_eq!(halt_p, halt_c);
    assert_eq!(
        parent.divergence_fingerprint(),
        child.divergence_fingerprint(),
        "identically driven fork must stay bit-identical"
    );
}

/// A midrun snapshot taken under a forced mesh-sharded pool (4 mesh
/// shards, real worker threads) restores into a fresh system and
/// continues bit-identically. The mesh's boundary-exchange lanes are
/// drained every tick, so the snapshot carries them empty, and the
/// rebalancer (host-side only) re-learns from zero without perturbing
/// results.
#[test]
fn midrun_snapshot_restores_under_forced_mesh_sharded_pool() {
    // Both systems must be built while the overrides are set (the mesh
    // shard count and pool mode resolve at wiring time). Other tests in
    // this binary may build systems inside this window; that is benign —
    // mesh sharding never affects results, which is the very invariant
    // under test.
    std::env::set_var("DUET_MESH_SHARDS", "4");
    std::env::set_var("DUET_SIM_FORCE_THREADS", "1");
    let mut live = warmed_16x16();
    let mut resumed = warmed_16x16();
    std::env::remove_var("DUET_MESH_SHARDS");
    std::env::remove_var("DUET_SIM_FORCE_THREADS");

    live.run_until_time(Time::from_ns(150));
    let snap = live.snapshot();
    resumed.restore(&snap).expect("midrun snapshot restores");
    assert_eq!(
        live.divergence_fingerprint(),
        resumed.divergence_fingerprint(),
        "restore must land in the identical simulated state"
    );

    let deadline = Time::from_us(10_000);
    let halt_live = live.run_until_halt(deadline).expect("live run halts");
    let halt_resumed = resumed.run_until_halt(deadline).expect("resumed run halts");
    assert_eq!(halt_live, halt_resumed);
    assert_eq!(
        live.divergence_fingerprint(),
        resumed.divergence_fingerprint(),
        "restored run must continue bit-identically under the sharded mesh pool"
    );
}

/// `fork()` drops the accelerator; `fork_with` carries its state into a
/// freshly built instance of the same design.
#[test]
fn fork_with_transfers_accelerator_state() {
    use duet_core::RegMode;
    let mut sys = System::new(SystemConfig::dolly(1, 1, 189.0)).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");

    // Checkpoint in the middle of the accelerator's work.
    let halt_probe = {
        let mut probe = sys.fork_with(Box::new(PopcountAccel::new(true))).unwrap();
        probe.run_until_halt(Time::from_us(10_000)).expect("halts")
    };
    sys.run_until_time(Time::from_ps(halt_probe.as_ps() / 2));

    let mut child = sys
        .fork_with(Box::new(PopcountAccel::new(true)))
        .expect("same design forks");
    assert_eq!(sys.divergence_fingerprint(), child.divergence_fingerprint());

    let halt_p = sys.run_until_halt(Time::from_us(10_000)).expect("halts");
    let halt_c = child.run_until_halt(Time::from_us(10_000)).expect("halts");
    assert_eq!(halt_p, halt_c);
    assert_eq!(sys.divergence_fingerprint(), child.divergence_fingerprint());
    assert_eq!(sys.peek_u64(0x2_0000), child.peek_u64(0x2_0000));

    // fork() without an accelerator carries none.
    assert!(sys.fork().accelerator().is_none());
}
