//! Crash-recovery and robustness tests for the duet-serve disk tier.
//!
//! Two layers of coverage:
//!
//! 1. **In-process recovery** over `SharedMemIo` — stage exact damage
//!    (torn tails, flipped CRCs, bad headers, empty files) and check the
//!    recovery verdicts, plus the `FaultyIo` fault matrix (short writes,
//!    failed fsync, full disk → degraded mode).
//! 2. **End-to-end restart** over a real temp directory — run a real
//!    server with `--store`-equivalent config, populate it through HTTP,
//!    drop the server without any shutdown protocol, restart over the
//!    same directory, and demand `cache: hit` plus a clean `?verify=1`
//!    pass on every recovered entry.
//!
//! Plus the client-facing robustness satellites: socket io-timeout → 408
//! (slowloris), `Retry-After` on refusals, drain semantics, and the
//! retrying client riding them out.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use duet_serve::cache::{CacheConfig, ResultCache};
use duet_serve::client::{self, RetryPolicy};
use duet_serve::hostio::{FaultyIo, IoFaultPlan, MemIo, SharedMemIo};
use duet_serve::json::Json;
use duet_serve::queue::Quota;
use duet_serve::server::{ServeConfig, Server};
use duet_serve::store::{DiskStore, FsyncPolicy, StoreConfig};

fn field<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field '{k}' in {v}"))
}

/// A unique temp dir per test (no tempfile crate: pid + name suffice —
/// each test name is unique within one test-runner process).
fn temp_store_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("duet-store-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_with_store(dir: &Path, workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        wait_timeout: Duration::from_secs(240),
        store_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn mem_store(fs: &SharedMemIo) -> DiskStore {
    DiskStore::open(StoreConfig::new("/store"), Box::new(fs.clone())).expect("store opens")
}

// ---------------------------------------------------------------------------
// In-process recovery over staged damage
// ---------------------------------------------------------------------------

#[test]
fn recovery_truncates_torn_tail_and_keeps_prior_records() {
    let fs = SharedMemIo::new();
    {
        let s = mem_store(&fs);
        for k in 0..8 {
            s.append(k, format!("payload-{k}").as_bytes());
        }
    }
    // Tear mid-record: chop 3 bytes off the segment.
    let seg = Path::new("/store").join("seg-000001.dlog");
    fs.with(|m| {
        let f = m.file_mut(&seg).expect("segment exists");
        let n = f.len();
        f.truncate(n - 3);
    });
    let s = mem_store(&fs);
    let report = s.recovery_report();
    assert_eq!(report.live_entries, 7, "torn record lost, rest recovered");
    assert!(report.truncated_bytes > 0);
    for k in 0..7 {
        assert_eq!(
            s.get(k).expect("recovered entry"),
            format!("payload-{k}").as_bytes(),
            "entry {k} must be byte-identical"
        );
    }
    assert!(s.get(7).is_none(), "torn record is gone, not corrupted");
}

#[test]
fn recovery_quarantines_flipped_crc_mid_file_and_keeps_the_rest() {
    let fs = SharedMemIo::new();
    {
        let s = mem_store(&fs);
        s.append(1, b"aaaa-payload");
        s.append(2, b"bbbb-payload");
        s.append(3, b"cccc-payload");
    }
    // Flip one payload bit in the middle record. Records are 25 + 12
    // bytes; the header is 20. Record 2's payload starts at
    // 20 + 37 + 17 = 74.
    let seg = Path::new("/store").join("seg-000001.dlog");
    fs.with(|m| m.file_mut(&seg).expect("segment")[74] ^= 0x01);
    let s = mem_store(&fs);
    let report = s.recovery_report();
    assert_eq!(report.quarantined_records, 1, "one corrupt middle record");
    assert_eq!(report.live_entries, 2);
    assert_eq!(s.get(1).unwrap(), b"aaaa-payload");
    assert!(s.get(2).is_none(), "corrupt record quarantined, not served");
    assert_eq!(s.get(3).unwrap(), b"cccc-payload", "later record survives");
}

#[test]
fn recovery_skips_bad_magic_and_bad_version_segments() {
    for stage in ["magic", "version"] {
        let fs = SharedMemIo::new();
        {
            let s = mem_store(&fs);
            s.append(1, b"doomed");
        }
        let seg = Path::new("/store").join("seg-000001.dlog");
        fs.with(|m| {
            let f = m.file_mut(&seg).expect("segment");
            match stage {
                "magic" => f[0] ^= 0xFF,
                _ => f[8] ^= 0xFF, // version u32 starts after the 8-byte magic
            }
        });
        let s = mem_store(&fs);
        let report = s.recovery_report();
        assert_eq!(report.skipped_segments, 1, "bad {stage} segment skipped");
        assert_eq!(report.live_entries, 0);
        assert!(report.segments[0].header_error.is_some());
        // The service stays writable: new appends land in a new segment.
        s.append(2, b"fresh");
        assert_eq!(s.get(2).unwrap(), b"fresh");
    }
}

#[test]
fn recovery_treats_empty_file_as_fresh_segment() {
    let fs = SharedMemIo::new();
    fs.with(|m| m.put_file(&Path::new("/store").join("seg-000001.dlog"), Vec::new()));
    let s = mem_store(&fs);
    let report = s.recovery_report();
    assert_eq!(report.segments.len(), 1);
    assert_eq!(report.segments[0].status, "empty");
    assert_eq!(report.live_entries, 0);
    s.append(1, b"first");
    assert_eq!(s.get(1).unwrap(), b"first");
}

// ---------------------------------------------------------------------------
// HostIo fault matrix
// ---------------------------------------------------------------------------

#[test]
fn fault_matrix_short_writes_and_eintr_never_corrupt() {
    let plan = IoFaultPlan {
        seed: 99,
        short_write_every: 3,
        eintr_every: 7,
        ..IoFaultPlan::default()
    };
    let s = DiskStore::open(
        StoreConfig::new("/store"),
        Box::new(FaultyIo::new(MemIo::new(), plan)),
    )
    .unwrap();
    for k in 0..50 {
        s.append(k, vec![k as u8; 64].as_slice());
    }
    assert!(!s.is_degraded());
    for k in 0..50 {
        assert_eq!(s.get(k).unwrap(), vec![k as u8; 64]);
    }
}

#[test]
fn fault_matrix_failed_fsync_degrades_to_memory_only() {
    let fs = SharedMemIo::new();
    let plan = IoFaultPlan {
        fail_sync_after: Some(2),
        ..IoFaultPlan::default()
    };
    let store = DiskStore::open(
        StoreConfig::new("/store"),
        Box::new(FaultyIo::new(fs.clone(), plan)),
    )
    .unwrap();
    let cache = ResultCache::with_config(CacheConfig {
        max_bytes: 1 << 20,
        store: Some(Arc::new(store)),
    });
    cache.insert(1, b"one".to_vec());
    cache.insert(2, b"two".to_vec());
    cache.insert(3, b"three".to_vec()); // sync #3 fails → degraded
    let store = cache.store().expect("store configured");
    assert!(store.is_degraded());
    // Degraded ≠ broken: the memory tier still answers everything.
    assert_eq!(cache.lookup(1).unwrap().as_slice(), b"one");
    assert_eq!(cache.lookup(3).unwrap().as_slice(), b"three");
    cache.insert(4, b"four".to_vec());
    assert_eq!(cache.lookup(4).unwrap().as_slice(), b"four");
    assert!(store.stats().append_errors >= 1);
}

#[test]
fn fault_matrix_full_disk_degrades_and_service_continues() {
    let plan = IoFaultPlan {
        disk_capacity: Some(100),
        ..IoFaultPlan::default()
    };
    let store = DiskStore::open(
        StoreConfig::new("/store"),
        Box::new(FaultyIo::new(MemIo::new(), plan)),
    )
    .unwrap();
    let cache = ResultCache::with_config(CacheConfig {
        max_bytes: 1 << 20,
        store: Some(Arc::new(store)),
    });
    // Each record is 25 + payload bytes + 20 header once: the third
    // insert must blow the 100-byte budget.
    cache.insert(1, vec![0xAA; 30]);
    cache.insert(2, vec![0xBB; 30]);
    cache.insert(3, vec![0xCC; 30]);
    assert!(cache.store().unwrap().is_degraded(), "ENOSPC degrades");
    // Memory tier unaffected; later inserts skip the dead disk.
    for k in 1..=3 {
        assert!(cache.lookup(k).is_some());
    }
    cache.insert(4, vec![0xDD; 30]);
    assert!(cache.lookup(4).is_some());
}

// ---------------------------------------------------------------------------
// End-to-end: restart over a real directory, verify every recovered entry
// ---------------------------------------------------------------------------

#[test]
fn restart_serves_recovered_entries_as_hits_and_verify_passes() {
    let dir = temp_store_dir("restart");
    let specs: Vec<&[u8]> = vec![
        br#"{"workload":"popcount","n":4,"seed":21}"#,
        br#"{"workload":"popcount","n":4,"seed":22}"#,
        br#"{"workload":"tangent","n":4,"seed":21}"#,
    ];

    // Generation 1: populate through real HTTP, then drop the server
    // abruptly (no drain, no flush beyond per-append fsync).
    let mut keys = Vec::new();
    {
        let server = start_with_store(&dir, 2);
        let addr = server.addr();
        for body in &specs {
            let resp = client::post_json(addr, "/v1/runs?wait=1", Some("t"), body).unwrap();
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            let j = resp.json().unwrap();
            assert_eq!(field(&j, "cache").as_str(), Some("miss"));
            keys.push(field(&j, "key").as_str().unwrap().to_string());
        }
        server.shutdown();
    }

    // Generation 2: fresh process state, same directory.
    let server = start_with_store(&dir, 2);
    let addr = server.addr();
    let stats = client::get(addr, "/v1/stats").unwrap().json().unwrap();
    let store_stats = field(&stats, "store");
    assert_eq!(field(store_stats, "enabled").as_bool(), Some(true));
    assert_eq!(
        field(store_stats, "indexed_entries").as_u64(),
        Some(specs.len() as u64)
    );
    let recovery = client::get(addr, "/v1/recovery").unwrap();
    assert_eq!(recovery.status, 200);
    let rj = recovery.json().unwrap();
    assert_eq!(
        field(&rj, "live_entries").as_u64(),
        Some(specs.len() as u64)
    );
    assert_eq!(field(&rj, "quarantined_records").as_u64(), Some(0));

    for (body, key) in specs.iter().zip(&keys) {
        // Every entry must hit — nothing was re-simulated yet — and the
        // verify pass re-runs the spec and demands byte-identity with
        // the payload that crossed a process restart.
        let resp = client::post_json(addr, "/v1/runs?wait=1&verify=1", Some("t"), body).unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let j = resp.json().unwrap();
        assert_eq!(field(&j, "cache").as_str(), Some("hit"));
        assert_eq!(field(&j, "verified").as_bool(), Some(true));
        assert_eq!(field(&j, "key").as_str(), Some(key.as_str()));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_after_torn_tail_on_disk_recovers_the_intact_prefix() {
    let dir = temp_store_dir("torn");
    let good: &[u8] = br#"{"workload":"popcount","n":4,"seed":31}"#;
    let torn: &[u8] = br#"{"workload":"popcount","n":4,"seed":32}"#;
    {
        let server = start_with_store(&dir, 2);
        let addr = server.addr();
        for body in [good, torn] {
            let r = client::post_json(addr, "/v1/runs?wait=1", Some("t"), body).unwrap();
            assert_eq!(r.status, 200);
        }
        server.shutdown();
    }
    // Simulate a crash mid-append: tear bytes off the end of the last
    // segment, exactly what a kill-9 during a record write leaves.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .max()
        .expect("segment file exists");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 9]).unwrap();

    let server = start_with_store(&dir, 2);
    let addr = server.addr();
    let rj = client::get(addr, "/v1/recovery").unwrap().json().unwrap();
    assert_eq!(field(&rj, "live_entries").as_u64(), Some(1));
    assert!(field(&rj, "truncated_bytes").as_u64().unwrap() > 0);
    // The surviving entry hits and verifies; the torn one is a miss that
    // re-simulates cleanly (self-healing, not an error).
    let r = client::post_json(addr, "/v1/runs?wait=1&verify=1", Some("t"), good).unwrap();
    let j = r.json().unwrap();
    assert_eq!(field(&j, "cache").as_str(), Some("hit"));
    assert_eq!(field(&j, "verified").as_bool(), Some(true));
    let r = client::post_json(addr, "/v1/runs?wait=1", Some("t"), torn).unwrap();
    let j = r.json().unwrap();
    assert_eq!(field(&j, "cache").as_str(), Some("miss"));
    assert_eq!(field(&j, "status").as_str(), Some("done"));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_enabled_and_disabled_produce_bit_identical_payloads() {
    let dir = temp_store_dir("parity");
    let body: &[u8] = br#"{"workload":"tangent","n":5,"seed":77}"#;
    let with_store = {
        let server = start_with_store(&dir, 2);
        let r = client::post_json(server.addr(), "/v1/runs?wait=1", Some("t"), body).unwrap();
        server.shutdown();
        r.json().unwrap().get("result").unwrap().to_json()
    };
    let without_store = {
        let server = Server::start(ServeConfig {
            wait_timeout: Duration::from_secs(240),
            ..ServeConfig::default()
        })
        .unwrap();
        let r = client::post_json(server.addr(), "/v1/runs?wait=1", Some("t"), body).unwrap();
        server.shutdown();
        r.json().unwrap().get("result").unwrap().to_json()
    };
    assert_eq!(
        with_store, without_store,
        "persistence must not perturb simulation results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Robustness satellites: timeouts, Retry-After, drain, retrying client
// ---------------------------------------------------------------------------

#[test]
fn slow_client_gets_408_within_the_io_timeout() {
    let server = Server::start(ServeConfig {
        io_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // A slowloris peer: open, dribble half a request line, stall.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /v1/st").unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    use std::io::Read;
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "expected 408, got: {text}"
    );
    assert!(text.contains("\"timeout\""), "structured body: {text}");
    server.shutdown();
}

#[test]
fn refusals_carry_retry_after_and_drain_kind_is_distinct() {
    // workers=0 wedges the queue so refusals are easy to provoke.
    let server = Server::start(ServeConfig {
        workers: 0,
        queue_cap: 8,
        quota: Quota {
            max_queued: 1,
            max_concurrent: 1,
            max_sim_us: 2_000_000,
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let body: &[u8] = br#"{"workload":"popcount","n":2,"seed":3}"#;

    // Fill the queue, then overflow it: 429 (tenant quota) with Retry-After.
    assert_eq!(
        client::post_json(addr, "/v1/runs", Some("a"), body)
            .unwrap()
            .status,
        202
    );
    let refused = client::post_json(addr, "/v1/runs", Some("a"), body).unwrap();
    assert_eq!(refused.status, 429);
    assert_eq!(refused.retry_after_secs(), Some(1));

    // Begin draining: submissions now get the dedicated "draining" kind.
    assert_eq!(
        client::request(addr, "POST", "/v1/drain", &[], b"")
            .unwrap()
            .status,
        202
    );
    let drained = client::post_json(addr, "/v1/runs", Some("b"), body).unwrap();
    assert_eq!(drained.status, 503);
    assert_eq!(drained.retry_after_secs(), Some(5));
    let j = drained.json().unwrap();
    assert_eq!(
        field(field(&j, "error"), "kind").as_str(),
        Some("draining"),
        "draining must be distinguishable from queue_full"
    );

    // Readiness flips to 503 while liveness stays 200.
    let health = client::get(addr, "/v1/health").unwrap();
    assert_eq!(health.status, 503);
    let hj = health.json().unwrap();
    assert_eq!(field(&hj, "draining").as_bool(), Some(true));
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn retrying_client_rides_out_queue_pressure() {
    // One worker, tiny queue: bursts refuse with 429/503 and clear as
    // the worker drains — exactly what the retry loop is for.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        quota: Quota {
            max_queued: 2,
            max_concurrent: 1,
            max_sim_us: 2_000_000,
        },
        wait_timeout: Duration::from_secs(240),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let bodies: Vec<String> = (0..6)
        .map(|s| format!(r#"{{"workload":"popcount","n":2,"seed":{s}}}"#))
        .collect();
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 8,
                    base_ms: 20,
                    max_ms: 500,
                    seed: i as u64,
                };
                client::post_json_retry(
                    addr,
                    "/v1/runs?wait=1",
                    Some("t"),
                    body.as_bytes(),
                    &policy,
                )
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap().expect("request eventually lands");
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    }
    server.shutdown();
}
