//! Service-level tests for `duet-serve`: the content-addressed result
//! cache, the `?verify=1` determinism check, graceful degradation under
//! faulted specs, per-tenant quotas, and the fault-plan echo round-trip.
//!
//! Every test boots a real server on an ephemeral port and talks to it
//! over TCP through the crate's own client — the same path `curl` takes.

use std::time::Duration;

use duet_serve::client;
use duet_serve::json::{parse, Json};
use duet_serve::queue::Quota;
use duet_serve::server::{ServeConfig, Server};
use duet_serve::spec::ScenarioSpec;

fn start(quota: Quota, workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 64,
        quota,
        wait_timeout: Duration::from_secs(240),
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn field<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k)
        .unwrap_or_else(|| panic!("missing field '{k}' in {v}"))
}

/// The acceptance scenario: POST the same spec twice; the first run
/// simulates, the second is served from the cache with a byte-identical
/// result payload and an explicit `cache: hit` marker.
#[test]
fn double_submit_hits_the_cache_with_byte_identical_payload() {
    let server = start(Quota::default(), 2);
    let addr = server.addr();
    let body = br#"{"workload":"popcount","n":4,"seed":11,"variant":"duet"}"#;

    let first = client::post_json(addr, "/v1/runs?wait=1", Some("alice"), body).unwrap();
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    let fj = first.json().unwrap();
    assert_eq!(field(&fj, "status").as_str(), Some("done"));
    assert_eq!(field(&fj, "cache").as_str(), Some("miss"));
    let result1 = field(&fj, "result").to_json();
    assert_eq!(field(field(&fj, "result"), "correct").as_bool(), Some(true));

    let second = client::post_json(addr, "/v1/runs?wait=1", Some("bob"), body).unwrap();
    assert_eq!(second.status, 200);
    let sj = second.json().unwrap();
    assert_eq!(field(&sj, "status").as_str(), Some("done"));
    assert_eq!(field(&sj, "cache").as_str(), Some("hit"));
    let result2 = field(&sj, "result").to_json();
    assert_eq!(result1, result2, "cache hit must return identical payload");

    // The raw cached bytes are addressable by key, and the two responses
    // spliced them verbatim.
    let key = field(&sj, "key").as_str().unwrap().to_string();
    let raw = client::get(addr, &format!("/v1/cache/{key}")).unwrap();
    assert_eq!(raw.status, 200);
    assert_eq!(parse(&raw.body).unwrap().to_json(), result1);

    // Counters saw exactly one miss-then-insert and at least one hit.
    let stats = client::get(addr, "/v1/stats").unwrap().json().unwrap();
    let cache = field(&stats, "cache");
    assert_eq!(field(cache, "inserts").as_u64(), Some(1));
    assert!(field(cache, "hits").as_u64().unwrap() >= 1);

    server.shutdown();
}

/// A spec whose fault plan hangs the accelerator with no degrade policy
/// must come back as a structured deadlock error — and the worker that
/// ran it must stay alive to serve the next job.
#[test]
fn faulted_spec_degrades_gracefully_and_pool_stays_alive() {
    let server = start(Quota::default(), 1); // ONE worker: it must survive
    let addr = server.addr();

    let hang = br#"{"workload":"popcount","n":4,"seed":5,
        "faults":"fault accel_hang from_us=0\n","max_sim_us":500}"#;
    let resp = client::post_json(addr, "/v1/runs?wait=1", Some("alice"), hang).unwrap();
    assert_eq!(resp.status, 200);
    let j = resp.json().unwrap();
    assert_eq!(field(&j, "status").as_str(), Some("failed"));
    let err = field(&j, "error");
    assert_eq!(field(err, "kind").as_str(), Some("deadlock"));
    assert_eq!(
        field(err, "detail")
            .get("deadline_ps")
            .and_then(Json::as_u64),
        Some(500_000_000)
    );
    assert!(field(err, "at_ps").as_u64().is_some());
    assert!(
        !field(err, "message").as_str().unwrap().is_empty(),
        "deadlock error carries a human-readable report"
    );

    // Failed runs are never cached.
    let stats = client::get(addr, "/v1/stats").unwrap().json().unwrap();
    assert_eq!(field(field(&stats, "cache"), "inserts").as_u64(), Some(0));
    assert_eq!(field(field(&stats, "jobs"), "failed").as_u64(), Some(1));

    // The single worker picks up and completes a healthy job afterwards.
    let ok = br#"{"workload":"popcount","n":4,"seed":5}"#;
    let resp = client::post_json(addr, "/v1/runs?wait=1", Some("alice"), ok).unwrap();
    let j = resp.json().unwrap();
    assert_eq!(field(&j, "status").as_str(), Some("done"));
    assert_eq!(field(field(&j, "result"), "correct").as_bool(), Some(true));

    server.shutdown();
}

/// `?verify=1` re-runs a cache hit and compares bytes. A poisoned entry
/// is detected, reported as a 409 with a mismatch marker, and evicted so
/// the next submission repopulates the cache honestly.
#[test]
fn verify_detects_a_poisoned_cache_entry() {
    let server = start(Quota::default(), 2);
    let addr = server.addr();
    let body = br#"{"workload":"tangent","n":4,"seed":3}"#;

    // Populate.
    let first = client::post_json(addr, "/v1/runs?wait=1", None, body).unwrap();
    let fj = first.json().unwrap();
    assert_eq!(field(&fj, "status").as_str(), Some("done"));
    let result1 = field(&fj, "result").to_json();

    // A clean verify passes and reports so.
    let clean = client::post_json(addr, "/v1/runs?verify=1", None, body).unwrap();
    assert_eq!(clean.status, 200);
    let cj = clean.json().unwrap();
    assert_eq!(field(&cj, "cache").as_str(), Some("hit"));
    assert_eq!(field(&cj, "verified").as_bool(), Some(true));

    // Poison the stored entry through the test hook and verify again.
    let spec = ScenarioSpec::from_json(&parse(body).unwrap()).unwrap();
    assert!(server.state().cache.poison(spec.cache_key()));
    let caught = client::post_json(addr, "/v1/runs?verify=1", None, body).unwrap();
    assert_eq!(caught.status, 409);
    let kj = caught.json().unwrap();
    assert_eq!(field(&kj, "status").as_str(), Some("verify_mismatch"));
    assert_eq!(server.state().cache.stats().verify_mismatches, 1);

    // The poisoned entry was evicted: resubmitting simulates afresh and
    // lands the honest bytes back in the cache.
    let again = client::post_json(addr, "/v1/runs?wait=1", None, body).unwrap();
    let aj = again.json().unwrap();
    assert_eq!(field(&aj, "cache").as_str(), Some("miss"));
    assert_eq!(field(&aj, "result").to_json(), result1);

    server.shutdown();
}

/// Per-tenant quotas: a tenant at its queue limit gets 429 with a
/// structured quota error while other tenants keep submitting, and a
/// deadline above the sim-time quota is refused outright.
#[test]
fn tenant_quotas_return_structured_429s() {
    // Zero workers: jobs queue but never run, so admission behavior is
    // deterministic — no race against the execution path.
    let server = start(
        Quota {
            max_queued: 1,
            max_concurrent: 1,
            max_sim_us: 1_000,
        },
        0,
    );
    let addr = server.addr();

    let job = br#"{"workload":"popcount","n":8,"seed":1,"max_sim_us":1000}"#;
    let r = client::post_json(addr, "/v1/runs", Some("alice"), job).unwrap();
    assert_eq!(r.status, 202);
    let r = client::post_json(addr, "/v1/runs", Some("alice"), job).unwrap();
    assert_eq!(r.status, 429);
    let j = r.json().unwrap();
    let err = field(&j, "error");
    assert_eq!(field(err, "kind").as_str(), Some("quota_queued"));
    assert_eq!(field(err, "tenant").as_str(), Some("alice"));

    // Another tenant is unaffected by alice's backlog.
    let r = client::post_json(addr, "/v1/runs", Some("bob"), job).unwrap();
    assert_eq!(r.status, 202);

    // Sim-time quota.
    let big = br#"{"workload":"popcount","n":8,"seed":1,"max_sim_us":999999}"#;
    let r = client::post_json(addr, "/v1/runs", Some("carol"), big).unwrap();
    assert_eq!(r.status, 429);
    let j = r.json().unwrap();
    assert_eq!(
        field(field(&j, "error"), "kind").as_str(),
        Some("quota_sim_time")
    );

    server.shutdown();
}

/// The spec echo in job status responses round-trips the fault plan
/// through its lossless text format: parse(echo) == original, including
/// picosecond-granular bounds that the old integer-µs formatter lost.
#[test]
fn job_status_echoes_spec_with_lossless_fault_plan() {
    let server = start(Quota::default(), 1);
    let addr = server.addr();
    let plan = "seed = 9\ndegrade fence_after_us=2\nfault noc_delay node=1 from_us=1 until_us=3\nfault l3_stall node=2 from_us=2\n";
    let body = format!(
        r#"{{"workload":"popcount","n":3,"seed":8,"faults":{},"max_sim_us":300000}}"#,
        Json::Str(plan.to_string()).to_json()
    );
    let submitted = client::post_json(addr, "/v1/runs", Some("alice"), body.as_bytes()).unwrap();
    assert_eq!(submitted.status, 202);
    let id = field(&submitted.json().unwrap(), "id").as_u64().unwrap();

    let status = client::get(addr, &format!("/v1/runs/{id}")).unwrap();
    assert_eq!(status.status, 200);
    let j = status.json().unwrap();
    let echoed = field(&j, "spec");
    let original = ScenarioSpec::from_json(&parse(body.as_bytes()).unwrap()).unwrap();
    let round_tripped = ScenarioSpec::from_json(echoed).unwrap();
    assert_eq!(round_tripped, original);
    assert_eq!(round_tripped.faults.render(), original.faults.render());

    // Progress is reported against the spec's deadline.
    let progress = field(&j, "progress");
    assert_eq!(
        field(progress, "target_ps").as_u64(),
        Some(300_000 * 1_000_000)
    );

    server.shutdown();
}

/// Unknown routes, bad JSON, and bad specs map to structured 4xx errors.
#[test]
fn malformed_requests_get_structured_errors() {
    let server = start(Quota::default(), 1);
    let addr = server.addr();

    let r = client::get(addr, "/v1/nope").unwrap();
    assert_eq!(r.status, 404);

    let r = client::post_json(addr, "/v1/runs", None, b"{not json").unwrap();
    assert_eq!(r.status, 400);
    let j = r.json().unwrap();
    assert_eq!(field(field(&j, "error"), "kind").as_str(), Some("bad_json"));

    let r = client::post_json(addr, "/v1/runs", None, br#"{"workload":"sort"}"#).unwrap();
    assert_eq!(r.status, 400);
    let j = r.json().unwrap();
    assert_eq!(field(field(&j, "error"), "kind").as_str(), Some("bad_spec"));

    let r = client::get(addr, "/v1/runs/999").unwrap();
    assert_eq!(r.status, 404);

    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 200);

    server.shutdown();
}
