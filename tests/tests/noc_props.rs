//! Property-based tests of the NoC: delivery, per-pair ordering, and
//! conservation under random traffic — the guarantees the coherence
//! protocol is built on.

use std::collections::VecDeque;

use duet_noc::{Mesh, MeshConfig, Message, VNet};
use duet_sim::{Clock, Time};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Traffic {
    src: usize,
    dst: usize,
    vnet: usize,
    flits: u32,
}

fn traffic_strategy(nodes: usize) -> impl Strategy<Value = Traffic> {
    (0..nodes, 0..nodes, 0..3usize, 1..4u32).prop_map(|(src, dst, vnet, flits)| Traffic {
        src,
        dst,
        vnet,
        flits,
    })
}

fn vnet_of(i: usize) -> VNet {
    match i {
        0 => VNet::Req,
        1 => VNet::Fwd,
        _ => VNet::Resp,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every injected message is delivered exactly once, to the right
    /// node, with per-(src, dst, vnet) order preserved.
    #[test]
    fn delivery_conservation_and_ordering(
        msgs in prop::collection::vec(traffic_strategy(9), 1..80),
    ) {
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mut mesh: Mesh<(usize, usize)> = Mesh::new(cfg);
        // Sequence numbers per (src, dst, vnet) flow.
        let mut seq = std::collections::HashMap::new();
        // Per-flow queues: injection must not reorder within a flow (the
        // ordering guarantee is per (src, dst, vnet)).
        let mut flows: std::collections::BTreeMap<(usize, usize, usize), VecDeque<(Traffic, usize)>> =
            std::collections::BTreeMap::new();
        let mut total = 0usize;
        for t in msgs {
            let k = (t.src, t.dst, t.vnet);
            let n = seq.entry(k).or_insert(0usize);
            let s = *n;
            *n += 1;
            flows.entry(k).or_default().push_back((t, s));
            total += 1;
        }
        let mut last_seen = std::collections::HashMap::new();
        let mut delivered = 0usize;
        let mut t = Time::ZERO;
        let mut idle_cycles = 0;
        while delivered < total {
            t = t + Time::from_ps(1000);
            // Inject each flow's head if buffer space admits it.
            for (k, q) in flows.iter_mut() {
                if let Some((tr, s)) = q.front().cloned() {
                    if mesh.can_inject(tr.src, vnet_of(tr.vnet)) {
                        mesh.inject(
                            t,
                            Message::new(tr.src, tr.dst, vnet_of(tr.vnet), tr.flits, (s, k.2)),
                        )
                        .unwrap();
                        q.pop_front();
                    }
                }
            }
            mesh.tick(t);
            let mut any = false;
            for node in 0..9 {
                for &v in &VNet::ALL {
                    while let Some(m) = mesh.eject(node, v) {
                        any = true;
                        delivered += 1;
                        let (s, vn) = m.payload;
                        prop_assert_eq!(m.dst, node, "delivered to the wrong node");
                        let k = (m.src, m.dst, vn);
                        let last = last_seen.entry(k).or_insert(-1i64);
                        prop_assert!(
                            (s as i64) > *last,
                            "per-flow order violated on {:?}: {} after {}",
                            k, s, *last
                        );
                        *last = s as i64;
                    }
                }
            }
            let pending_left: usize = flows.values().map(|q| q.len()).sum();
            idle_cycles = if any || pending_left > 0 { 0 } else { idle_cycles + 1 };
            prop_assert!(t < Time::from_us(200), "mesh did not drain");
        }
        prop_assert_eq!(delivered, total);
        prop_assert!(mesh.is_idle());
        prop_assert_eq!(mesh.stats().delivered, total as u64);
    }

    /// TLB translations agree with the page table for arbitrary mappings.
    #[test]
    fn tlb_agrees_with_page_table(
        pages in prop::collection::btree_map(0u64..64, 0u64..512, 1..24),
        probes in prop::collection::vec((0u64..64, 0u64..4096u64), 1..50),
    ) {
        use duet_mem::tlb::{PagePerms, PageTable, Tlb, Translation, Vpn, Ppn};
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(8);
        for (&vpn, &ppn) in &pages {
            pt.map(Vpn(vpn), Ppn(ppn), PagePerms::rw());
        }
        for (vpn, off) in probes {
            let va = (vpn << 12) | off;
            let res = tlb.translate(va, false);
            match (res, pt.lookup(Vpn(vpn))) {
                (Translation::Hit(pa), Some((ppn, _))) => {
                    prop_assert_eq!(pa, (ppn.0 << 12) | off);
                }
                (Translation::Miss, Some((ppn, perms))) => {
                    // Kernel refill, then it must hit.
                    tlb.insert(Vpn(vpn), ppn, perms);
                    match tlb.translate(va, false) {
                        Translation::Hit(pa) => prop_assert_eq!(pa, (ppn.0 << 12) | off),
                        other => prop_assert!(false, "refile failed: {:?}", other),
                    }
                }
                (Translation::Miss, None) => {} // correctly unmapped
                (r, m) => prop_assert!(false, "inconsistent: {:?} vs {:?}", r, m),
            }
        }
    }
}
