//! Property-style tests of the NoC: delivery, per-pair ordering, and
//! conservation under random traffic — the guarantees the coherence
//! protocol is built on. Cases are generated from a seeded [`SimRng`].

use std::collections::VecDeque;

use duet_noc::{Mesh, MeshConfig, Message, VNet};
use duet_sim::{Clock, SimRng, Time};

#[derive(Clone, Debug)]
struct Traffic {
    src: usize,
    dst: usize,
    vnet: usize,
    flits: u32,
}

fn random_traffic(rng: &mut SimRng, nodes: usize) -> Traffic {
    Traffic {
        src: rng.next_below(nodes as u64) as usize,
        dst: rng.next_below(nodes as u64) as usize,
        vnet: rng.next_below(3) as usize,
        flits: rng.gen_range(1..4) as u32,
    }
}

fn vnet_of(i: usize) -> VNet {
    match i {
        0 => VNet::Req,
        1 => VNet::Fwd,
        _ => VNet::Resp,
    }
}

/// Every injected message is delivered exactly once, to the right
/// node, with per-(src, dst, vnet) order preserved.
#[test]
fn delivery_conservation_and_ordering() {
    let mut rng = SimRng::new(0x0C01);
    for _ in 0..32 {
        let count = rng.gen_range(1..80) as usize;
        let msgs: Vec<Traffic> = (0..count).map(|_| random_traffic(&mut rng, 9)).collect();
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mut mesh: Mesh<(usize, usize)> = Mesh::new(cfg);
        // Sequence numbers per (src, dst, vnet) flow.
        let mut seq = std::collections::HashMap::new();
        // Per-flow queues: injection must not reorder within a flow (the
        // ordering guarantee is per (src, dst, vnet)).
        let mut flows: std::collections::BTreeMap<
            (usize, usize, usize),
            VecDeque<(Traffic, usize)>,
        > = std::collections::BTreeMap::new();
        let mut total = 0usize;
        for t in msgs {
            let k = (t.src, t.dst, t.vnet);
            let n = seq.entry(k).or_insert(0usize);
            let s = *n;
            *n += 1;
            flows.entry(k).or_default().push_back((t, s));
            total += 1;
        }
        let mut last_seen = std::collections::HashMap::new();
        let mut delivered = 0usize;
        let mut t = Time::ZERO;
        while delivered < total {
            t += Time::from_ps(1000);
            // Inject each flow's head if buffer space admits it.
            for (k, q) in flows.iter_mut() {
                if let Some((tr, s)) = q.front().cloned() {
                    if mesh.can_inject(tr.src, vnet_of(tr.vnet)) {
                        mesh.inject(
                            t,
                            Message::new(tr.src, tr.dst, vnet_of(tr.vnet), tr.flits, (s, k.2)),
                        )
                        .unwrap();
                        q.pop_front();
                    }
                }
            }
            mesh.tick(t);
            for node in 0..9 {
                for &v in &VNet::ALL {
                    while let Some(m) = mesh.eject(node, v) {
                        delivered += 1;
                        let (s, vn) = m.payload;
                        assert_eq!(m.dst, node, "delivered to the wrong node");
                        let k = (m.src, m.dst, vn);
                        let last = last_seen.entry(k).or_insert(-1i64);
                        assert!(
                            (s as i64) > *last,
                            "per-flow order violated on {:?}: {} after {}",
                            k,
                            s,
                            *last
                        );
                        *last = s as i64;
                    }
                }
            }
            assert!(t < Time::from_us(200), "mesh did not drain");
        }
        assert_eq!(delivered, total);
        assert!(mesh.is_idle());
        assert_eq!(mesh.stats().delivered, total as u64);
    }
}

/// TLB translations agree with the page table for arbitrary mappings.
#[test]
fn tlb_agrees_with_page_table() {
    use duet_mem::tlb::{PagePerms, PageTable, Ppn, Tlb, Translation, Vpn};
    let mut rng = SimRng::new(0x0C02);
    for _ in 0..32 {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(8);
        let n_pages = rng.gen_range(1..24) as usize;
        let mut pages = std::collections::BTreeMap::new();
        for _ in 0..n_pages {
            pages.insert(rng.next_below(64), rng.next_below(512));
        }
        for (&vpn, &ppn) in &pages {
            pt.map(Vpn(vpn), Ppn(ppn), PagePerms::rw());
        }
        let n_probes = rng.gen_range(1..50) as usize;
        for _ in 0..n_probes {
            let vpn = rng.next_below(64);
            let off = rng.next_below(4096);
            let va = (vpn << 12) | off;
            let res = tlb.translate(va, false);
            match (res, pt.lookup(Vpn(vpn))) {
                (Translation::Hit(pa), Some((ppn, _))) => {
                    assert_eq!(pa, (ppn.0 << 12) | off);
                }
                (Translation::Miss, Some((ppn, perms))) => {
                    // Kernel refill, then it must hit.
                    tlb.insert(Vpn(vpn), ppn, perms);
                    match tlb.translate(va, false) {
                        Translation::Hit(pa) => assert_eq!(pa, (ppn.0 << 12) | off),
                        other => panic!("refill failed: {:?}", other),
                    }
                }
                (Translation::Miss, None) => {} // correctly unmapped
                (r, m) => panic!("inconsistent: {:?} vs {:?}", r, m),
            }
        }
    }
}
