//! Differential determinism: event-horizon scheduling (dead-edge
//! skipping and idle-component gating) must be cycle-for-cycle identical
//! to exhaustive edge-by-edge ticking — same halt time, same statistics
//! down to individual stall counters, same memory images.
//!
//! Each scenario builds the same system twice, runs one copy with
//! `set_edge_skipping(false)` (the exhaustive baseline) and one with the
//! default skipping enabled, and compares a full fingerprint.

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::{DualClock, SimRng, Time};
use duet_system::{System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

/// Everything observable about a finished run, as one comparable string.
fn fingerprint(sys: &System, halt: Time, quiesced: Time, mem: &[(u64, usize)]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "halt={halt} quiesced={quiesced} now={}\n",
        sys.now()
    ));
    s.push_str(&format!("run={:?}\n", sys.stats()));
    s.push_str(&format!("mesh={:?}\n", sys.mesh().stats()));
    for i in 0..sys.config().processors {
        s.push_str(&format!("core{i}={:?}\n", sys.core(i).stats()));
        s.push_str(&format!("l2_{i}={:?}\n", sys.l2(i).stats()));
    }
    if sys.config().has_fpga {
        let a = sys.adapter();
        s.push_str(&format!("ctl={:?}\n", a.control.stats()));
        for (h, hub) in a.hubs.iter().enumerate() {
            s.push_str(&format!(
                "hub{h}={:?} err={} active={}\n",
                hub.stats(),
                hub.error_code(),
                hub.switches().active
            ));
        }
    }
    // Per-link movement counters. `rejected_pushes` is deliberately
    // omitted: it counts *attempts*, and gated-off components never make
    // the attempts exhaustive ticking would (both outcomes are correct —
    // nothing moved either way).
    for (name, report) in sys.link_reports() {
        let st = report.stats;
        s.push_str(&format!(
            "link[{name}] pushes={} pops={} peak={} hist={:?}\n",
            st.pushes, st.pops, st.peak_occupancy, st.occupancy_hist
        ));
    }
    for &(addr, words) in mem {
        for k in 0..words as u64 {
            s.push_str(&format!(
                "m[{:#x}]={:#x}\n",
                addr + 8 * k,
                sys.peek_u64(addr + 8 * k)
            ));
        }
    }
    s
}

/// Runs `build` twice (skipping off, then on) and asserts identical
/// fingerprints. `mem` lists (addr, word-count) ranges to compare.
fn assert_differential(
    build: impl Fn() -> System,
    halt_deadline: Time,
    quiesce_deadline: Time,
    mem: &[(u64, usize)],
) {
    let run = |skip: bool| {
        let mut sys = build();
        sys.set_edge_skipping(skip);
        let halt = sys
            .run_until_halt(halt_deadline)
            .unwrap_or_else(|e| panic!("{e}"));
        let quiesced = sys
            .quiesce(quiesce_deadline)
            .unwrap_or_else(|e| panic!("{e}"));
        fingerprint(&sys, halt, quiesced, mem)
    };
    let baseline = run(false);
    let skipping = run(true);
    assert_eq!(
        baseline, skipping,
        "event-horizon scheduling diverged from exhaustive ticking"
    );
}

/// Multi-core coherence with spin-waits: the producer/consumer pair spends
/// most edges stalled or spinning, so both the stall-reconstruction and
/// the dead-edge math are exercised hard.
#[test]
fn differential_message_passing_two_cores() {
    let build = || {
        let iters = 12i64;
        let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
        let mut a = Asm::new();
        a.label("producer");
        let (data, flag, i) = (regs::S[0], regs::S[1], regs::S[2]);
        a.li(data, 0x1000);
        a.li(flag, 0x2000);
        a.li(i, 1);
        a.label("p_loop");
        a.li(regs::T[0], 1000);
        a.mul(regs::T[1], i, regs::T[0]);
        a.sd(regs::T[1], data, 0);
        a.fence();
        a.sd(i, flag, 0);
        a.addi(i, i, 1);
        a.li(regs::T[2], iters + 1);
        a.blt(i, regs::T[2], "p_loop");
        a.halt();
        a.label("consumer");
        a.li(data, 0x1000);
        a.li(flag, 0x2000);
        a.li(i, 1);
        a.li(regs::S[3], 0x3000);
        a.label("spin");
        a.ld(regs::T[0], flag, 0);
        a.blt(regs::T[0], i, "spin");
        a.ld(regs::T[1], data, 0);
        a.li(regs::T[2], 1000);
        a.mul(regs::T[3], i, regs::T[2]);
        a.bge(regs::T[1], regs::T[3], "ok");
        a.li(regs::T[4], 1);
        a.sd(regs::T[4], regs::S[3], 0);
        a.label("ok");
        a.addi(i, i, 1);
        a.li(regs::T[5], iters + 1);
        a.blt(i, regs::T[5], "spin");
        a.fence();
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        sys.load_program(0, prog.clone(), "producer");
        sys.load_program(1, prog, "consumer");
        sys
    };
    assert_differential(
        build,
        Time::from_us(10_000),
        Time::from_us(11_000),
        &[(0x1000, 1), (0x2000, 1), (0x3000, 1)],
    );
}

/// Four cores hammering one line with fetch-and-add: maximal coherence
/// contention, no idle phases — stresses the "nothing skippable" path and
/// the active-set bookkeeping under churn.
#[test]
fn differential_four_core_amoadd() {
    let build = || {
        let mut sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
        let mut a = Asm::new();
        a.label("main");
        a.li(regs::T[0], 0x7000);
        a.li(regs::S[0], 0);
        a.label("loop");
        a.li(regs::T[1], 1);
        a.amoadd(regs::T[2], regs::T[0], regs::T[1]);
        a.addi(regs::S[0], regs::S[0], 1);
        a.li(regs::T[3], 15);
        a.blt(regs::S[0], regs::T[3], "loop");
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        for c in 0..4 {
            sys.load_program(c, prog.clone(), "main");
        }
        sys
    };
    assert_differential(
        build,
        Time::from_us(5_000),
        Time::from_us(6_000),
        &[(0x7000, 1)],
    );
}

/// Builds the quickstart-style popcount system: a Duet accelerator invoked
/// through shadow registers, reading a vector coherently via the Proxy
/// Cache. Exercises the adapter, slow clock domain, MMIO, and the
/// accelerator cap on edge skipping.
fn popcount_system(cfg: SystemConfig) -> System {
    use duet_core::RegMode;
    let mut sys = System::new(cfg).expect("valid config");
    let accel = PopcountAccel::new(true);
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(accel));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys
}

#[test]
fn differential_duet_accelerator_popcount() {
    assert_differential(
        || popcount_system(SystemConfig::dolly(1, 1, 189.0)),
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x2_0000, 1)],
    );
    // Sanity: the accelerated result is actually correct, not just equal.
    let mut sys = popcount_system(SystemConfig::dolly(1, 1, 189.0));
    sys.run_until_halt(Time::from_us(1_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(2_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let expected: u32 = (0..64u32).map(|i| ((i * 37 + 11) as u8).count_ones()).sum();
    assert_eq!(sys.peek_u64(0x2_0000), u64::from(expected));
}

/// FPSoC variant: slow-domain Memory Hubs behind CDC FIFOs. The hub clock
/// is deliberately an awkward ratio so fast/slow edges interleave
/// irregularly.
#[test]
fn differential_fpsoc_slow_hubs() {
    let build = || {
        let mut sys = System::new(SystemConfig::fpsoc(2, 1, 137.0)).expect("valid config");
        // Plain shared-memory workload; in FPSoC the hub path still ticks
        // every slow edge behind the CDC, capping the skip horizon.
        let mut a = Asm::new();
        a.label("main");
        a.li(regs::T[0], 0x4000);
        a.li(regs::T[1], 0);
        a.label("loop");
        a.sd(regs::T[1], regs::T[0], 0);
        a.ld(regs::T[2], regs::T[0], 0);
        a.addi(regs::T[1], regs::T[1], 1);
        a.slti(regs::T[3], regs::T[1], 60);
        a.bnez(regs::T[3], "loop");
        a.fence();
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        sys.load_program(0, prog.clone(), "main");
        sys.load_program(1, prog, "main");
        sys
    };
    assert_differential(
        build,
        Time::from_us(1_000),
        Time::from_us(2_000),
        &[(0x4000, 1)],
    );
}

/// Property test for `DualClock::advance_to`: for random clock pairs and
/// random jump targets, one arithmetic jump must report exactly the edges
/// that cloned edge-by-edge stepping would execute, and leave the clock in
/// a state that generates the identical edge stream afterwards.
#[test]
fn advance_to_equals_stepping_randomized() {
    let mut rng = SimRng::new(0xE4E0);
    for case in 0..200 {
        let fast_mhz = 200.0 + (rng.next_u64() % 3800) as f64;
        let slow_mhz = 37.0 + (rng.next_u64() % 400) as f64;
        let mut dual = DualClock::new(
            duet_sim::Clock::from_mhz(fast_mhz),
            duet_sim::Clock::from_mhz(slow_mhz),
        );
        // Randomly pre-run a few edges so `started` state varies.
        for _ in 0..(rng.next_u64() % 4) {
            dual.next_edge();
        }
        let mut target = dual.now();
        for hop in 0..8 {
            target += Time::from_ps(1 + rng.next_u64() % 300_000);
            // Reference: step a clone edge by edge, counting edges
            // strictly before the target.
            let mut reference = dual.clone();
            let (mut fast, mut slow) = (0u64, 0u64);
            loop {
                let mut probe = reference.clone();
                let (t, d) = probe.next_edge();
                if t >= target {
                    break;
                }
                reference = probe;
                if d.fast() {
                    fast += 1;
                }
                if d.slow() {
                    slow += 1;
                }
            }
            let (jf, js) = dual.advance_to(target);
            assert_eq!(
                (jf, js),
                (fast, slow),
                "case {case} hop {hop}: skip counts diverged (fast {fast_mhz} MHz, slow {slow_mhz} MHz, target {target})"
            );
            // The edge streams must coincide from here on.
            for _ in 0..6 {
                assert_eq!(
                    reference.next_edge(),
                    dual.next_edge(),
                    "case {case} hop {hop}"
                );
            }
            target = dual.now();
        }
    }
}
