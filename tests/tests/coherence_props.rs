//! Property-style tests of the directory-MESI protocol: random operation
//! sequences through multiple private caches on a real mesh must behave
//! like a flat memory — and uphold the single-writer/multiple-reader
//! invariant at every step. Cases are generated from a seeded [`SimRng`].

use std::collections::HashMap;

use duet_mem::priv_cache::CacheConfig;
use duet_mem::testkit::ProtocolHarness;
use duet_mem::types::{AmoOp, LineAddr, MemReq, Width};
use duet_sim::{Clock, SimRng};

#[derive(Clone, Debug)]
enum Op {
    Load {
        cache: usize,
        slot: u64,
    },
    Store {
        cache: usize,
        slot: u64,
        value: u64,
    },
    AmoAdd {
        cache: usize,
        slot: u64,
        value: u64,
    },
    Cas {
        cache: usize,
        slot: u64,
        expected: u64,
        value: u64,
    },
}

fn random_op(rng: &mut SimRng, caches: usize, slots: u64) -> Op {
    let cache = rng.next_below(caches as u64) as usize;
    let slot = rng.next_below(slots);
    match rng.next_below(4) {
        0 => Op::Load { cache, slot },
        1 => Op::Store {
            cache,
            slot,
            value: rng.next_u64(),
        },
        2 => Op::AmoAdd {
            cache,
            slot,
            value: rng.next_below(1000),
        },
        _ => Op::Cas {
            cache,
            slot,
            expected: rng.next_u64(),
            value: rng.next_u64(),
        },
    }
}

/// Slots spread over conflicting lines: a tiny 2-set/2-way cache forces
/// constant evictions and writebacks.
fn slot_addr(slot: u64) -> u64 {
    0x1000 + slot * 40 // crosses lines and sets
}

/// Sequentially-issued random traffic equals a flat memory model.
#[test]
fn random_traffic_matches_flat_memory() {
    let mut rng = SimRng::new(0xC0E0);
    for _ in 0..24 {
        let n_ops = rng.gen_range(1..60) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng, 3, 6)).collect();
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            ..CacheConfig::dolly_l2(Clock::ghz1())
        };
        let mut h = ProtocolHarness::new(2, 2, 3, cfg);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, op) in ops.iter().enumerate() {
            let id = k as u64;
            match *op {
                Op::Load { cache, slot } => {
                    h.request(cache, MemReq::load(id, slot_addr(slot), Width::B8));
                    let (_, r) = h.run_until_resp(cache, 5000);
                    let want = model.get(&slot).copied().unwrap_or(0);
                    assert_eq!(r.rdata, want, "load slot {} via cache {}", slot, cache);
                }
                Op::Store { cache, slot, value } => {
                    h.request(cache, MemReq::store(id, slot_addr(slot), Width::B8, value));
                    h.run_until_resp(cache, 5000);
                    model.insert(slot, value);
                }
                Op::AmoAdd { cache, slot, value } => {
                    h.request(
                        cache,
                        MemReq::amo(id, AmoOp::Add, slot_addr(slot), Width::B8, value, 0),
                    );
                    let (_, r) = h.run_until_resp(cache, 5000);
                    let old = model.get(&slot).copied().unwrap_or(0);
                    assert_eq!(r.rdata, old, "amo old value");
                    model.insert(slot, old.wrapping_add(value));
                }
                Op::Cas {
                    cache,
                    slot,
                    expected,
                    value,
                } => {
                    h.request(
                        cache,
                        MemReq::amo(id, AmoOp::Cas, slot_addr(slot), Width::B8, value, expected),
                    );
                    let (_, r) = h.run_until_resp(cache, 5000);
                    let old = model.get(&slot).copied().unwrap_or(0);
                    assert_eq!(r.rdata, old, "cas old value");
                    if old == expected {
                        model.insert(slot, value);
                    }
                }
            }
            // Invariant: never two owners of any touched line.
            for s in 0..6u64 {
                h.check_swmr(LineAddr::containing(slot_addr(s)));
            }
        }
        // Final memory state is coherent with the model.
        h.quiesce(20_000);
        for (slot, want) in &model {
            let line = h.peek_coherent(LineAddr::containing(slot_addr(*slot)));
            let off = (slot_addr(*slot) & 0xF) as usize;
            let got = duet_mem::types::read_scalar(&line, off, Width::B8);
            assert_eq!(got, *want, "final value of slot {}", slot);
        }
    }
}

/// Concurrent atomic increments from every cache are exact.
#[test]
fn concurrent_amo_sum_is_exact() {
    let mut rng = SimRng::new(0xC0E1);
    for _ in 0..12 {
        let per_cache = rng.gen_range(1..12);
        let cfg = CacheConfig::dolly_l2(Clock::ghz1());
        let mut h = ProtocolHarness::new(2, 2, 4, cfg);
        let addr = 0x4000u64;
        let mut remaining = [per_cache; 4];
        let mut inflight = [false; 4];
        let mut done = 0;
        let mut guard = 0u64;
        while done < 4 {
            for c in 0..4 {
                if !inflight[c] && remaining[c] > 0 {
                    h.request(
                        c,
                        MemReq::amo(1000 + c as u64, AmoOp::Add, addr, Width::B8, 1, 0),
                    );
                    inflight[c] = true;
                }
            }
            for (i, _) in h.step() {
                inflight[i] = false;
                remaining[i] -= 1;
                if remaining[i] == 0 {
                    done += 1;
                }
            }
            guard += 1;
            assert!(guard < 200_000, "no forward progress");
        }
        h.quiesce(5000);
        let line = h.peek_coherent(LineAddr::containing(addr));
        let got = duet_mem::types::read_scalar(&line, 0, Width::B8);
        assert_eq!(got, 4 * per_cache);
    }
}
