//! End-to-end tests of fabric-initiated atomics (Sec. II-C: the Proxy
//! Cache "can be configured ... to enable atomic operations which require
//! the soft cache to support incrementally more message types"): an
//! accelerator and processors increment the same counter coherently.

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_mem::types::{AmoOp, Width};
use duet_sim::Time;
use duet_system::{System, SystemConfig};

/// Increments a shared counter `n` times through hub atomics, recording
/// the old values it observes.
struct AtomicIncrementer {
    addr: u64,
    remaining: u32,
    inflight: bool,
    observed: Vec<u64>,
}

impl SoftAccelerator for AtomicIncrementer {
    fn name(&self) -> &str {
        "atomic-incrementer"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        while let Some(resp) = ports.hubs[0].pop_resp(now) {
            if let FpgaRespKind::StoreAck { old } = resp.kind {
                self.observed.push(old);
                self.inflight = false;
            }
        }
        if !self.inflight
            && self.remaining > 0
            && ports.hubs[0].amo(now, 1, AmoOp::Add, self.addr, Width::B8, 1, 0)
        {
            self.inflight = true;
            self.remaining -= 1;
        }
    }

    fn netlist(&self) -> NetlistSummary {
        NetlistSummary {
            name: "atomic-incrementer",
            luts: 100,
            ffs: 100,
            bram_kbits: 0,
            mults: 0,
            logic_levels: 2,
        }
    }
}

#[test]
fn fabric_and_processors_share_an_atomic_counter() {
    let addr = 0x9000u64;
    let accel_incs = 20u32;
    let core_incs = 25i64;
    let cores = 2usize;
    let mut sys = System::new(SystemConfig::dolly(cores, 1, 150.0)).expect("valid config");
    sys.attach_accelerator(Box::new(AtomicIncrementer {
        addr,
        remaining: accel_incs,
        inflight: false,
        observed: Vec::new(),
    }));
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], addr as i64);
    a.li(regs::S[0], 0);
    a.label("loop");
    a.li(regs::T[1], 1);
    a.amoadd(regs::T[2], regs::T[0], regs::T[1]);
    a.addi(regs::S[0], regs::S[0], 1);
    a.li(regs::T[3], core_incs);
    a.blt(regs::S[0], regs::T[3], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    for c in 0..cores {
        sys.load_program(c, prog.clone(), "main");
    }
    sys.run_until_halt(Time::from_us(5_000))
        .unwrap_or_else(|e| panic!("{e}"));
    // Let the accelerator finish its remaining increments.
    let deadline = sys.now() + Time::from_us(200);
    while sys.now() < deadline {
        sys.step_edge();
    }
    sys.quiesce(Time::from_us(10_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let expected = u64::from(accel_incs) + (core_incs as u64) * cores as u64;
    assert_eq!(
        sys.peek_u64(addr),
        expected,
        "fabric + processor atomics must serialize exactly"
    );
}

#[test]
fn fabric_amo_returns_strictly_increasing_old_values_without_contention() {
    // Single-agent case: the old values the fabric observes must be
    // 0, 1, 2, ... — each AMO is a full serialized round trip.
    let addr = 0xA000u64;
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    sys.attach_accelerator(Box::new(AtomicIncrementer {
        addr,
        remaining: 10,
        inflight: false,
        observed: Vec::new(),
    }));
    let mut a = Asm::new();
    a.label("main");
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(10))
        .unwrap_or_else(|e| panic!("{e}"));
    let deadline = sys.now() + Time::from_us(100);
    while sys.now() < deadline {
        sys.step_edge();
    }
    sys.quiesce(Time::from_us(1_000))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(addr), 10);
}

#[test]
fn amo_feature_switch_blocks_fabric_atomics_system_wide() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    {
        let a = sys.adapter_mut();
        let mut sw = a.hubs[0].switches();
        sw.atomics = false;
        a.hubs[0].set_switches(sw);
    }
    sys.attach_accelerator(Box::new(AtomicIncrementer {
        addr: 0xB000,
        remaining: 5,
        inflight: false,
        observed: Vec::new(),
    }));
    let mut a = Asm::new();
    a.label("main");
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(10))
        .unwrap_or_else(|e| panic!("{e}"));
    let deadline = sys.now() + Time::from_us(100);
    while sys.now() < deadline {
        sys.step_edge();
    }
    assert_eq!(
        sys.adapter().hubs[0].error_code(),
        duet_core::memory_hub::error_codes::ATOMICS_DISABLED
    );
    assert_eq!(sys.peek_u64(0xB000), 0, "no increment went through");
}
