//! Tracing must be an observer, never a participant: enabling the event
//! trace cannot change a single simulated cycle, and the exported Chrome
//! JSON must be structurally valid with the expected tracks and flow
//! arrows.
//!
//! The differential test runs the same scenario across the full
//! {trace off, trace on} × {edge-skip off, edge-skip on} matrix and
//! requires all four fingerprints to be bit-identical.

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{System, SystemConfig};
use duet_trace::{export::validate_json, masks, EventKind, TraceConfig};
use duet_workloads::popcount::PopcountAccel;

/// Everything observable about a finished run, as one comparable string.
/// Uses the unified metrics registry, so every counter in the simulator
/// participates (minus `link.*.rejected_pushes`, which counts *attempts*
/// and legitimately differs across edge-skip modes).
fn fingerprint(sys: &System, halt: Time, quiesced: Time, mem: &[(u64, usize)]) -> String {
    let mut s = format!("halt={halt} quiesced={quiesced} now={}\n", sys.now());
    for (name, value) in sys.metrics_registry().iter() {
        if name.starts_with("link.") && name.ends_with(".rejected_pushes") {
            continue;
        }
        // Process-wide atomics accumulate across runs in one test binary,
        // and executed_edges counts only non-skipped edges — both vary by
        // design across runs/skip modes.
        if name.starts_with("process.") || name == "run.executed_edges" {
            continue;
        }
        s.push_str(&format!("{name}={value}\n"));
    }
    for &(addr, words) in mem {
        for k in 0..words as u64 {
            s.push_str(&format!(
                "m[{:#x}]={:#x}\n",
                addr + 8 * k,
                sys.peek_u64(addr + 8 * k)
            ));
        }
    }
    s
}

/// A small two-core producer/consumer over shared memory: exercises the
/// NoC, the private caches, and the directory without needing the slow
/// clock domain.
fn two_core_system() -> System {
    let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    let mut a = Asm::new();
    a.label("producer");
    a.li(regs::T[0], 0x1000);
    a.li(regs::T[1], 0xBEEF);
    a.sd(regs::T[1], regs::T[0], 0);
    a.fence();
    a.li(regs::T[2], 0x2000);
    a.li(regs::T[3], 1);
    a.sd(regs::T[3], regs::T[2], 0);
    a.halt();
    a.label("consumer");
    a.li(regs::T[0], 0x2000);
    a.label("spin");
    a.ld(regs::T[1], regs::T[0], 0);
    a.beqz(regs::T[1], "spin");
    a.li(regs::T[2], 0x1000);
    a.ld(regs::T[3], regs::T[2], 0);
    a.li(regs::T[4], 0x3000);
    a.sd(regs::T[3], regs::T[4], 0);
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys
}

/// The quickstart-style popcount system: accelerator through shadow
/// registers and the Proxy Cache — covers the adapter, CDC, slow domain,
/// and accelerator trace hooks.
fn popcount_system() -> System {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 189.0)).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys
}

/// Runs `build` across the {trace, skip} matrix and asserts all four
/// fingerprints are bit-identical.
fn assert_trace_invisible(build: impl Fn() -> System, deadline: Time, mem: &[(u64, usize)]) {
    let run = |trace: bool, skip: bool| {
        let mut sys = build();
        if trace {
            sys.enable_tracing(&TraceConfig::default());
        }
        sys.set_edge_skipping(skip);
        let halt = sys
            .run_until_halt(deadline)
            .unwrap_or_else(|e| panic!("{e}"));
        let quiesced = sys
            .quiesce(deadline + Time::from_us(1_000))
            .unwrap_or_else(|e| panic!("{e}"));
        fingerprint(&sys, halt, quiesced, mem)
    };
    let baseline = run(false, false);
    for (trace, skip) in [(false, true), (true, false), (true, true)] {
        assert_eq!(
            baseline,
            run(trace, skip),
            "fingerprint diverged at trace={trace} skip={skip}"
        );
    }
}

#[test]
fn differential_trace_onoff_skip_onoff_two_cores() {
    assert_trace_invisible(
        two_core_system,
        Time::from_us(5_000),
        &[(0x1000, 1), (0x2000, 1), (0x3000, 1)],
    );
}

#[test]
fn differential_trace_onoff_skip_onoff_popcount_accel() {
    assert_trace_invisible(popcount_system, Time::from_us(1_000), &[(0x2_0000, 1)]);
}

/// Golden structural checks on the Chrome JSON from a tiny two-node run:
/// parses, names its per-component tracks, and carries at least one full
/// inject→eject flow arrow across the NoC.
#[test]
fn chrome_json_golden_tiny_two_node_run() {
    let mut sys = two_core_system();
    sys.enable_tracing(&TraceConfig::default());
    sys.run_until_halt(Time::from_us(5_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(6_000))
        .unwrap_or_else(|e| panic!("{e}"));

    let json = sys.trace_chrome_json().expect("tracing enabled");
    validate_json(&json).expect("chrome trace must be valid JSON");

    // Golden header: exact process-metadata record (nothing dropped on a
    // run this small, the ring holds 1 Mi events).
    assert!(json.starts_with(
        "{\"traceEvents\":[\n{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"duet-sim (dropped_events=0)\"}}"
    ));
    // Per-component tracks, in canonical registration order: runloop is
    // component 0, mesh component 1, then the L2s and L3 shards.
    for (tid, track) in [(0, "runloop"), (1, "mesh"), (2, "l2@n0"), (3, "l2@n1")] {
        assert!(
            json.contains(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{track}\"}}}}"
            )),
            "missing track {track}"
        );
    }
    // Flow arrows: start at inject, finish at eject, same transaction id.
    assert!(json.contains("\"ph\":\"s\""), "missing flow start");
    assert!(json.contains("\"ph\":\"t\""), "missing flow step");
    assert!(json.contains("\"ph\":\"f\""), "missing flow finish");

    // The text log and scoreboard views of the same session agree.
    let log = sys.trace_text_log().expect("tracing enabled");
    assert!(log.contains("0 dropped"));
    assert!(log.contains("mesh"));
    let sb = sys.trace_scoreboard().expect("tracing enabled");
    let scored: u64 = sb.noc_latency.iter().map(|h| h.count()).sum();
    assert!(scored > 0, "no inject→eject pairs scored");
    assert!(
        !sb.mesi_transitions.is_empty(),
        "no MESI transitions scored"
    );

    // Event-level sanity: the session saw coherence traffic.
    let session = sys.trace_session().expect("tracing enabled");
    let events = session.events();
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::MesiTransition as u8));
    assert!(events.iter().any(|e| e.kind == EventKind::NocInject as u8));
    assert_eq!(session.dropped(), 0);
}

/// The mask narrows what is captured without touching simulation state.
#[test]
fn mask_restricts_captured_kinds() {
    let mut sys = two_core_system();
    sys.enable_tracing(&TraceConfig::default().with_mask(masks::NOC));
    sys.run_until_halt(Time::from_us(5_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(6_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let events = sys.trace_session().expect("tracing enabled").events();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| {
        matches!(
            EventKind::from_u8(e.kind),
            Some(EventKind::NocInject | EventKind::NocRoute | EventKind::NocEject)
        )
    }));
}
