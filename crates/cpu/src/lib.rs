#![warn(missing_docs)]
//! # duet-cpu
//!
//! The processor substrate: a RISC-V-flavoured mini-ISA (**kernel IR**,
//! [`isa`]), an assembler with labels and pseudo-instructions ([`asm`]), and
//! an in-order, single-issue timing core with an integrated write-through
//! L1D ([`core`]).
//!
//! The paper runs bare-metal C on Ariane cores; this workspace hand-writes
//! the same kernels in the IR (see `duet-workloads`). What matters for the
//! evaluation is preserved: every load/store/AMO/MMIO is a real transaction
//! against the simulated coherent memory hierarchy, MMIO follows strict I/O
//! ordering (the premise of the paper's Shadow Registers), and compute
//! carries in-order issue costs.
//!
//! # Example
//!
//! ```
//! use duet_cpu::asm::Asm;
//! use duet_cpu::isa::regs;
//!
//! let mut a = Asm::new();
//! a.li(regs::T[0], 2);
//! a.li(regs::T[1], 3);
//! a.add(regs::T[2], regs::T[0], regs::T[1]);
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 4);
//! # Ok::<(), duet_cpu::asm::AsmError>(())
//! ```

pub mod asm;
pub mod core;
pub mod isa;

pub use crate::core::{Core, CoreConfig, CoreStats};
pub use asm::{Asm, AsmError};
pub use isa::{AluOp, Cond, FpCmp, FpOp, Inst, Program, Reg};
