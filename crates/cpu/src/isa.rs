//! The kernel IR: a RISC-V-flavoured mini-ISA executed by the timing core.
//!
//! The paper's benchmarks run bare-metal C on Ariane (RV64). We cannot ship
//! a C compiler, so benchmarks are hand-written in this IR via
//! [`crate::asm::Asm`]. The IR keeps the properties that matter for the
//! evaluation: every load/store/AMO/MMIO is a real transaction against the
//! simulated memory hierarchy, and ALU/FPU operations carry in-order
//! single-issue costs calibrated to an Ariane-class core.

use duet_mem::types::{AmoOp, Width};

/// A register index (x0..x31). `x0` is hardwired to zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (link).
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
}

/// Conventionally-named argument/temporary registers.
pub mod regs {
    use super::Reg;
    /// Argument/return registers a0-a7 (x10-x17).
    pub const A: [Reg; 8] = [
        Reg(10),
        Reg(11),
        Reg(12),
        Reg(13),
        Reg(14),
        Reg(15),
        Reg(16),
        Reg(17),
    ];
    /// Temporaries t0-t6 (x5-x7, x28-x31).
    pub const T: [Reg; 7] = [Reg(5), Reg(6), Reg(7), Reg(28), Reg(29), Reg(30), Reg(31)];
    /// Saved registers s0-s7 (x8, x9, x18-x23).
    pub const S: [Reg; 8] = [
        Reg(8),
        Reg(9),
        Reg(18),
        Reg(19),
        Reg(20),
        Reg(21),
        Reg(22),
        Reg(23),
    ];
}

/// Integer ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than (signed).
    Slt,
    /// Set-if-less-than (unsigned).
    Sltu,
    /// Multiplication (low 64 bits).
    Mul,
    /// Signed division (x/0 = -1, as RISC-V).
    Div,
    /// Signed remainder (x%0 = x, as RISC-V).
    Rem,
    /// Unsigned division.
    Divu,
    /// Unsigned remainder.
    Remu,
}

/// Branch conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Double-precision FPU operations (f64 values live in the integer
/// registers as raw bits, like a unified register file).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Square root (rs2 ignored).
    Sqrt,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// FP comparisons producing 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpCmp {
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Equal.
    Eq,
}

/// One kernel-IR instruction. Branch/jump targets are instruction indices
/// (resolved from labels by the assembler).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Inst {
    /// `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Immediate.
        imm: i64,
    },
    /// `rd = imm`.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: i64,
    },
    /// `rd = zero_or_sign_extend(mem[rs1 + off])`.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend the loaded value.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// `mem[rs1 + off] = rs2` (low `width` bytes).
    Store {
        /// Access width.
        width: Width,
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// `rd = atomic op at mem[base]` with operand `src` (and compare value
    /// `expected` for CAS).
    Amo {
        /// Atomic operation.
        op: AmoOp,
        /// Access width.
        width: Width,
        /// Destination (old value).
        rd: Reg,
        /// Address register (no offset, as RISC-V A).
        base: Reg,
        /// Operand register.
        src: Reg,
        /// Expected-value register (CAS only; `x0` otherwise).
        expected: Reg,
    },
    /// Memory fence: drains the store buffer and completes all outstanding
    /// accesses before the next instruction issues.
    Fence,
    /// Conditional branch to `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump; `rd` receives the return address (next index).
    Jal {
        /// Link destination (`x0` to discard).
        rd: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump to `base + off` (instruction index arithmetic).
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base register holding an instruction index.
        base: Reg,
        /// Offset added to the base.
        off: i64,
    },
    /// `rd = f64 op(rs1, rs2)` on raw f64 bits.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = (rs1 cmp rs2) as u64` on f64 bits.
    FpCmp {
        /// Comparison.
        cmp: FpCmp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = (f64)(i64)rs1` (integer to double).
    I2F {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `rd = (i64)(f64)rs1` (double to integer, round toward zero).
    F2I {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `rd = hart id` of the executing core.
    CoreId {
        /// Destination.
        rd: Reg,
    },
    /// `rd = current cycle count` (RISC-V `rdcycle`; used by benchmark
    /// drivers to timestamp measurement windows).
    RdCycle {
        /// Destination.
        rd: Reg,
    },
    /// No operation (1 cycle).
    Nop,
    /// Stops the core; the simulation ends when all cores halt.
    Halt,
}

impl Inst {
    /// Issue cost in core cycles (occupancy of the single-issue pipeline),
    /// excluding memory-system time. Calibrated to an Ariane-class in-order
    /// core: single-cycle ALU, 3-cycle multiply, 20-cycle divide, pipelined
    /// 4-cycle FP add/mul, iterative FP divide/sqrt.
    pub fn cost(&self) -> u32 {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Div | AluOp::Rem | AluOp::Divu | AluOp::Remu => 20,
                _ => 1,
            },
            Inst::Fp { op, .. } => match op {
                FpOp::Div => 18,
                FpOp::Sqrt => 22,
                _ => 4,
            },
            Inst::FpCmp { .. } | Inst::I2F { .. } | Inst::F2I { .. } => 2,
            _ => 1,
        }
    }
}

/// A fully-assembled program: instructions plus resolved labels.
#[derive(Clone, Debug, Default)]
pub struct Program {
    insts: Vec<Inst>,
    labels: std::collections::BTreeMap<String, usize>,
}

impl Program {
    /// Builds a program from raw parts (prefer [`crate::asm::Asm`]).
    pub fn from_parts(insts: Vec<Inst>, labels: std::collections::BTreeMap<String, usize>) -> Self {
        Program { insts, labels }
    }

    /// The instruction at `pc`, if in range.
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolves a label to its instruction index.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All instructions (for inspection/tests).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_reflect_complexity() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        let div = Inst::Alu {
            op: AluOp::Div,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        let fsqrt = Inst::Fp {
            op: FpOp::Sqrt,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(0),
        };
        assert_eq!(add.cost(), 1);
        assert_eq!(div.cost(), 20);
        assert!(fsqrt.cost() > add.cost());
    }

    #[test]
    fn program_fetch_and_labels() {
        let mut labels = std::collections::BTreeMap::new();
        labels.insert("start".to_string(), 0);
        let p = Program::from_parts(vec![Inst::Nop, Inst::Halt], labels);
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(1), Some(Inst::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("nope"), None);
    }
}
