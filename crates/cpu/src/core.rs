//! The in-order, single-issue timing core.
//!
//! Models an Ariane-class RV64 core (6-stage, single-issue, in-order,
//! private FPU — Sec. IV of the paper) at the fidelity of an
//! architecture-level simulator:
//!
//! * one instruction issues per cycle at best; multi-cycle ops occupy the
//!   pipeline for their [`Inst::cost`],
//! * loads are blocking (miss → the core stalls until the fill returns),
//! * stores retire through a small store buffer (write-through L1); one
//!   store is in flight to the L2 at a time, preserving store order,
//! * loads stall on a store-buffer address (line) conflict,
//! * AMOs and `Fence` drain the store buffer and block,
//! * **MMIO accesses follow I/O ordering**: they drain the store buffer and
//!   block the pipeline until the device acknowledges — this is the paper's
//!   motivation for Shadow Registers (Sec. II-F): the ack latency, not the
//!   issue rate, bounds soft-register bandwidth,
//! * instruction fetch is modelled as ideal (the kernels are tiny and the
//!   paper runs bare metal where the I-footprint is warm; documented
//!   substitution).

use std::collections::VecDeque;
use std::sync::Arc;

use duet_mem::l1::{L1Cache, L1Config};
use duet_mem::types::{Addr, LineAddr, MemReq, MemResp, Width};
use duet_sim::{Clock, Time};

use crate::isa::{AluOp, Cond, FpCmp, FpOp, Inst, Program, Reg};

/// Core configuration.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// The core (and system) clock.
    pub clock: Clock,
    /// Hart id returned by [`Inst::CoreId`].
    pub hart_id: u64,
    /// Addresses at or above this are uncached MMIO device space.
    pub mmio_base: Addr,
    /// Store buffer depth.
    pub store_buffer: usize,
    /// Extra cycles charged on a taken branch/jump (pipeline refill).
    pub taken_branch_penalty: u32,
    /// L1 data cache geometry.
    pub l1: L1Config,
}

impl CoreConfig {
    /// Dolly-like defaults at the given clock.
    pub fn dolly(clock: Clock, hart_id: u64) -> Self {
        CoreConfig {
            clock,
            hart_id,
            mmio_base: 0x4000_0000,
            store_buffer: 4,
            taken_branch_penalty: 2,
            l1: L1Config::dolly_l1d(),
        }
    }
}

/// Why the core is not issuing this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wait {
    /// Running normally.
    None,
    /// Waiting for a cached line fill: `(req id, rd, width, signed, addr)`.
    Load(u64, Reg, Width, bool, Addr),
    /// Waiting for an AMO response: `(req id, rd)`.
    Amo(u64, Reg),
    /// Waiting for an MMIO load: `(req id, rd, width, signed)`.
    MmioLoad(u64, Reg, Width, bool),
    /// Waiting for an MMIO store acknowledgement: req id.
    MmioStore(u64),
    /// Waiting for the store buffer to drain, then retry the current pc.
    Drain,
    /// Halted.
    Halted,
}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cached loads issued to the L2 (L1 misses).
    pub load_misses: u64,
    /// Loads satisfied by the L1.
    pub load_hits: u64,
    /// Stores retired.
    pub stores: u64,
    /// AMOs executed.
    pub amos: u64,
    /// MMIO loads + stores.
    pub mmio_ops: u64,
    /// Cycles spent with the pipeline blocked on memory.
    pub mem_stall_cycles: u64,
}

/// The timing core. Owns its L1D; talks to the tile through a request queue
/// and [`mem_response`](Core::mem_response).
#[derive(Clone)]
pub struct Core {
    cfg: CoreConfig,
    program: Arc<Program>,
    regs: [u64; 32],
    pc: usize,
    next_issue: Time,
    wait: Wait,
    /// Stores accepted but not yet sent to the L2.
    store_buf: VecDeque<MemReq>,
    /// Id of the store currently in flight to the L2, if any.
    store_inflight: Option<u64>,
    next_id: u64,
    out: VecDeque<MemReq>,
    l1: L1Cache,
    stats: CoreStats,
    halted: bool,
    last_breakdown: duet_sim::LatencyBreakdown,
    /// A back-invalidation hit the line of the in-flight load: use the fill
    /// data once but do not install it in the L1 (inclusion).
    fill_poisoned: bool,
}

impl Core {
    /// Creates a core at `pc = 0` with zeroed registers.
    pub fn new(cfg: CoreConfig, program: Arc<Program>) -> Self {
        Core {
            cfg,
            program,
            regs: [0; 32],
            pc: 0,
            next_issue: Time::ZERO,
            wait: Wait::None,
            store_buf: VecDeque::new(),
            store_inflight: None,
            next_id: 1,
            out: VecDeque::new(),
            l1: L1Cache::new(cfg.l1),
            stats: CoreStats::default(),
            halted: false,
            last_breakdown: duet_sim::LatencyBreakdown::new(),
            fill_poisoned: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Execution statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> duet_mem::l1::L1Stats {
        self.l1.stats()
    }

    /// Whether the core has executed `Halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current program counter (debug aid).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the L1 holds `line` (debug aid).
    pub fn l1_contains(&self, line: LineAddr) -> bool {
        self.l1.contains(line)
    }

    /// A short description of why the core is not issuing (debug aid).
    pub fn wait_state(&self) -> String {
        format!(
            "{:?} store_buf={} inflight={:?}",
            self.wait,
            self.store_buf.len(),
            self.store_inflight
        )
    }

    /// Reads a register (x0 reads as zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Jumps to a label (program setup).
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist.
    pub fn set_pc_label(&mut self, label: &str) {
        self.pc = self
            .program
            .label(label)
            .unwrap_or_else(|| panic!("unknown label `{label}`"));
    }

    /// Sets the program counter to a raw instruction index.
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// Pops the next memory request bound for the tile (L2 or MMIO,
    /// distinguished by address against `cfg.mmio_base`).
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.out.pop_front()
    }

    /// Whether `addr` falls in the MMIO region.
    pub fn is_mmio(&self, addr: Addr) -> bool {
        addr >= self.cfg.mmio_base
    }

    /// Applies a back-invalidation from the L2 (inclusion). If the
    /// invalidation targets the line of an in-flight load, the eventual
    /// fill is used once and not cached (the L2 has already given the line
    /// away; caching it would orphan a stale copy).
    pub fn back_invalidate(&mut self, line: LineAddr) {
        self.l1.invalidate(line);
        if let Wait::Load(_, _, _, _, addr) = self.wait {
            if LineAddr::containing(addr) == line {
                self.fill_poisoned = true;
            }
        }
    }

    /// Latency attribution of the most recent completed cached load/AMO
    /// miss (used by the Fig. 9 breakdown harness).
    pub fn last_breakdown(&self) -> duet_sim::LatencyBreakdown {
        self.last_breakdown
    }

    /// Delivers a memory response from the tile.
    pub fn mem_response(&mut self, resp: MemResp) {
        if self.store_inflight == Some(resp.id) {
            self.store_inflight = None;
            return;
        }
        match self.wait {
            Wait::Load(id, rd, width, signed, addr) if id == resp.id => {
                self.last_breakdown = resp.breakdown;
                let line = resp.line.expect("cached load returns a full line");
                if resp.cacheable && !self.fill_poisoned {
                    self.l1.fill(LineAddr::containing(addr), line);
                }
                self.fill_poisoned = false;
                let raw = duet_mem::types::read_scalar(&line, LineAddr::offset(addr), width);
                self.set_reg(rd, extend(raw, width, signed));
                self.wait = Wait::None;
            }
            Wait::Amo(id, rd) if id == resp.id => {
                self.set_reg(rd, resp.rdata);
                self.wait = Wait::None;
            }
            Wait::MmioLoad(id, rd, width, signed) if id == resp.id => {
                self.set_reg(rd, extend(resp.rdata & width.mask(), width, signed));
                self.wait = Wait::None;
            }
            Wait::MmioStore(id) if id == resp.id => {
                self.wait = Wait::None;
            }
            _ => panic!("unexpected memory response id {}", resp.id),
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn store_buf_conflicts(&self, line: LineAddr) -> bool {
        self.store_buf
            .iter()
            .any(|s| LineAddr::containing(s.addr) == line)
    }

    fn drain_needed(&self) -> bool {
        !self.store_buf.is_empty() || self.store_inflight.is_some()
    }

    /// Issues at most one store from the store buffer to the L2.
    fn pump_store_buffer(&mut self) {
        if self.store_inflight.is_none() {
            if let Some(req) = self.store_buf.pop_front() {
                self.store_inflight = Some(req.id);
                self.out.push_back(req);
            }
        }
    }

    /// The earliest time ticking this core can next do observable work, or
    /// `None` when it can only be woken externally (halted, or blocked on a
    /// memory response).
    ///
    /// Mirrors [`tick`](Core::tick) exactly: the store-buffer pump can act
    /// whenever no store is in flight and the buffer is non-empty (even while
    /// halted); a core waiting on memory is woken push-style by
    /// [`mem_response`](Core::mem_response); a running core issues no earlier
    /// than `next_issue`. Skipped stall edges must be reported back through
    /// [`account_skipped_edges`](Core::account_skipped_edges) so statistics
    /// stay bit-identical with edge-by-edge ticking.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if self.store_inflight.is_none() && !self.store_buf.is_empty() {
            return Some(now);
        }
        if !self.out.is_empty() {
            // A request is still queued for the tile to pop.
            return Some(now);
        }
        match self.wait {
            Wait::Halted => None,
            Wait::Load(..) | Wait::Amo(..) | Wait::MmioLoad(..) | Wait::MmioStore(..) => None,
            Wait::Drain => {
                if self.drain_needed() {
                    None
                } else {
                    Some(now)
                }
            }
            Wait::None => Some(self.next_issue.max(now)),
        }
    }

    /// Accounts for `edges` clock edges that were skipped while this core was
    /// provably inert, reproducing exactly the statistics [`tick`](Core::tick)
    /// would have recorded: a core blocked on memory (or draining with a
    /// store in flight) counts one memory-stall cycle per edge; a halted or
    /// issue-limited core counts nothing.
    pub fn account_skipped_edges(&mut self, edges: u64) {
        let stalled = match self.wait {
            Wait::Load(..) | Wait::Amo(..) | Wait::MmioLoad(..) | Wait::MmioStore(..) => true,
            Wait::Drain => self.drain_needed(),
            Wait::None | Wait::Halted => false,
        };
        if stalled {
            self.stats.mem_stall_cycles += edges;
        }
    }

    /// Advances the core by one clock edge.
    pub fn tick(&mut self, now: Time) {
        self.pump_store_buffer();
        match self.wait {
            Wait::Halted => return,
            Wait::Load(..) | Wait::Amo(..) | Wait::MmioLoad(..) | Wait::MmioStore(..) => {
                self.stats.mem_stall_cycles += 1;
                return;
            }
            Wait::Drain => {
                if self.drain_needed() {
                    self.stats.mem_stall_cycles += 1;
                    return;
                }
                self.wait = Wait::None;
            }
            Wait::None => {}
        }
        if now < self.next_issue {
            return;
        }
        let Some(inst) = self.program.fetch(self.pc) else {
            // Running off the end halts the core (defensive).
            self.halted = true;
            self.wait = Wait::Halted;
            return;
        };
        let period = self.cfg.clock.period();
        let mut next_pc = self.pc + 1;
        let mut cost = inst.cost();
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
            }
            Inst::Li { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Load {
                width,
                signed,
                rd,
                base,
                off,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                if self.is_mmio(addr) {
                    if self.drain_needed() {
                        self.wait = Wait::Drain;
                        return; // retry this instruction after the drain
                    }
                    let id = self.alloc_id();
                    self.stats.mmio_ops += 1;
                    self.out.push_back(MemReq::load(id, addr, width));
                    self.wait = Wait::MmioLoad(id, rd, width, signed);
                } else {
                    let line = LineAddr::containing(addr);
                    if self.store_buf_conflicts(line)
                        || (self.store_inflight.is_some() && self.drain_needed_for(line))
                    {
                        self.stats.mem_stall_cycles += 1;
                        return; // retry next cycle
                    }
                    match self.l1.load(addr, width) {
                        Some(raw) => {
                            self.stats.load_hits += 1;
                            self.set_reg(rd, extend(raw, width, signed));
                            cost = cost.max(self.cfg.l1.hit_cycles);
                        }
                        None => {
                            self.stats.load_misses += 1;
                            let id = self.alloc_id();
                            self.out.push_back(MemReq::load_line(id, line.base()));
                            self.wait = Wait::Load(id, rd, width, signed, addr);
                        }
                    }
                }
            }
            Inst::Store {
                width,
                src,
                base,
                off,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                let value = self.reg(src) & width.mask();
                if self.is_mmio(addr) {
                    if self.drain_needed() {
                        self.wait = Wait::Drain;
                        return;
                    }
                    let id = self.alloc_id();
                    self.stats.mmio_ops += 1;
                    self.out.push_back(MemReq::store(id, addr, width, value));
                    self.wait = Wait::MmioStore(id);
                } else {
                    if self.store_buf.len() >= self.cfg.store_buffer {
                        self.stats.mem_stall_cycles += 1;
                        return; // retry next cycle
                    }
                    self.stats.stores += 1;
                    self.l1.store(addr, width, value);
                    let id = self.alloc_id();
                    self.store_buf
                        .push_back(MemReq::store(id, addr, width, value));
                }
            }
            Inst::Amo {
                op,
                width,
                rd,
                base,
                src,
                expected,
            } => {
                if self.drain_needed() {
                    self.wait = Wait::Drain;
                    return;
                }
                let addr = self.reg(base);
                let id = self.alloc_id();
                self.stats.amos += 1;
                // The L2 performs the read-modify-write; invalidate our L1
                // copy so subsequent loads refetch the updated line.
                self.l1.invalidate(LineAddr::containing(addr));
                self.out.push_back(MemReq::amo(
                    id,
                    op,
                    addr,
                    width,
                    self.reg(src),
                    self.reg(expected),
                ));
                self.wait = Wait::Amo(id, rd);
            }
            Inst::Fence => {
                if self.drain_needed() {
                    self.wait = Wait::Drain;
                    return;
                }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if branch_taken(cond, self.reg(rs1), self.reg(rs2)) {
                    next_pc = target;
                    cost += self.cfg.taken_branch_penalty;
                }
            }
            Inst::Jal { rd, target } => {
                self.set_reg(rd, (self.pc + 1) as u64);
                next_pc = target;
                cost += self.cfg.taken_branch_penalty;
            }
            Inst::Jalr { rd, base, off } => {
                let target = self.reg(base).wrapping_add(off as u64) as usize;
                self.set_reg(rd, (self.pc + 1) as u64);
                next_pc = target;
                cost += self.cfg.taken_branch_penalty;
            }
            Inst::Fp { op, rd, rs1, rs2 } => {
                let a = f64::from_bits(self.reg(rs1));
                let b = f64::from_bits(self.reg(rs2));
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                    FpOp::Sqrt => a.sqrt(),
                    FpOp::Min => a.min(b),
                    FpOp::Max => a.max(b),
                };
                self.set_reg(rd, v.to_bits());
            }
            Inst::FpCmp { cmp, rd, rs1, rs2 } => {
                let a = f64::from_bits(self.reg(rs1));
                let b = f64::from_bits(self.reg(rs2));
                let v = match cmp {
                    FpCmp::Lt => a < b,
                    FpCmp::Le => a <= b,
                    FpCmp::Eq => a == b,
                };
                self.set_reg(rd, u64::from(v));
            }
            Inst::I2F { rd, rs1 } => {
                let v = self.reg(rs1) as i64 as f64;
                self.set_reg(rd, v.to_bits());
            }
            Inst::F2I { rd, rs1 } => {
                let v = f64::from_bits(self.reg(rs1));
                self.set_reg(rd, v as i64 as u64);
            }
            Inst::CoreId { rd } => self.set_reg(rd, self.cfg.hart_id),
            Inst::RdCycle { rd } => self.set_reg(rd, self.cfg.clock.cycles_at(now)),
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                self.wait = Wait::Halted;
                self.stats.instret += 1;
                return;
            }
        }
        self.stats.instret += 1;
        self.pc = next_pc;
        self.next_issue = now + period.mul(u64::from(cost));
    }

    /// Whether a load to `line` must wait for the in-flight store (same
    /// line only; loads may pass stores to other lines, as in TSO).
    fn drain_needed_for(&self, _line: LineAddr) -> bool {
        // The in-flight store's address is no longer in the buffer; being
        // conservative only about buffered stores keeps TSO load->load and
        // store->store order while letting loads pass unrelated stores.
        false
    }
}

mod snap_impls {
    use std::collections::VecDeque;

    use duet_mem::types::Width;
    use duet_sim::{LatencyBreakdown, Pack, Snap, SnapError, SnapReader, SnapWriter, Time};

    use super::{Core, CoreStats, Wait};
    use crate::isa::Reg;

    impl Pack for Reg {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(self.0);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let v = r.u8()?;
            if v >= 32 {
                return Err(SnapError::Corrupt("register index out of range"));
            }
            Ok(Reg(v))
        }
    }

    impl Pack for Wait {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                Wait::None => w.u8(0),
                Wait::Load(id, rd, width, signed, addr) => {
                    w.u8(1);
                    w.u64(*id);
                    rd.pack(w);
                    width.pack(w);
                    signed.pack(w);
                    w.u64(*addr);
                }
                Wait::Amo(id, rd) => {
                    w.u8(2);
                    w.u64(*id);
                    rd.pack(w);
                }
                Wait::MmioLoad(id, rd, width, signed) => {
                    w.u8(3);
                    w.u64(*id);
                    rd.pack(w);
                    width.pack(w);
                    signed.pack(w);
                }
                Wait::MmioStore(id) => {
                    w.u8(4);
                    w.u64(*id);
                }
                Wait::Drain => w.u8(5),
                Wait::Halted => w.u8(6),
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => Wait::None,
                1 => Wait::Load(
                    r.u64()?,
                    Reg::unpack(r)?,
                    Width::unpack(r)?,
                    bool::unpack(r)?,
                    r.u64()?,
                ),
                2 => Wait::Amo(r.u64()?, Reg::unpack(r)?),
                3 => Wait::MmioLoad(
                    r.u64()?,
                    Reg::unpack(r)?,
                    Width::unpack(r)?,
                    bool::unpack(r)?,
                ),
                4 => Wait::MmioStore(r.u64()?),
                5 => Wait::Drain,
                6 => Wait::Halted,
                _ => return Err(SnapError::Corrupt("invalid Wait discriminant")),
            })
        }
    }

    impl Pack for CoreStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.instret);
            w.u64(self.load_misses);
            w.u64(self.load_hits);
            w.u64(self.stores);
            w.u64(self.amos);
            w.u64(self.mmio_ops);
            w.u64(self.mem_stall_cycles);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(CoreStats {
                instret: r.u64()?,
                load_misses: r.u64()?,
                load_hits: r.u64()?,
                stores: r.u64()?,
                amos: r.u64()?,
                mmio_ops: r.u64()?,
                mem_stall_cycles: r.u64()?,
            })
        }
    }

    impl Snap for Core {
        /// The program is identified by the owning system's config, not
        /// serialized; everything architectural and micro-architectural is.
        fn save(&self, w: &mut SnapWriter) {
            self.regs.pack(w);
            w.len64(self.pc);
            self.next_issue.pack(w);
            self.wait.pack(w);
            self.store_buf.pack(w);
            self.store_inflight.pack(w);
            w.u64(self.next_id);
            self.out.pack(w);
            self.l1.save(w);
            self.stats.pack(w);
            self.halted.pack(w);
            self.last_breakdown.pack(w);
            self.fill_poisoned.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.regs = Pack::unpack(r)?;
            self.pc = r.len64()?;
            self.next_issue = Time::unpack(r)?;
            self.wait = Wait::unpack(r)?;
            self.store_buf = VecDeque::unpack(r)?;
            self.store_inflight = Option::unpack(r)?;
            self.next_id = r.u64()?;
            self.out = VecDeque::unpack(r)?;
            // UFCS: `L1Cache::load` (the cache lookup) shadows `Snap::load`.
            Snap::load(&mut self.l1, r)?;
            self.stats = CoreStats::unpack(r)?;
            self.halted = bool::unpack(r)?;
            self.last_breakdown = LatencyBreakdown::unpack(r)?;
            self.fill_poisoned = bool::unpack(r)?;
            Ok(())
        }
    }
}

impl duet_sim::Component for Core {
    fn name(&self) -> String {
        format!("core{}", self.cfg.hart_id)
    }

    fn tick(&mut self, now: Time) {
        Core::tick(self, now);
    }

    fn next_event_time(&self, now: Time) -> Option<Time> {
        Core::next_event_time(self, now)
    }
}

fn extend(raw: u64, width: Width, signed: bool) -> u64 {
    if !signed || width == Width::B8 {
        return raw & width.mask();
    }
    let bits = width.bytes() * 8;
    let shift = 64 - bits;
    (((raw << shift) as i64) >> shift) as u64
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32 & 63),
        AluOp::Srl => a.wrapping_shr(b as u32 & 63),
        AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn branch_taken(cond: Cond, a: u64, b: u64) -> bool {
    match cond {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => (a as i64) < (b as i64),
        Cond::Ge => (a as i64) >= (b as i64),
        Cond::Ltu => a < b,
        Cond::Geu => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::regs;
    use duet_mem::types::MemOp;
    use std::collections::BTreeMap;

    /// Instant functional memory with a fixed response delay, for testing
    /// the core in isolation.
    struct TestMem {
        data: BTreeMap<u64, u8>,
        delay_cycles: u64,
        inflight: Vec<(Time, MemResp)>,
    }

    impl TestMem {
        fn new() -> Self {
            TestMem {
                data: BTreeMap::new(),
                delay_cycles: 3,
                inflight: Vec::new(),
            }
        }

        fn read_line(&self, base: u64) -> [u8; 16] {
            let mut line = [0u8; 16];
            for (i, b) in line.iter_mut().enumerate() {
                *b = self.data.get(&(base + i as u64)).copied().unwrap_or(0);
            }
            line
        }

        fn write_scalar(&mut self, addr: u64, width: Width, v: u64) {
            for i in 0..width.bytes() {
                self.data.insert(addr + i as u64, (v >> (8 * i)) as u8);
            }
        }

        fn read_scalar(&self, addr: u64, width: Width) -> u64 {
            let mut v = 0u64;
            for i in 0..width.bytes() {
                v |= u64::from(self.data.get(&(addr + i as u64)).copied().unwrap_or(0)) << (8 * i);
            }
            v
        }

        fn service(&mut self, now: Time, req: MemReq) {
            let ready = now + Time::from_ps(1000 * self.delay_cycles);
            let resp = match req.op {
                MemOp::LoadLine | MemOp::IFetch => MemResp {
                    id: req.id,
                    rdata: 0,
                    line: Some(self.read_line(req.addr & !0xF)),
                    cacheable: true,
                    breakdown: Default::default(),
                },
                MemOp::Load(w) => MemResp {
                    id: req.id,
                    rdata: self.read_scalar(req.addr, w),
                    line: None,
                    cacheable: true,
                    breakdown: Default::default(),
                },
                MemOp::Store(w) => {
                    self.write_scalar(req.addr, w, req.wdata);
                    MemResp {
                        id: req.id,
                        rdata: 0,
                        line: None,
                        cacheable: true,
                        breakdown: Default::default(),
                    }
                }
                MemOp::Amo(op, w) => {
                    let mut line = self.read_line(req.addr & !0xF);
                    let old = duet_mem::types::apply_amo(
                        &mut line,
                        (req.addr & 0xF) as usize,
                        w,
                        op,
                        req.wdata,
                        req.expected,
                    );
                    for (i, b) in line.iter().enumerate() {
                        self.data.insert((req.addr & !0xF) + i as u64, *b);
                    }
                    MemResp {
                        id: req.id,
                        rdata: old,
                        line: None,
                        cacheable: true,
                        breakdown: Default::default(),
                    }
                }
            };
            self.inflight.push((ready, resp));
        }

        fn deliver(&mut self, now: Time, core: &mut Core) {
            let ready: Vec<usize> = self
                .inflight
                .iter()
                .enumerate()
                .filter(|(_, (t, _))| *t <= now)
                .map(|(i, _)| i)
                .collect();
            for i in ready.into_iter().rev() {
                let (_, resp) = self.inflight.remove(i);
                core.mem_response(resp);
            }
        }
    }

    /// Runs a program to completion, returning (cycles, core, mem).
    fn run(asm: Asm, setup: impl FnOnce(&mut Core, &mut TestMem)) -> (u64, Core, TestMem) {
        let prog = Arc::new(asm.assemble().unwrap());
        let clock = Clock::ghz1();
        let mut core = Core::new(CoreConfig::dolly(clock, 0), prog);
        let mut mem = TestMem::new();
        setup(&mut core, &mut mem);
        let mut cycles = 0u64;
        let mut now = Time::ZERO;
        while !core.is_halted() {
            now = clock.next_edge_after(now);
            mem.deliver(now, &mut core);
            core.tick(now);
            while let Some(req) = core.pop_mem_request() {
                mem.service(now, req);
            }
            cycles += 1;
            assert!(cycles < 1_000_000, "program did not halt");
        }
        (cycles, core, mem)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Asm::new();
        let (n, acc, i) = (regs::A[0], regs::T[0], regs::T[1]);
        a.li(acc, 0);
        a.li(i, 0);
        a.label("loop");
        a.add(acc, acc, i);
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let (_, core, _) = run(a, |c, _| c.set_reg(regs::A[0], 10));
        assert_eq!(core.reg(regs::T[0]), 45);
    }

    #[test]
    fn store_then_load_roundtrip_through_memory() {
        let mut a = Asm::new();
        let (addr, v, out) = (regs::T[0], regs::T[1], regs::T[2]);
        a.li(addr, 0x1000);
        a.li(v, 0xDEAD);
        a.sd(v, addr, 0);
        a.fence();
        a.ld(out, addr, 0);
        a.halt();
        let (_, core, mem) = run(a, |_, _| {});
        assert_eq!(core.reg(regs::T[2]), 0xDEAD);
        assert_eq!(mem.read_scalar(0x1000, Width::B8), 0xDEAD);
    }

    #[test]
    fn load_miss_stalls_then_hits() {
        let mut a = Asm::new();
        let (addr, x, y) = (regs::T[0], regs::T[1], regs::T[2]);
        a.li(addr, 0x2000);
        a.ld(x, addr, 0); // miss
        a.ld(y, addr, 8); // same line: L1 hit
        a.halt();
        let (_, core, _) = run(a, |_, m| {
            m.write_scalar(0x2000, Width::B8, 7);
            m.write_scalar(0x2008, Width::B8, 9);
        });
        assert_eq!(core.reg(regs::T[1]), 7);
        assert_eq!(core.reg(regs::T[2]), 9);
        assert_eq!(core.stats().load_misses, 1);
        assert_eq!(core.stats().load_hits, 1);
    }

    #[test]
    fn signed_loads_extend() {
        let mut a = Asm::new();
        a.li(regs::T[0], 0x3000);
        a.lw(regs::T[1], regs::T[0], 0);
        a.lwu(regs::T[2], regs::T[0], 0);
        a.halt();
        let (_, core, _) = run(a, |_, m| {
            m.write_scalar(0x3000, Width::B4, 0xFFFF_FFFF);
        });
        assert_eq!(core.reg(regs::T[1]), u64::MAX, "lw sign-extends");
        assert_eq!(core.reg(regs::T[2]), 0xFFFF_FFFF, "lwu zero-extends");
    }

    #[test]
    fn function_call_with_stack() {
        // f(x) = x*2, called twice via the stack.
        let mut a = Asm::new();
        a.li(Reg::SP, 0x8000);
        a.li(regs::A[0], 21);
        a.call("f");
        a.mv(regs::S[0], regs::A[0]);
        a.li(regs::A[0], 4);
        a.call("f");
        a.add(regs::A[0], regs::A[0], regs::S[0]);
        a.halt();
        a.label("f");
        a.addi(Reg::SP, Reg::SP, -8);
        a.sd(Reg::RA, Reg::SP, 0);
        a.add(regs::A[0], regs::A[0], regs::A[0]);
        a.ld(Reg::RA, Reg::SP, 0);
        a.addi(Reg::SP, Reg::SP, 8);
        a.ret();
        let (_, core, _) = run(a, |_, _| {});
        assert_eq!(core.reg(regs::A[0]), 50);
    }

    #[test]
    fn amo_add_is_atomic_rmw() {
        let mut a = Asm::new();
        a.li(regs::T[0], 0x4000);
        a.li(regs::T[1], 5);
        a.amoadd(regs::T[2], regs::T[0], regs::T[1]);
        a.halt();
        let (_, core, mem) = run(a, |_, m| m.write_scalar(0x4000, Width::B8, 10));
        assert_eq!(core.reg(regs::T[2]), 10, "AMO returns old value");
        assert_eq!(mem.read_scalar(0x4000, Width::B8), 15);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut a = Asm::new();
        a.li(regs::T[0], 0x5000);
        a.li(regs::T[1], 0); // expected
        a.li(regs::T[2], 1); // new
        a.cas(regs::T[3], regs::T[0], regs::T[1], regs::T[2]);
        a.cas(regs::T[4], regs::T[0], regs::T[1], regs::T[2]); // now fails
        a.halt();
        let (_, core, mem) = run(a, |_, _| {});
        assert_eq!(core.reg(regs::T[3]), 0, "first CAS sees 0 (success)");
        assert_eq!(core.reg(regs::T[4]), 1, "second CAS sees 1 (failure)");
        assert_eq!(mem.read_scalar(0x5000, Width::B8), 1);
    }

    #[test]
    fn mmio_store_blocks_until_ack() {
        let mut a = Asm::new();
        a.li(regs::T[0], 0x4000_0000u64 as i64);
        a.li(regs::T[1], 7);
        a.sd(regs::T[1], regs::T[0], 0);
        a.halt();
        let (cycles, core, _) = run(a, |_, _| {});
        assert_eq!(core.stats().mmio_ops, 1);
        // 3 instructions + ~delay cycles of blocking: more than 4 cycles.
        assert!(cycles >= 5, "MMIO store must block: {cycles} cycles");
    }

    #[test]
    fn taken_branch_pays_penalty() {
        // Loop of N taken branches vs straightline: cycle gap shows penalty.
        let mut a = Asm::new();
        let i = regs::T[0];
        a.li(i, 0);
        a.label("l");
        a.addi(i, i, 1);
        a.slti(regs::T[1], i, 100);
        a.bnez(regs::T[1], "l");
        a.halt();
        let (cycles, _, _) = run(a, |_, _| {});
        // 100 iterations * (3 insts + 2 penalty) ≈ 500.
        assert!(cycles > 400, "taken-branch penalty missing: {cycles}");
    }

    #[test]
    fn coreid_reads_hart() {
        let mut a = Asm::new();
        a.coreid(regs::T[0]);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let mut core = Core::new(CoreConfig::dolly(Clock::ghz1(), 3), prog);
        let mut now = Time::ZERO;
        while !core.is_halted() {
            now = Clock::ghz1().next_edge_after(now);
            core.tick(now);
        }
        assert_eq!(core.reg(regs::T[0]), 3);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut a = Asm::new();
        a.li(Reg::ZERO, 99);
        a.mv(regs::T[0], Reg::ZERO);
        a.halt();
        let (_, core, _) = run(a, |_, _| {});
        assert_eq!(core.reg(regs::T[0]), 0);
    }

    #[test]
    fn fp_pipeline_computes() {
        let mut a = Asm::new();
        a.lfd(regs::T[0], 2.0);
        a.lfd(regs::T[1], 8.0);
        a.fmul(regs::T[2], regs::T[0], regs::T[1]);
        a.fsqrt(regs::T[3], regs::T[2]);
        a.fcmplt(regs::T[4], regs::T[0], regs::T[1]);
        a.halt();
        let (_, core, _) = run(a, |_, _| {});
        assert_eq!(f64::from_bits(core.reg(regs::T[2])), 16.0);
        assert_eq!(f64::from_bits(core.reg(regs::T[3])), 4.0);
        assert_eq!(core.reg(regs::T[4]), 1);
    }

    #[test]
    fn store_buffer_allows_overlap() {
        // Stores to distinct lines shouldn't serialize the pipeline stall
        // for each one (write-through buffered).
        let mut a = Asm::new();
        a.li(regs::T[0], 0x6000);
        for k in 0..4 {
            a.li(regs::T[1], k);
            a.sd(regs::T[1], regs::T[0], k * 64);
        }
        a.halt();
        let (cycles, core, _) = run(a, |_, _| {});
        assert_eq!(core.stats().stores, 4);
        // 9 instructions + drain; far less than 4 * blocking-delay.
        assert!(cycles < 40, "store buffer not overlapping: {cycles}");
    }
}
