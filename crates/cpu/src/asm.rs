//! A small assembler for the kernel IR with string labels, forward
//! references, and the usual pseudo-instructions.
//!
//! # Example
//!
//! ```
//! use duet_cpu::asm::Asm;
//! use duet_cpu::isa::{regs, Reg};
//!
//! let mut a = Asm::new();
//! let (n, acc, i) = (regs::A[0], regs::T[0], regs::T[1]);
//! a.li(acc, 0);
//! a.li(i, 0);
//! a.label("loop");
//! a.add(acc, acc, i);
//! a.addi(i, i, 1);
//! a.blt(i, n, "loop");
//! a.halt();
//! let prog = a.assemble().unwrap();
//! assert!(prog.len() > 0);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use duet_mem::types::{AmoOp, Width};

use crate::isa::{AluOp, Cond, FpCmp, FpOp, Inst, Program, Reg};

/// Error produced by [`Asm::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An instruction whose target may still be a symbolic label.
#[derive(Clone, Debug)]
enum Draft {
    Ready(Inst),
    Branch {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
    /// `rd = instruction index of label` (for indirect calls/returns).
    La {
        rd: Reg,
        label: String,
    },
}

/// The assembler. Emit instructions with the mnemonic methods, then call
/// [`assemble`](Asm::assemble).
#[derive(Clone, Debug, Default)]
pub struct Asm {
    drafts: Vec<Draft>,
    labels: BTreeMap<String, usize>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (where the next emitted instruction lands).
    pub fn here(&self) -> usize {
        self.drafts.len()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (an assembly bug).
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.drafts.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.drafts.push(Draft::Ready(inst));
    }

    // ----- ALU -----

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 << rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 >> rs2` (logical).
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 / rs2` (signed).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Div,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 % rs2` (signed).
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Rem,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 < rs2)` signed.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 < rs2)` unsigned.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = (rs1 < imm)` signed.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::Li { rd, imm });
    }

    /// `rd = rs` (register move).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Loads the raw bits of an `f64` constant.
    pub fn lfd(&mut self, rd: Reg, value: f64) {
        self.li(rd, value.to_bits() as i64);
    }

    // ----- memory -----

    /// `rd = mem64[base + off]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Load {
            width: Width::B8,
            signed: false,
            rd,
            base,
            off,
        });
    }

    /// `rd = zext(mem32[base + off])`.
    pub fn lwu(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Load {
            width: Width::B4,
            signed: false,
            rd,
            base,
            off,
        });
    }

    /// `rd = sext(mem32[base + off])`.
    pub fn lw(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Load {
            width: Width::B4,
            signed: true,
            rd,
            base,
            off,
        });
    }

    /// `rd = zext(mem8[base + off])`.
    pub fn lbu(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Load {
            width: Width::B1,
            signed: false,
            rd,
            base,
            off,
        });
    }

    /// `mem64[base + off] = src`.
    pub fn sd(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Inst::Store {
            width: Width::B8,
            src,
            base,
            off,
        });
    }

    /// `mem32[base + off] = src`.
    pub fn sw(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Inst::Store {
            width: Width::B4,
            src,
            base,
            off,
        });
    }

    /// `mem8[base + off] = src`.
    pub fn sb(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Inst::Store {
            width: Width::B1,
            src,
            base,
            off,
        });
    }

    /// `rd = amoswap.d(mem[base], src)`.
    pub fn amoswap(&mut self, rd: Reg, base: Reg, src: Reg) {
        self.emit(Inst::Amo {
            op: AmoOp::Swap,
            width: Width::B8,
            rd,
            base,
            src,
            expected: Reg::ZERO,
        });
    }

    /// `rd = amoadd.d(mem[base], src)`.
    pub fn amoadd(&mut self, rd: Reg, base: Reg, src: Reg) {
        self.emit(Inst::Amo {
            op: AmoOp::Add,
            width: Width::B8,
            rd,
            base,
            src,
            expected: Reg::ZERO,
        });
    }

    /// `rd = cas.d(mem[base], expected, src)` — compare-and-swap (models an
    /// LR/SC pair executed at the coherence point).
    pub fn cas(&mut self, rd: Reg, base: Reg, expected: Reg, src: Reg) {
        self.emit(Inst::Amo {
            op: AmoOp::Cas,
            width: Width::B8,
            rd,
            base,
            src,
            expected,
        });
    }

    /// Full memory fence.
    pub fn fence(&mut self) {
        self.emit(Inst::Fence);
    }

    // ----- control flow -----

    fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) {
        self.drafts.push(Draft::Branch {
            cond,
            rs1,
            rs2,
            label: label.to_string(),
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Eq, rs1, rs2, label);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ne, rs1, rs2, label);
    }

    /// Branch if less-than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Lt, rs1, rs2, label);
    }

    /// Branch if greater-or-equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ge, rs1, rs2, label);
    }

    /// Branch if less-than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ltu, rs1, rs2, label);
    }

    /// Branch if greater-or-equal (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Geu, rs1, rs2, label);
    }

    /// Branch if zero.
    pub fn beqz(&mut self, rs1: Reg, label: &str) {
        self.beq(rs1, Reg::ZERO, label);
    }

    /// Branch if non-zero.
    pub fn bnez(&mut self, rs1: Reg, label: &str) {
        self.bne(rs1, Reg::ZERO, label);
    }

    /// Unconditional jump.
    pub fn j(&mut self, label: &str) {
        self.drafts.push(Draft::Jal {
            rd: Reg::ZERO,
            label: label.to_string(),
        });
    }

    /// Call: jump and link into `ra`.
    pub fn call(&mut self, label: &str) {
        self.drafts.push(Draft::Jal {
            rd: Reg::RA,
            label: label.to_string(),
        });
    }

    /// Return: jump to `ra`.
    pub fn ret(&mut self) {
        self.emit(Inst::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            off: 0,
        });
    }

    /// Indirect jump-and-link.
    pub fn jalr(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Jalr { rd, base, off });
    }

    /// `rd = instruction index of label` (for computed calls).
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.drafts.push(Draft::La {
            rd,
            label: label.to_string(),
        });
    }

    // ----- FP -----

    /// `rd = rs1 +. rs2` (f64).
    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Fp {
            op: FpOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 -. rs2`.
    pub fn fsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Fp {
            op: FpOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 *. rs2`.
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Fp {
            op: FpOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 /. rs2`.
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Fp {
            op: FpOp::Div,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = sqrt(rs1)`.
    pub fn fsqrt(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Inst::Fp {
            op: FpOp::Sqrt,
            rd,
            rs1,
            rs2: Reg::ZERO,
        });
    }

    /// `rd = (rs1 <. rs2)`.
    pub fn fcmplt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::FpCmp {
            cmp: FpCmp::Lt,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 <=. rs2)`.
    pub fn fcmple(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::FpCmp {
            cmp: FpCmp::Le,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (f64)(i64)rs1`.
    pub fn i2f(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Inst::I2F { rd, rs1 });
    }

    /// `rd = (i64)(f64)rs1` (truncating).
    pub fn f2i(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Inst::F2I { rd, rs1 });
    }

    // ----- misc -----

    /// `rd = hart id`.
    pub fn coreid(&mut self, rd: Reg) {
        self.emit(Inst::CoreId { rd });
    }

    /// `rd = current cycle count`.
    pub fn rdcycle(&mut self, rd: Reg) {
        self.emit(Inst::RdCycle { rd });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Halts the core.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch/jump references an
    /// unknown label.
    pub fn assemble(self) -> Result<Program, AsmError> {
        let labels = self.labels;
        let resolve = |l: &String| -> Result<usize, AsmError> {
            labels
                .get(l)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(l.clone()))
        };
        let mut insts = Vec::with_capacity(self.drafts.len());
        for d in &self.drafts {
            let inst = match d {
                Draft::Ready(i) => *i,
                Draft::Branch {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(label)?,
                },
                Draft::Jal { rd, label } => Inst::Jal {
                    rd: *rd,
                    target: resolve(label)?,
                },
                Draft::La { rd, label } => Inst::Li {
                    rd: *rd,
                    imm: resolve(label)? as i64,
                },
            };
            insts.push(inst);
        }
        Ok(Program::from_parts(insts, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.j("end"); // forward
        a.label("mid");
        a.nop();
        a.label("end");
        a.j("mid"); // backward
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 2
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 1
            })
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn call_links_ra() {
        let mut a = Asm::new();
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::RA,
                target: 2
            })
        );
    }

    #[test]
    fn la_materializes_label_index() {
        let mut a = Asm::new();
        a.la(regs::T[0], "data");
        a.halt();
        a.label("data");
        a.nop();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Li {
                rd: regs::T[0],
                imm: 2
            })
        );
    }

    #[test]
    fn lfd_roundtrips_f64_bits() {
        let mut a = Asm::new();
        a.lfd(regs::T[0], 3.25);
        let p = a.assemble().unwrap();
        match p.fetch(0) {
            Some(Inst::Li { imm, .. }) => assert_eq!(f64::from_bits(imm as u64), 3.25),
            other => panic!("unexpected {other:?}"),
        }
    }
}
