//! Intra-run parallel simulation: the sharded fast-edge component passes.
//!
//! The fast edge is split into four regions:
//!
//! 1. **Serial prelude** (coordinator only): OS tasks, injection pump.
//! 2. **Sharded mesh tick** ([`System::mesh_pass`]): the router grid is
//!    partitioned into contiguous ranges ticked concurrently; each
//!    shard's switch arbitration works against a start-of-tick fullness
//!    snapshot, defers every queue mutation outside its range into a
//!    boundary-exchange lane, and the coordinator replays the lanes at a
//!    deterministic merge in (shard, port, queue) order — conservative
//!    PDES with the one-cycle link latency as lookahead, one pool epoch
//!    per mesh tick. The partition adapts to observed per-router load at
//!    fixed simulated-time quanta (see `duet-noc`). Ejection dispatch
//!    stays serial after the merge.
//! 3. **Sharded component passes**: the per-node components (private L2s,
//!    L3 shards, cores) are partitioned into contiguous node ranges — one
//!    [`ShardCtx`] per shard — and run concurrently between two epoch
//!    barriers. The serial loop is the degenerate case: one full-range
//!    shard through the *same* code path.
//! 4. **Serial postlude**: the adapter pass, then a deterministic merge
//!    of per-shard output lanes (deferred MMIO inserts, injection-pipe
//!    counters, dirty-node lists) in ascending shard order.
//!
//! # Determinism argument
//!
//! The conservative lookahead between shards is one clock edge: every
//! cross-shard channel (mesh hop FIFOs, injection pipes) has next-edge
//! visibility, so within one edge a shard can neither observe nor affect
//! another shard's components. Concretely:
//!
//! * Every queue push a shard performs lands in a structure owned by its
//!   own node range (its pipes, its caches), so per-queue push order is a
//!   pure function of the within-shard pass order — identical to serial.
//! * The only cross-shard writes are `L3RespDrop` budget decrements; each
//!   fault spec targets a single node, a node belongs to exactly one
//!   shard, so each counter has one consumer per edge.
//! * Side effects that would interleave nondeterministically are
//!   *deferred into per-shard lanes* and replayed at the merge in shard
//!   order: MMIO-id slab inserts (ascending core order — exactly the
//!   serial insert order) and trace events from L2s/L3s (per-shard
//!   scratch rings drained in serial component order).
//!
//! Hence merged state, statistics, and traces are byte-identical to the
//! serial loop for any shard count — the differential suite
//! (`tests/tests/parallel_determinism.rs`) asserts this.
//!
//! # Execution modes
//!
//! With one shard the passes run inline with plain borrows. With several
//! shards and real host parallelism, a lazily-spawned [`ShardPool`] of
//! persistent workers runs them; the coordinator publishes raw,
//! range-disjoint views ([`RawShardView`]) guarded by an
//! [`EpochBarrier`]. On a single-CPU host the same sharded schedule runs
//! inline on the coordinator (so the reordered schedule, lane deferral,
//! and scratch tracing are exercised even without threads);
//! `DUET_SIM_FORCE_THREADS=1` forces real workers regardless.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use duet_core::DuetMsg;
use duet_cpu::Core;
use duet_mem::priv_cache::PrivCache;
use duet_mem::types::MemReq;
use duet_mem::L3Shard;
use duet_noc::NodeId;
use duet_sim::{EpochBarrier, Link, Time};
use duet_trace::{TraceBuffer, Tracer};
use duet_verify::FaultKind;

use crate::config::SystemConfig;
use crate::system::{NodeRole, System};

/// One shard of the component graph: a contiguous node range plus the
/// core indices living inside it (cores occupy nodes `0..processors`).
#[derive(Clone, Debug)]
pub(crate) struct ShardSpec {
    /// Mesh nodes (and hence L3 shards / injection pipes) in this shard.
    pub(crate) nodes: Range<usize>,
    /// Core (= private L2) indices in this shard: `nodes ∩ 0..processors`.
    pub(crate) cores: Range<usize>,
}

/// Per-shard output lane: side effects a worker may not apply directly
/// (they would interleave nondeterministically across shards), collected
/// during the parallel region and replayed at the merge in shard order.
#[derive(Debug, Default)]
pub(crate) struct ShardLane {
    /// Deferred MMIO requests: `(core index, original request)`. Replayed
    /// ascending at the merge so `mmio_ids` slab inserts happen in the
    /// exact serial order.
    pub(crate) mmio: Vec<(usize, MemReq)>,
    /// Injection-pipe pushes performed by this shard this edge (folded
    /// into `inject_pending_total` at the merge).
    pub(crate) pushed: usize,
    /// Nodes whose injection pipes went non-empty this edge (merged into
    /// the global dirty set).
    pub(crate) dirty: Vec<NodeId>,
}

/// Deterministic weight-balanced contiguous partition of the node range.
/// Core nodes carry most of the per-edge work (core + L2 + L3 ticks),
/// hub nodes a little (their L3; the hub itself runs in the serial
/// adapter pass), filler nodes only their L3.
pub(crate) fn build_shard_plan(
    node_roles: &[NodeRole],
    processors: usize,
    shards: usize,
) -> Vec<ShardSpec> {
    let weights: Vec<u64> = node_roles
        .iter()
        .map(|r| match r {
            NodeRole::Core(_) => 6,
            NodeRole::Hub(_) => 2,
            NodeRole::ShardOnly => 1,
        })
        .collect();
    duet_sim::partition_balanced(&weights, shards)
        .into_iter()
        .map(|nodes| {
            let cores = nodes.start.min(processors)..nodes.end.min(processors);
            ShardSpec { nodes, cores }
        })
        .collect()
}

/// Resolves the effective shard count: `DUET_SIM_THREADS` overrides the
/// config, `0` means the host's available parallelism, and the result is
/// clamped to `[1, nodes]`.
pub(crate) fn resolve_sim_shards(cfg_threads: usize, nodes: usize) -> usize {
    let requested = std::env::var("DUET_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(cfg_threads);
    let resolved = if requested == 0 {
        host_parallelism()
    } else {
        requested
    };
    resolved.clamp(1, nodes.max(1))
}

/// Resolves the effective mesh-tick shard count: `DUET_MESH_SHARDS`
/// overrides the config, `0` means "follow the resolved `sim_threads`
/// shard count", and the result is clamped to `[1, nodes]`.
pub(crate) fn resolve_mesh_shards(cfg_value: usize, sim_shards: usize, nodes: usize) -> usize {
    let requested = std::env::var("DUET_MESH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(cfg_value);
    let resolved = if requested == 0 {
        sim_shards
    } else {
        requested
    };
    resolved.clamp(1, nodes.max(1))
}

/// Whether sharded passes should use real worker threads: more than one
/// host CPU, or the `DUET_SIM_FORCE_THREADS=1` escape hatch (used by the
/// determinism tests to exercise the pool on single-CPU hosts).
pub(crate) fn want_worker_threads() -> bool {
    std::env::var("DUET_SIM_FORCE_THREADS").is_ok_and(|v| v == "1") || host_parallelism() > 1
}

/// The host's available parallelism, defaulting to 1.
pub(crate) fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Mutex lock that shrugs off poisoning: the protected structures (trace
/// scratch rings, view slots) stay valid even if a worker panicked, and
/// the panic itself surfaces at join.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One shard's working set for a single fast edge: disjoint slices of
/// the per-node component vectors, plus the shared (read-only) config and
/// fault budgets, plus this shard's output lane.
pub(crate) struct ShardCtx<'a> {
    pub(crate) now: Time,
    pub(crate) gate: bool,
    pub(crate) faulted: bool,
    /// First global node id of the `l3s`/`pipes` slices.
    pub(crate) node0: usize,
    /// First global core index of the `cores`/`l2s`/`core_held` slices.
    pub(crate) core0: usize,
    pub(crate) cfg: &'a SystemConfig,
    pub(crate) cores: &'a mut [Core],
    pub(crate) l2s: &'a mut [PrivCache],
    pub(crate) l3s: &'a mut [L3Shard],
    pub(crate) core_held: &'a mut [Option<MemReq>],
    pub(crate) pipes: &'a mut [Link<(NodeId, DuetMsg)>],
    pub(crate) fault_budget: &'a [AtomicU64],
    pub(crate) lane: &'a mut ShardLane,
}

impl ShardCtx<'_> {
    /// Queues `(dst, msg)` on `src`'s injection pipe — `src` always lies
    /// inside this shard's node range (components only inject from their
    /// own node), so no cross-shard write ever happens here.
    fn enqueue(&mut self, src: NodeId, dst: NodeId, msg: DuetMsg) {
        let pipe = &mut self.pipes[src - self.node0];
        if pipe.is_empty() {
            self.lane.dirty.push(src);
        }
        if pipe.push(self.now, (dst, msg)).is_err() {
            unreachable!("injection pipes are unbounded");
        }
        self.lane.pushed += 1;
    }

    /// The three per-node component passes of a fast edge, in the same
    /// within-shard order as the serial loop: L2s, L3 shards, cores.
    /// Skip gating is identical to the serial loop's.
    pub(crate) fn run(&mut self) {
        let now = self.now;
        let gate = self.gate;

        // L2s: tick, collect outgoing, deliver responses + back-invals.
        for k in 0..self.l2s.len() {
            if gate && self.core_held[k].is_none() && !self.l2s[k].is_active() {
                continue;
            }
            // Retry a held request first.
            if let Some(req) = self.core_held[k].take() {
                if self.l2s[k].can_accept() {
                    self.l2s[k].cpu_request(req);
                } else {
                    self.core_held[k] = Some(req);
                }
            }
            self.l2s[k].tick(now);
            let node = self.cfg.core_node(self.core0 + k);
            while let Some((dst, msg)) = self.l2s[k].pop_outgoing(now) {
                self.enqueue(node, dst, DuetMsg::Coherence(msg));
            }
            for (line, _) in self.l2s[k].take_back_invalidations() {
                self.cores[k].back_invalidate(line);
            }
            while let Some(resp) = self.l2s[k].pop_cpu_resp(now) {
                self.cores[k].mem_response(resp);
            }
        }

        // L3 shards.
        for j in 0..self.l3s.len() {
            if gate && !self.l3s[j].is_active() {
                continue;
            }
            self.l3s[j].tick(now);
            let node = self.l3s[j].node();
            // `L3RespStall`: responses stay queued in the shard's output
            // pipe (keeping it active, so the horizon stays pinned) until
            // the window closes.
            if self.faulted && shard_output_stalled(self.cfg, node, now) {
                continue;
            }
            while let Some((dst, msg)) = self.l3s[j].pop_outgoing(now) {
                if self.faulted && shard_output_dropped(self.cfg, self.fault_budget, node, now) {
                    continue; // `L3RespDrop`: the message is lost
                }
                self.enqueue(node, dst, DuetMsg::Coherence(msg));
            }
        }

        // Cores: deliver requests to L2, defer MMIO into the lane (the
        // merge replays lanes in shard order = ascending core order, so
        // MMIO-id allocation matches the serial loop exactly).
        for k in 0..self.cores.len() {
            if gate && self.cores[k].next_event_time(now).is_none_or(|t| t > now) {
                // The core would either do nothing this edge or only bump
                // a stall counter; reconstruct that without ticking.
                self.cores[k].account_skipped_edges(1);
                continue;
            }
            self.cores[k].tick(now);
            while self.core_held[k].is_none() {
                let Some(req) = self.cores[k].pop_mem_request() else {
                    break;
                };
                if self.cores[k].is_mmio(req.addr) {
                    self.lane.mmio.push((self.core0 + k, req));
                } else if self.l2s[k].can_accept() {
                    self.l2s[k].cpu_request(req);
                } else {
                    self.core_held[k] = Some(req);
                }
            }
        }
    }
}

/// Whether an active `L3RespStall` fault is holding `node`'s shard
/// output.
fn shard_output_stalled(cfg: &SystemConfig, node: NodeId, now: Time) -> bool {
    cfg.faults.specs.iter().any(|s| {
        matches!(s.kind, FaultKind::L3RespStall { node: n } if n == node) && s.active_at(now)
    })
}

/// Consumes one unit of `L3RespDrop` budget for `node`, if a matching
/// fault is active. True means the popped shard message is lost. Relaxed
/// atomics suffice: each spec targets one node, a node belongs to one
/// shard, so each counter has a single consumer per edge.
fn shard_output_dropped(cfg: &SystemConfig, budget: &[AtomicU64], node: NodeId, now: Time) -> bool {
    for (i, spec) in cfg.faults.specs.iter().enumerate() {
        if !spec.active_at(now) || budget[i].load(Ordering::Relaxed) == 0 {
            continue;
        }
        if let FaultKind::L3RespDrop { node: n, .. } = spec.kind {
            if n == node {
                budget[i].fetch_sub(1, Ordering::Relaxed);
                return true;
            }
        }
    }
    false
}

/// Per-shard trace scratch: while a multi-shard pass runs, L2/L3 tracers
/// are rebound to per-shard rings so concurrent emission cannot scramble
/// the session ring's order; after the join the scratch rings drain into
/// the session ring in serial component order (all L2 buckets ascending,
/// then all L3 buckets ascending). Scratch capacity equals the session
/// capacity, which makes the drain ring-exact (same retained window, same
/// drop counts as direct serial emission).
pub(crate) struct TraceScratch {
    main: Arc<Mutex<TraceBuffer>>,
    orig_l2: Vec<Tracer>,
    orig_l3: Vec<Tracer>,
    scratch_l2: Vec<Tracer>,
    scratch_l3: Vec<Tracer>,
    l2_bufs: Vec<Arc<Mutex<TraceBuffer>>>,
    l3_bufs: Vec<Arc<Mutex<TraceBuffer>>>,
}

/// Raw, `Send`-able view of one shard's working set, published to a
/// worker thread for exactly one epoch.
///
/// Safety rests on three invariants the coordinator upholds:
/// * views built for one epoch cover pairwise-disjoint ranges of the
///   component vectors (the shard plan partitions `0..nodes`),
/// * the coordinator touches none of the viewed storage between
///   [`EpochBarrier::open`] and [`EpochBarrier::wait_done`],
/// * the backing vectors are never resized while a pool exists (their
///   lengths are fixed at wiring time).
pub(crate) struct RawShardView {
    now: Time,
    gate: bool,
    faulted: bool,
    node0: usize,
    core0: usize,
    ncores: usize,
    nnodes: usize,
    cfg: *const SystemConfig,
    cores: *mut Core,
    l2s: *mut PrivCache,
    l3s: *mut L3Shard,
    core_held: *mut Option<MemReq>,
    pipes: *mut Link<(NodeId, DuetMsg)>,
    budget: *const AtomicU64,
    budget_len: usize,
    lane: *mut ShardLane,
}

// SAFETY: the pointed-to types are all `Send` (asserted below), the
// ranges are disjoint per epoch, and the barrier protocol gives exclusive
// access for the epoch's duration.
unsafe impl Send for RawShardView {}

#[allow(dead_code)]
fn assert_send<T: Send>() {}
#[allow(dead_code)]
fn assert_sync<T: Sync>() {}
/// Compile-time proof that everything a worker touches through a
/// [`RawShardView`] is safe to move across threads. If any component
/// gains a non-`Send` member, this stops compiling instead of the
/// `unsafe impl` silently lying.
#[allow(dead_code)]
fn assert_shard_payloads_thread_safe() {
    assert_send::<Core>();
    assert_send::<PrivCache>();
    assert_send::<L3Shard>();
    assert_send::<Option<MemReq>>();
    assert_send::<Link<(NodeId, DuetMsg)>>();
    assert_send::<ShardLane>();
    assert_sync::<SystemConfig>();
    assert_sync::<AtomicU64>();
}

/// One unit of work the pool runs for a single epoch: either a
/// component-pass shard or a mesh-tick shard. Both carry raw,
/// range-disjoint views into `System`-owned storage under the same
/// barrier protocol.
pub(crate) enum ShardJob {
    /// The per-node component passes of one shard ([`ShardCtx::run`]).
    Passes(RawShardView),
    /// One shard of the sharded mesh tick (`duet_noc::MeshShardTask`).
    Mesh(duet_noc::MeshShardTask<DuetMsg>),
}

/// Runs one job.
///
/// # Safety
///
/// The job's view must point into live storage, its range disjoint from
/// every other concurrently-running job, with no other access to that
/// storage until the epoch closes (see [`RawShardView`] and
/// `duet_noc::MeshShardTask`).
unsafe fn run_job(job: ShardJob) {
    match job {
        ShardJob::Passes(v) => run_raw(v),
        ShardJob::Mesh(t) => t.run(),
    }
}

/// Runs one shard's passes through a raw view.
///
/// # Safety
///
/// `v` must point into live storage, its range disjoint from every other
/// concurrently-running view, with no other access to that storage until
/// the epoch closes (see [`RawShardView`]).
unsafe fn run_raw(v: RawShardView) {
    // Test-only poison sentinel: lets the pool tests force a shard panic
    // without building a full component graph.
    #[cfg(test)]
    if v.node0 == usize::MAX {
        panic!("poisoned test shard");
    }
    let mut ctx = ShardCtx {
        now: v.now,
        gate: v.gate,
        faulted: v.faulted,
        node0: v.node0,
        core0: v.core0,
        cfg: &*v.cfg,
        cores: std::slice::from_raw_parts_mut(v.cores, v.ncores),
        l2s: std::slice::from_raw_parts_mut(v.l2s, v.ncores),
        l3s: std::slice::from_raw_parts_mut(v.l3s, v.nnodes),
        core_held: std::slice::from_raw_parts_mut(v.core_held, v.ncores),
        pipes: std::slice::from_raw_parts_mut(v.pipes, v.nnodes),
        fault_budget: std::slice::from_raw_parts(v.budget, v.budget_len),
        lane: &mut *v.lane,
    };
    ctx.run();
}

/// Persistent worker threads for sharded passes. Worker `w` runs shard
/// `w + 1`; the coordinator runs shard 0 itself between opening the
/// epoch and waiting on the barrier. Dropped (and joined) with the
/// owning [`System`].
pub(crate) struct ShardPool {
    barrier: Arc<EpochBarrier>,
    views: Arc<Mutex<Vec<Option<ShardJob>>>>,
    /// First panic payload caught on a worker thread, re-raised by
    /// `run_epoch` on the coordinator once the epoch has closed.
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    handles: Vec<JoinHandle<()>>,
    epoch: u64,
}

impl ShardPool {
    /// Spawns `workers` persistent shard workers.
    pub(crate) fn new(workers: usize) -> Self {
        let barrier = Arc::new(EpochBarrier::new(workers));
        let views: Arc<Mutex<Vec<Option<ShardJob>>>> = Arc::new(Mutex::new(Vec::new()));
        let panic: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
        let handles = (0..workers)
            .map(|w| {
                let b = Arc::clone(&barrier);
                let v = Arc::clone(&views);
                let p = Arc::clone(&panic);
                let spawned = std::thread::Builder::new()
                    .name(format!("duet-shard-{}", w + 1))
                    .spawn(move || worker_main(w, b, v, p));
                match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("failed to spawn shard worker {w}: {e}"),
                }
            })
            .collect();
        ShardPool {
            barrier,
            views,
            panic,
            handles,
            epoch: 0,
        }
    }

    /// Runs one epoch: publishes `jobs[1..]` to the workers, runs
    /// `jobs[0]` on the calling thread, and joins at the barrier. Fewer
    /// jobs than `workers + 1` is fine — surplus workers see an empty
    /// slot and go straight back to the barrier (the pool is sized for
    /// the larger of the component-pass and mesh-tick plans, and the two
    /// may differ).
    ///
    /// A panic inside any shard — worker or coordinator — is deferred
    /// until the barrier has closed (every view dropped, no worker left
    /// holding aliases into `System`) and then resumed here, so component
    /// panics surface exactly like the serial loop's instead of
    /// deadlocking `wait_done`.
    pub(crate) fn run_epoch(&mut self, mut jobs: Vec<ShardJob>) {
        debug_assert!(!jobs.is_empty());
        debug_assert!(jobs.len() <= self.barrier.workers() + 1);
        let mine = jobs.remove(0);
        {
            let mut slots = lock_ignore_poison(&self.views);
            slots.clear();
            slots.extend(jobs.into_iter().map(Some));
            slots.resize_with(self.barrier.workers(), || None);
        }
        self.epoch += 1;
        self.barrier.open(self.epoch);
        // SAFETY: shard 0's range is disjoint from every published job.
        let mine_result = catch_unwind(AssertUnwindSafe(|| unsafe { run_job(mine) }));
        self.barrier.wait_done(self.epoch);
        if let Some(payload) = lock_ignore_poison(&self.panic).take() {
            resume_unwind(payload);
        }
        if let Err(payload) = mine_result {
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.barrier.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(
    w: usize,
    barrier: Arc<EpochBarrier>,
    views: Arc<Mutex<Vec<Option<ShardJob>>>>,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
) {
    let mut last = 0u64;
    while let Some(epoch) = barrier.wait_open(last) {
        last = epoch;
        let view = lock_ignore_poison(&views)[w].take();
        if let Some(v) = view {
            // SAFETY: the coordinator published disjoint ranges for this
            // epoch and touches none of them until `wait_done` returns.
            // A shard panic must not unwind past `finish` below — the
            // coordinator would spin in `wait_done` forever — so catch
            // it here; `run_epoch` re-raises the recorded payload on the
            // coordinator after the epoch closes.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| unsafe { run_job(v) })) {
                lock_ignore_poison(&panic).get_or_insert(payload);
            }
        }
        barrier.finish(w, epoch);
    }
}

/// Below this many active routers the sharded mesh tick runs inline:
/// waking the pool costs more than arbitrating a near-idle mesh, and the
/// inline path runs the *same* sharded schedule, so results are
/// unaffected either way. `DUET_SIM_FORCE_THREADS=1` lowers the
/// system's threshold to 0 (see `System::mesh_pool_min_active`).
pub(crate) const MESH_POOL_MIN_ACTIVE: usize = 16;

impl System {
    /// The effective shard count for this system's fast-edge passes.
    pub fn sim_shards(&self) -> usize {
        self.sim_shards
    }

    /// The effective mesh-tick shard count.
    pub fn mesh_shards(&self) -> usize {
        self.mesh_shards
    }

    /// The mesh tick of a fast edge. With one mesh shard (or no worker
    /// pool) this is `Mesh::tick` — which itself runs the sharded
    /// schedule inline when more than one shard is configured, so the
    /// deferred-lane merge is exercised identically. With a pool, the
    /// shard tasks run as one epoch and the coordinator replays the
    /// boundary lanes afterwards.
    pub(crate) fn mesh_pass(&mut self, now: Time) {
        if self.mesh_shards <= 1
            || !self.pool_enabled
            || self.mesh.active_len() < self.mesh_pool_min_active
        {
            self.mesh.tick(now);
            return;
        }
        let tasks = self.mesh.begin_tick(now);
        if tasks.len() <= 1 {
            for t in &tasks {
                // SAFETY: tasks cover disjoint router ranges and nothing
                // else touches the mesh until `finish_tick`.
                unsafe { t.run() };
            }
        } else {
            let pool = self.ensure_pool();
            pool.run_epoch(tasks.into_iter().map(ShardJob::Mesh).collect());
        }
        self.mesh.finish_tick(now);
    }

    /// The shared worker pool, sized for the larger of the component-pass
    /// and mesh-tick plans (epochs with fewer jobs leave the surplus
    /// workers idle at the barrier).
    fn ensure_pool(&mut self) -> &mut ShardPool {
        let workers = self.sim_shards.max(self.mesh_shards).saturating_sub(1);
        self.shard_pool
            .get_or_insert_with(|| ShardPool::new(workers.max(1)))
    }

    /// The per-node component passes of a fast edge: a single full-range
    /// shard runs directly (the serial loop); multiple shards run under
    /// the pool or inline, with L2/L3 trace emission redirected through
    /// per-shard scratch rings while the parallel region is open.
    pub(crate) fn component_passes(&mut self, now: Time) {
        if self.sim_shards <= 1 {
            self.run_shard_inline(now, 0);
            return;
        }
        let scratch = self.prepare_trace_scratch();
        if scratch {
            self.bind_scratch_tracers();
        }
        if self.pool_enabled {
            self.run_shards_pooled(now);
        } else {
            for s in 0..self.shard_plan.len() {
                self.run_shard_inline(now, s);
            }
        }
        if scratch {
            self.restore_and_drain_scratch();
        }
    }

    /// Runs shard `s` on the calling thread with plain borrows.
    fn run_shard_inline(&mut self, now: Time, s: usize) {
        let spec = self.shard_plan[s].clone();
        let mut ctx = ShardCtx {
            now,
            gate: self.skip_enabled,
            faulted: !self.cfg.faults.specs.is_empty(),
            node0: spec.nodes.start,
            core0: spec.cores.start,
            cfg: &self.cfg,
            cores: &mut self.cores[spec.cores.clone()],
            l2s: &mut self.l2s[spec.cores.clone()],
            l3s: &mut self.shards[spec.nodes.clone()],
            core_held: &mut self.core_held[spec.cores.clone()],
            pipes: &mut self.inject_pending[spec.nodes.clone()],
            fault_budget: &self.fault_budget,
            lane: &mut self.shard_lanes[s],
        };
        ctx.run();
    }

    /// Runs every shard concurrently on the persistent pool.
    fn run_shards_pooled(&mut self, now: Time) {
        let views = self.build_raw_views(now);
        let jobs = views.into_iter().map(ShardJob::Passes).collect();
        self.ensure_pool().run_epoch(jobs);
    }

    /// Builds one raw view per shard. The views alias `self`'s component
    /// vectors; the caller must not touch those vectors until the epoch
    /// closes.
    fn build_raw_views(&mut self, now: Time) -> Vec<RawShardView> {
        let gate = self.skip_enabled;
        let faulted = !self.cfg.faults.specs.is_empty();
        let cfg: *const SystemConfig = &self.cfg;
        let cores = self.cores.as_mut_ptr();
        let l2s = self.l2s.as_mut_ptr();
        let l3s = self.shards.as_mut_ptr();
        let core_held = self.core_held.as_mut_ptr();
        let pipes = self.inject_pending.as_mut_ptr();
        let budget = self.fault_budget.as_ptr();
        let budget_len = self.fault_budget.len();
        let lanes = self.shard_lanes.as_mut_ptr();
        self.shard_plan
            .iter()
            .enumerate()
            .map(|(s, spec)| {
                // SAFETY: every offset stays within its vector (the plan
                // partitions `0..nodes`, cores ⊆ nodes); one-past-end
                // pointers for empty core ranges are valid.
                unsafe {
                    RawShardView {
                        now,
                        gate,
                        faulted,
                        node0: spec.nodes.start,
                        core0: spec.cores.start,
                        ncores: spec.cores.len(),
                        nnodes: spec.nodes.len(),
                        cfg,
                        cores: cores.add(spec.cores.start),
                        l2s: l2s.add(spec.cores.start),
                        l3s: l3s.add(spec.nodes.start),
                        core_held: core_held.add(spec.cores.start),
                        pipes: pipes.add(spec.nodes.start),
                        budget,
                        budget_len,
                        lane: lanes.add(s),
                    }
                }
            })
            .collect()
    }

    /// Replays every shard's output lane in ascending shard order: folds
    /// push counters into `inject_pending_total`, dirty nodes into the
    /// global set, and performs the deferred MMIO sends (slab inserts in
    /// ascending core order — the serial allocation order).
    pub(crate) fn merge_shard_lanes(&mut self, _now: Time) {
        for s in 0..self.shard_lanes.len() {
            let pushed = std::mem::take(&mut self.shard_lanes[s].pushed);
            self.inject_pending_total += pushed;
            // The lane's dirty list is duplicate-free (a node is recorded
            // only on its pipe's empty→non-empty transition) but not
            // sorted: the L2 and L3 passes each ascend, yet interleave.
            // Sort, then batch-merge — `DirtyNodes` is a set, so the final
            // contents match the old one-by-one inserts exactly.
            let mut dirty = std::mem::take(&mut self.shard_lanes[s].dirty);
            dirty.sort_unstable();
            self.inject_dirty.merge_sorted(&dirty);
            dirty.clear();
            self.shard_lanes[s].dirty = dirty;
            for k in 0..self.shard_lanes[s].mmio.len() {
                let (i, req) = self.shard_lanes[s].mmio[k];
                let id = self.mmio_ids.insert((i, req.id));
                let mut r = req;
                r.id = id;
                let node = self.cfg.core_node(i);
                let dst = self.cfg.ctile_node();
                self.enqueue_msg(
                    node,
                    dst,
                    DuetMsg::MmioReq {
                        req: r,
                        reply_to: node,
                    },
                );
            }
            self.shard_lanes[s].mmio.clear();
        }
    }

    /// Lazily builds the per-shard trace scratch. Returns whether scratch
    /// rebinding is needed this edge (i.e. tracing is on).
    fn prepare_trace_scratch(&mut self) -> bool {
        let Some(session) = self.trace.as_ref() else {
            self.trace_scratch = None;
            return false;
        };
        if self.trace_scratch.is_some() {
            return true;
        }
        let cap = session.capacity();
        let main = session.shared_buffer();
        let nshards = self.shard_plan.len();
        let l2_bufs: Vec<_> = (0..nshards)
            .map(|_| Arc::new(Mutex::new(TraceBuffer::new(cap))))
            .collect();
        let l3_bufs: Vec<_> = (0..nshards)
            .map(|_| Arc::new(Mutex::new(TraceBuffer::new(cap))))
            .collect();
        let mut orig_l2 = Vec::with_capacity(self.l2s.len());
        let mut scratch_l2 = Vec::with_capacity(self.l2s.len());
        let mut orig_l3 = Vec::with_capacity(self.shards.len());
        let mut scratch_l3 = Vec::with_capacity(self.shards.len());
        for (s, spec) in self.shard_plan.iter().enumerate() {
            for i in spec.cores.clone() {
                orig_l2.push(self.l2s[i].tracer().clone());
                scratch_l2.push(self.l2s[i].tracer().retarget(Arc::clone(&l2_bufs[s])));
            }
            for n in spec.nodes.clone() {
                orig_l3.push(self.shards[n].tracer().clone());
                scratch_l3.push(self.shards[n].tracer().retarget(Arc::clone(&l3_bufs[s])));
            }
        }
        self.trace_scratch = Some(TraceScratch {
            main,
            orig_l2,
            orig_l3,
            scratch_l2,
            scratch_l3,
            l2_bufs,
            l3_bufs,
        });
        true
    }

    /// Points every L2/L3 tracer at its shard's scratch ring for the
    /// duration of the parallel region.
    fn bind_scratch_tracers(&mut self) {
        let Some(ts) = self.trace_scratch.as_ref() else {
            return;
        };
        for i in 0..self.l2s.len() {
            self.l2s[i].set_tracer(ts.scratch_l2[i].clone());
        }
        for n in 0..self.shards.len() {
            self.shards[n].set_tracer(ts.scratch_l3[n].clone());
        }
    }

    /// Restores the session tracers and drains the scratch rings into the
    /// session ring in serial component order: all L2 buckets (ascending
    /// shard = ascending core), then all L3 buckets (ascending shard =
    /// ascending node) — exactly the order direct serial emission uses
    /// within a fast edge.
    fn restore_and_drain_scratch(&mut self) {
        let Some(ts) = self.trace_scratch.as_ref() else {
            return;
        };
        for i in 0..self.l2s.len() {
            self.l2s[i].set_tracer(ts.orig_l2[i].clone());
        }
        for n in 0..self.shards.len() {
            self.shards[n].set_tracer(ts.orig_l3[n].clone());
        }
        let mut main = lock_ignore_poison(&ts.main);
        for b in &ts.l2_bufs {
            lock_ignore_poison(b).take_into(&mut main);
        }
        for b in &ts.l3_bufs {
            lock_ignore_poison(b).take_into(&mut main);
        }
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use std::ptr::NonNull;

    /// A zero-length view: dangling-but-aligned pointers are valid for
    /// empty slices, so `run_raw` builds a `ShardCtx` that does nothing.
    /// `poison` flips the test-only sentinel that makes `run_raw` panic
    /// before touching anything.
    fn empty_view(cfg: &SystemConfig, lane: &mut ShardLane, poison: bool) -> RawShardView {
        RawShardView {
            now: Time::ZERO,
            gate: false,
            faulted: false,
            node0: if poison { usize::MAX } else { 0 },
            core0: 0,
            ncores: 0,
            nnodes: 0,
            cfg: cfg as *const SystemConfig,
            cores: NonNull::dangling().as_ptr(),
            l2s: NonNull::dangling().as_ptr(),
            l3s: NonNull::dangling().as_ptr(),
            core_held: NonNull::dangling().as_ptr(),
            pipes: NonNull::dangling().as_ptr(),
            budget: NonNull::dangling().as_ptr(),
            budget_len: 0,
            lane: std::ptr::from_mut(lane),
        }
    }

    /// A panic on a worker shard must re-raise on the coordinator after
    /// the epoch closes — not unwind past `finish` and leave `wait_done`
    /// spinning forever — and the pool must stay usable afterwards.
    #[test]
    fn worker_panic_resurfaces_on_coordinator_without_deadlock() {
        let cfg = SystemConfig::proc_only(1);
        let mut pool = ShardPool::new(1);
        let mut lane0 = ShardLane::default();
        let mut lane1 = ShardLane::default();
        let views = vec![
            ShardJob::Passes(empty_view(&cfg, &mut lane0, false)),
            ShardJob::Passes(empty_view(&cfg, &mut lane1, true)),
        ];
        let payload = catch_unwind(AssertUnwindSafe(|| pool.run_epoch(views)))
            .expect_err("worker panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("poisoned test shard")
        );
        let mut lane0 = ShardLane::default();
        let mut lane1 = ShardLane::default();
        let views = vec![
            ShardJob::Passes(empty_view(&cfg, &mut lane0, false)),
            ShardJob::Passes(empty_view(&cfg, &mut lane1, false)),
        ];
        pool.run_epoch(views);
    }

    /// Same for a panic on the coordinator's own shard: `wait_done` must
    /// still run (workers may hold views into `System`) before the panic
    /// resumes.
    #[test]
    fn coordinator_panic_still_closes_the_epoch() {
        let cfg = SystemConfig::proc_only(1);
        let mut pool = ShardPool::new(1);
        let mut lane0 = ShardLane::default();
        let mut lane1 = ShardLane::default();
        let views = vec![
            ShardJob::Passes(empty_view(&cfg, &mut lane0, true)),
            ShardJob::Passes(empty_view(&cfg, &mut lane1, false)),
        ];
        let payload = catch_unwind(AssertUnwindSafe(|| pool.run_epoch(views)))
            .expect_err("coordinator panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("poisoned test shard")
        );
        let mut lane0 = ShardLane::default();
        let mut lane1 = ShardLane::default();
        let views = vec![
            ShardJob::Passes(empty_view(&cfg, &mut lane0, false)),
            ShardJob::Passes(empty_view(&cfg, &mut lane1, false)),
        ];
        pool.run_epoch(views);
    }
}
