//! Run statistics and link-occupancy reporting.

use duet_sim::LinkReport;
use duet_trace::MetricsRegistry;

use crate::system::System;

/// Aggregated run metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Fast-clock edges executed.
    pub fast_edges: u64,
    /// Slow-clock edges executed.
    pub slow_edges: u64,
    /// Exceptions observed by the OS stub.
    pub exceptions: u64,
    /// Page faults handled.
    pub page_faults: u64,
}

impl System {
    /// Run statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Clock edges the host actually executed (dead edges skipped by
    /// event-horizon scheduling are *not* counted here, unlike the
    /// reconstructed [`RunStats`] counters). Host-performance metric only.
    pub fn executed_edges(&self) -> u64 {
        self.executed_edges
    }

    /// Snapshots every link in the component graph: `(name, report)` pairs
    /// with names prefixed by the owning component (e.g.
    /// `mesh.n3.west.req`, `hub0@n2.fabric_resp`, `inject@n1`).
    ///
    /// Occupancy/stall counters driven by successful data movement are
    /// deterministic across edge-skip modes; `rejected_pushes` counts
    /// *attempts* and may differ (gated components never retry), so keep it
    /// out of determinism fingerprints.
    pub fn link_reports(&self) -> Vec<(String, LinkReport)> {
        let mut out = Vec::new();
        self.visit_components(&mut |c| {
            let base = c.name();
            c.visit_links(&mut |name, report| out.push((format!("{base}.{name}"), report)));
            true
        });
        for (n, link) in self.inject_pending.iter().enumerate() {
            out.push((format!("inject@n{n}"), link.report()));
        }
        for (h, cdc) in self.slow_cdc.iter().enumerate() {
            out.push((format!("slowcdc{h}.into_hub"), cdc.into_hub.report()));
            out.push((format!("slowcdc{h}.from_hub"), cdc.from_hub.report()));
        }
        out
    }

    /// One unified, deterministically-ordered metrics namespace subsuming
    /// [`RunStats`], per-component event counters, per-link occupancy
    /// counters, and the process-wide throughput atomics. Names are
    /// dot-separated (`run.fast_edges`, `mesh.injected`,
    /// `l2.n0.misses`, `link.inject@n1.pushes`, `process.edges`); iteration
    /// over the registry is sorted, so reports diff stably across runs.
    ///
    /// `link.*.rejected_pushes` counts *attempts* and may differ across
    /// edge-skip modes (see [`link_reports`](System::link_reports)); every
    /// other metric here is skip-invariant.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set("run.fast_edges", self.stats.fast_edges);
        r.set("run.slow_edges", self.stats.slow_edges);
        r.set("run.exceptions", self.stats.exceptions);
        r.set("run.page_faults", self.stats.page_faults);
        r.set("run.executed_edges", self.executed_edges);
        r.set("run.sim_ps", self.now.as_ps());

        let m = self.mesh.stats();
        r.set("mesh.injected", m.injected);
        r.set("mesh.delivered", m.delivered);
        r.set("mesh.delivered_flits", m.delivered_flits);
        r.set("mesh.total_latency_ps", m.total_latency.as_ps());

        for (i, l2) in self.l2s.iter().enumerate() {
            let s = l2.stats();
            let p = format!("l2.n{}", self.cfg.core_node(i));
            r.set(format!("{p}.hits"), s.hits);
            r.set(format!("{p}.misses"), s.misses);
            r.set(format!("{p}.mshr_merges"), s.mshr_merges);
            r.set(format!("{p}.writebacks"), s.writebacks);
            r.set(format!("{p}.invs"), s.invs);
            r.set(format!("{p}.downgrades"), s.downgrades);
            r.set(format!("{p}.fwd_getm"), s.fwd_getm);
        }
        for shard in &self.shards {
            let s = shard.stats();
            let p = format!("l3.n{}", shard.node());
            r.set(format!("{p}.gets"), s.gets);
            r.set(format!("{p}.getm"), s.getm);
            r.set(format!("{p}.putm"), s.putm);
            r.set(format!("{p}.invs_sent"), s.invs_sent);
            r.set(format!("{p}.fwds_sent"), s.fwds_sent);
            r.set(format!("{p}.l3_hits"), s.l3_hits);
            r.set(format!("{p}.l3_misses"), s.l3_misses);
        }
        if let Some(a) = &self.adapter {
            let c = a.control.stats();
            r.set("ctrl.mmio_ops", c.mmio_ops);
            r.set("ctrl.shadow_fast", c.shadow_fast);
            r.set("ctrl.normal_crossings", c.normal_crossings);
            r.set("ctrl.timeouts", c.timeouts);
            for (h, hub) in a.hubs.iter().enumerate() {
                let s = hub.stats();
                let p = format!("hub{h}");
                r.set(format!("{p}.requests"), s.requests);
                r.set(format!("{p}.loads"), s.loads);
                r.set(format!("{p}.stores"), s.stores);
                r.set(format!("{p}.amos"), s.amos);
                r.set(format!("{p}.invs_forwarded"), s.invs_forwarded);
                r.set(format!("{p}.page_faults"), s.page_faults);
                r.set(format!("{p}.exceptions"), s.exceptions);
            }
        }
        for (name, report) in self.link_reports() {
            let p = format!("link.{name}");
            r.set(format!("{p}.pushes"), report.stats.pushes);
            r.set(format!("{p}.pops"), report.stats.pops);
            r.set(format!("{p}.rejected_pushes"), report.stats.rejected_pushes);
            r.set(
                format!("{p}.peak_occupancy"),
                report.stats.peak_occupancy as u64,
            );
        }
        r.set("verify.faults_injected", self.faults_injected);
        r.set("verify.fences", self.fences);
        r.set("verify.fenced", u64::from(self.accel_fenced));
        r.set("verify.mesi_checked", self.mesi_checker.checked());
        r.set("verify.mesi_violations", self.mesi_checker.violations());
        r.set("verify.noc_checked", self.noc_checker.checked());
        r.set("verify.noc_violations", self.noc_checker.violations());
        r.set("verify.adapter_violations", self.adapter_violations);
        r.set("verify.violations", self.checker_violations());

        let (edges, sim_ps) = crate::metrics::snapshot();
        r.set("process.edges", edges);
        r.set("process.sim_ps", sim_ps);
        r
    }

    /// Snapshot of (edges retired, sim time) at run-loop entry.
    pub(crate) fn begin_batch(&self) -> (u64, duet_sim::Time) {
        (self.stats.fast_edges + self.stats.slow_edges, self.now)
    }

    /// Publishes the loop's edge/sim-time deltas to the process-wide
    /// throughput counters (skipped edges count: they were retired).
    pub(crate) fn end_batch(&self, (edges0, t0): (u64, duet_sim::Time)) {
        let edges = (self.stats.fast_edges + self.stats.slow_edges).saturating_sub(edges0);
        let sim_ps = self.now.saturating_sub(t0).as_ps();
        if edges > 0 || sim_ps > 0 {
            crate::metrics::record(edges, sim_ps);
        }
    }
}
