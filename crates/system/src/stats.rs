//! Run statistics and link-occupancy reporting.

use duet_sim::LinkReport;

use crate::system::System;

/// Aggregated run metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Fast-clock edges executed.
    pub fast_edges: u64,
    /// Slow-clock edges executed.
    pub slow_edges: u64,
    /// Exceptions observed by the OS stub.
    pub exceptions: u64,
    /// Page faults handled.
    pub page_faults: u64,
}

impl System {
    /// Run statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Clock edges the host actually executed (dead edges skipped by
    /// event-horizon scheduling are *not* counted here, unlike the
    /// reconstructed [`RunStats`] counters). Host-performance metric only.
    pub fn executed_edges(&self) -> u64 {
        self.executed_edges
    }

    /// Snapshots every link in the component graph: `(name, report)` pairs
    /// with names prefixed by the owning component (e.g.
    /// `mesh.n3.west.req`, `hub0@n2.fabric_resp`, `inject@n1`).
    ///
    /// Occupancy/stall counters driven by successful data movement are
    /// deterministic across edge-skip modes; `rejected_pushes` counts
    /// *attempts* and may differ (gated components never retry), so keep it
    /// out of determinism fingerprints.
    pub fn link_reports(&self) -> Vec<(String, LinkReport)> {
        let mut out = Vec::new();
        self.visit_components(&mut |c| {
            let base = c.name();
            c.visit_links(&mut |name, report| out.push((format!("{base}.{name}"), report)));
            true
        });
        for (n, link) in self.inject_pending.iter().enumerate() {
            out.push((format!("inject@n{n}"), link.report()));
        }
        for (h, cdc) in self.slow_cdc.iter().enumerate() {
            out.push((format!("slowcdc{h}.into_hub"), cdc.into_hub.report()));
            out.push((format!("slowcdc{h}.from_hub"), cdc.from_hub.report()));
        }
        out
    }

    /// Snapshot of (edges retired, sim time) at run-loop entry.
    pub(crate) fn begin_batch(&self) -> (u64, duet_sim::Time) {
        (self.stats.fast_edges + self.stats.slow_edges, self.now)
    }

    /// Publishes the loop's edge/sim-time deltas to the process-wide
    /// throughput counters (skipped edges count: they were retired).
    pub(crate) fn end_batch(&self, (edges0, t0): (u64, duet_sim::Time)) {
        let edges = (self.stats.fast_edges + self.stats.slow_edges).saturating_sub(edges0);
        let sim_ps = self.now.saturating_sub(t0).as_ps();
        if edges > 0 || sim_ps > 0 {
            crate::metrics::record(edges, sim_ps);
        }
    }
}
