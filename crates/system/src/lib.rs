#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # duet-system
//!
//! Full-system assembly of the Duet reproduction: Dolly-PpMm instances
//! (Sec. IV, Fig. 8), the FPSoC-like baseline, and the processor-only
//! baseline, all driven by a deterministic dual-clock edge loop.
//!
//! A system consists of:
//!
//! * `p` **P-tiles**: an in-order core + write-through L1D + private MESI
//!   L2, each with a NoC router and an L3 shard,
//! * one **C-tile** (when an eFPGA exists): the Control Hub and Memory Hub
//!   0 of the [`duet_core::DuetAdapter`],
//! * `m − 1` **M-tiles**: the remaining Memory Hubs,
//! * a 2D-mesh NoC carrying coherence + MMIO + interrupts,
//! * an **OS stub** that services page-fault interrupts from the hubs by
//!   MMIO TLB refills (or kills the accelerator for unmapped pages) after a
//!   configurable kernel latency.
//!
//! # Example
//!
//! ```
//! use duet_system::{System, SystemConfig};
//! use duet_cpu::asm::Asm;
//! use duet_cpu::isa::regs;
//! use duet_sim::Time;
//! use std::sync::Arc;
//!
//! let mut sys = System::new(SystemConfig::proc_only(1)).expect("valid config");
//! let mut a = Asm::new();
//! a.label("main");
//! a.li(regs::T[0], 0x1000);
//! a.li(regs::T[1], 7);
//! a.sd(regs::T[1], regs::T[0], 0);
//! a.fence();
//! a.halt();
//! sys.load_program(0, Arc::new(a.assemble()?), "main");
//! sys.run_until_halt(Time::from_us(100))?;
//! sys.quiesce(Time::from_us(200))?;
//! assert_eq!(sys.peek_u64(0x1000), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The run entry points return `Result<Time, RunError>`: a deadline that
//! passes or a runtime-checker violation comes back as a structured
//! [`RunError`] carrying a per-component stall snapshot, instead of a
//! panic. Fault injection is configured through
//! [`SystemConfig::faults`](config::SystemConfig) (see [`duet_verify`]).

pub mod config;
pub mod metrics;
mod parallel;
mod run_loop;
mod snapshot;
mod stats;
pub mod system;
mod wiring;

pub use config::{ConfigError, SystemConfig, Variant};
pub use stats::RunStats;
pub use system::System;

// Re-export the `duet-verify` surface a system user needs: fault plans are
// configured through `SystemConfig::faults`, run errors come back from the
// run loop.
pub use duet_verify::{
    DegradeConfig, FaultKind, FaultPlan, FaultSpec, RunError, StallSnapshot, Violation,
};
