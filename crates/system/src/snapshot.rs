//! Checkpoint, fork, and time-travel for the whole system.
//!
//! Three capabilities, all built on the `duet-sim` snapshot layer:
//!
//! * **Checkpoint/restore** — [`System::snapshot`] serializes every bit of
//!   simulated state into a versioned, fingerprinted byte buffer;
//!   [`System::restore`] loads it back into a freshly *built* system (same
//!   [`SystemConfig`], same program, same accelerator design). A restored
//!   run continues bit-identically to the uninterrupted one: identical
//!   fingerprints, metrics, and traces at any thread count, with edge-skip
//!   on or off.
//! * **COW fork** — [`System::fork`] clones a live system in O(dirty pages):
//!   backing memory is page-grained copy-on-write ([`duet_sim::PagedMem`]),
//!   so a warmed multi-megabyte footprint forks by bumping `Arc` counts.
//!   Sweeps boot once and fork per point instead of re-running warmup.
//! * **Divergence fingerprints** — [`System::divergence_fingerprint`]
//!   hashes the full simulated state (host-only metrics excluded) into one
//!   `u64`, cheap enough to compare every few thousand edges. The
//!   `bisect_divergence` tool in `duet-bench` uses it to walk two runs to
//!   their first divergent clock edge.
//!
//! # What is (and is not) in a snapshot
//!
//! Everything that affects simulated behavior is serialized: clocks, cores,
//! L1/L2/TLB, the mesh (routers, in-flight messages, per-link stats), L3
//! shards (directory + backing memory), the adapter (control hub, memory
//! hubs, proxy caches, CDC FIFOs), the accelerator's registered state
//! ([`SoftAccelerator::save_state`]), the OS stub (page table, pending
//! tasks, MMIO id space), fault-injection progress, and the runtime
//! checkers. Host-side plumbing is *not*: trace sessions, shard pools and
//! lanes, the edge-skip knob, and the mesh-tick rebalancer (per-router
//! load EWMAs and the current shard partition) are rebuilt from the
//! config and environment, because none of them may influence results in
//! the first place — a restored mesh re-learns its load balance from
//! zero. The mesh's boundary-exchange lanes *are* carried (encoded
//! shard-count-invariantly) but must be empty at snapshot time, since
//! snapshots are only taken between edges when every lane has been
//! replayed. `executed_edges` (a host-performance metric) travels in its
//! own trailing section so it survives restore but stays out of
//! divergence fingerprints.
//!
//! # Restore protocol
//!
//! `restore` overwrites state; it does not build structure. The caller
//! re-runs the same setup as the original process — `System::new` with an
//! equal config, `load_program`, `attach_accelerator` with the same design
//! — then calls `restore(bytes)`. Mismatches fail loudly: a wrong config
//! is caught by the header hash, a missing accelerator or different core
//! count by structural checks, garbage by section tags and exact-consumption
//! checks. On error the system may be partially overwritten and must be
//! discarded (fail-loud poisoning; no rollback).
//!
//! [`SystemConfig`]: crate::config::SystemConfig
//! [`SoftAccelerator::save_state`]: duet_fpga::SoftAccelerator

use std::sync::atomic::{AtomicU64, Ordering};

use duet_fpga::SoftAccelerator;
use duet_sim::{Pack, Snap, SnapError, SnapHasher, SnapReader, SnapWriter};
use duet_trace::Tracer;

use crate::run_loop::OsTask;
use crate::stats::RunStats;
use crate::system::System;

impl Pack for RunStats {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.fast_edges);
        w.u64(self.slow_edges);
        w.u64(self.exceptions);
        w.u64(self.page_faults);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RunStats {
            fast_edges: r.u64()?,
            slow_edges: r.u64()?,
            exceptions: r.u64()?,
            page_faults: r.u64()?,
        })
    }
}

impl Pack for OsTask {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            OsTask::TlbFill { vaddr, hub } => {
                w.u8(0);
                vaddr.pack(w);
                hub.pack(w);
            }
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(OsTask::TlbFill {
                vaddr: Pack::unpack(r)?,
                hub: Pack::unpack(r)?,
            }),
            _ => Err(SnapError::Corrupt("invalid OsTask discriminant")),
        }
    }
}

impl System {
    /// Serializes the complete simulated state into a versioned,
    /// config-fingerprinted buffer. See the module docs for the format
    /// contract and the restore protocol.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::with_header(self.cfg.config_hash());
        self.write_state(&mut w);
        w.section(*b"FLT\0", |w| {
            self.fault_active.pack(w);
            let budget: Vec<u64> = self
                .fault_budget
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            budget.pack(w);
            self.faults_injected.pack(w);
        });
        w.section(*b"HOST", |w| self.executed_edges.pack(w));
        w.finish()
    }

    /// Overwrites this system's state from a buffer produced by
    /// [`snapshot`](System::snapshot). The system must have been built from
    /// an equal [`SystemConfig`](crate::config::SystemConfig) (checked via
    /// the header hash) with the same structure — programs loaded and, if
    /// the snapshot carries accelerator state, the same accelerator design
    /// attached. On `Err` the system is partially overwritten and must be
    /// discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::with_header(bytes, self.cfg.config_hash())?;
        self.read_state(&mut r)?;
        r.section(*b"FLT\0", |r| {
            self.fault_active = Pack::unpack(r)?;
            if self.fault_active.len() != self.cfg.faults.specs.len() {
                return Err(SnapError::Corrupt("fault window count mismatch"));
            }
            let budget: Vec<u64> = Pack::unpack(r)?;
            if budget.len() != self.fault_budget.len() {
                return Err(SnapError::Corrupt("fault budget count mismatch"));
            }
            for (slot, v) in self.fault_budget.iter().zip(budget) {
                slot.store(v, Ordering::Relaxed);
            }
            self.faults_injected = Pack::unpack(r)?;
            Ok(())
        })?;
        self.executed_edges = r.section(*b"HOST", |r| Pack::unpack(r))?;
        r.expect_end()?;
        // Derived counters and host-side scratch.
        self.inject_pending_total = self.inject_pending.iter().map(duet_sim::Link::len).sum();
        self.trace_scratch = None;
        Ok(())
    }

    /// A 64-bit digest of the full simulated state, excluding host-only
    /// metrics (`executed_edges`) and fault-*schedule* bookkeeping (window
    /// flags, remaining budgets, injection counts — progress through the
    /// plan, not system state). That exclusion is what lets a clean run
    /// and a faulted run compare equal until a fault actually perturbs
    /// something: the `bisect_divergence` tool compares these digests to
    /// localize the first edge where two runs part ways.
    pub fn divergence_fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        let buf = w.finish();
        let mut h = SnapHasher::new();
        h.bytes(&buf);
        h.finish()
    }

    /// Every state section except the trailing fault-bookkeeping and
    /// host-metrics sections, in fixed order. Shared by
    /// [`snapshot`](System::snapshot) (which appends the header plus the
    /// `FLT`/`HOST` sections) and
    /// [`divergence_fingerprint`](System::divergence_fingerprint) (which
    /// hashes exactly these bytes).
    fn write_state(&self, w: &mut SnapWriter) {
        w.section(*b"TIME", |w| {
            self.dual.save(w);
            self.now.pack(w);
            self.stats.pack(w);
        });
        w.section(*b"CORE", |w| {
            w.len64(self.cores.len());
            for c in &self.cores {
                c.save(w);
            }
        });
        w.section(*b"MESH", |w| self.mesh.save(w));
        w.section(*b"L2\0\0", |w| {
            w.len64(self.l2s.len());
            for l2 in &self.l2s {
                l2.save(w);
            }
        });
        w.section(*b"L3\0\0", |w| {
            w.len64(self.shards.len());
            for s in &self.shards {
                s.save(w);
            }
        });
        w.section(*b"ADPT", |w| {
            w.u8(u8::from(self.adapter.is_some()));
            if let Some(a) = &self.adapter {
                a.save(w);
            }
            w.len64(self.slow_cdc.len());
            for cdc in &self.slow_cdc {
                cdc.into_hub.save(w);
                cdc.from_hub.save(w);
            }
        });
        w.section(*b"ACCL", |w| {
            self.accel_busy.pack(w);
            self.accel_fenced.pack(w);
            self.watchdog_sig.pack(w);
            self.watchdog_since.pack(w);
            w.u8(u8::from(self.accel.is_some()));
            if let Some(a) = &self.accel {
                a.save_state(w);
            }
        });
        w.section(*b"SYS\0", |w| {
            w.len64(self.inject_pending.len());
            for l in &self.inject_pending {
                l.save(w);
            }
            self.inject_dirty.pack(w);
            self.core_held.pack(w);
            self.mmio_ids.pack(w);
            self.next_os_mmio_id.pack(w);
            self.page_table.pack(w);
            self.os_tasks.pack(w);
            self.reorder_stash.pack(w);
            self.fences.pack(w);
        });
        w.section(*b"VRFY", |w| {
            self.mesi_checker.save(w);
            self.noc_checker.save(w);
            self.adapter_violations.pack(w);
            self.pending_violation.pack(w);
        });
    }

    /// Mirror of [`write_state`](System::write_state): loads every state
    /// section into the already-built structure, failing loudly on any
    /// structural mismatch.
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section(*b"TIME", |r| {
            self.dual.load(r)?;
            self.now = Pack::unpack(r)?;
            self.stats = Pack::unpack(r)?;
            Ok(())
        })?;
        r.section(*b"CORE", |r| {
            if r.len64()? != self.cores.len() {
                return Err(SnapError::Corrupt("core count mismatch"));
            }
            for c in &mut self.cores {
                c.load(r)?;
            }
            Ok(())
        })?;
        r.section(*b"MESH", |r| self.mesh.load(r))?;
        r.section(*b"L2\0\0", |r| {
            if r.len64()? != self.l2s.len() {
                return Err(SnapError::Corrupt("L2 count mismatch"));
            }
            for l2 in &mut self.l2s {
                Snap::load(l2, r)?;
            }
            Ok(())
        })?;
        r.section(*b"L3\0\0", |r| {
            if r.len64()? != self.shards.len() {
                return Err(SnapError::Corrupt("L3 shard count mismatch"));
            }
            for s in &mut self.shards {
                s.load(r)?;
            }
            Ok(())
        })?;
        r.section(*b"ADPT", |r| {
            let present = r.u8()? != 0;
            if present != self.adapter.is_some() {
                return Err(SnapError::Corrupt("adapter presence mismatch"));
            }
            if let Some(a) = &mut self.adapter {
                a.load(r)?;
            }
            if r.len64()? != self.slow_cdc.len() {
                return Err(SnapError::Corrupt("slow-CDC count mismatch"));
            }
            for cdc in &mut self.slow_cdc {
                cdc.into_hub.load(r)?;
                cdc.from_hub.load(r)?;
            }
            Ok(())
        })?;
        r.section(*b"ACCL", |r| {
            self.accel_busy = Pack::unpack(r)?;
            self.accel_fenced = Pack::unpack(r)?;
            self.watchdog_sig = Pack::unpack(r)?;
            self.watchdog_since = Pack::unpack(r)?;
            let present = r.u8()? != 0;
            if present != self.accel.is_some() {
                return Err(SnapError::Corrupt("accelerator presence mismatch"));
            }
            if let Some(a) = &mut self.accel {
                a.load_state(r)?;
            }
            Ok(())
        })?;
        r.section(*b"SYS\0", |r| {
            if r.len64()? != self.inject_pending.len() {
                return Err(SnapError::Corrupt("injection pipe count mismatch"));
            }
            for l in &mut self.inject_pending {
                l.load(r)?;
            }
            self.inject_dirty = Pack::unpack(r)?;
            self.core_held = Pack::unpack(r)?;
            if self.core_held.len() != self.cores.len() {
                return Err(SnapError::Corrupt("core_held count mismatch"));
            }
            self.mmio_ids = Pack::unpack(r)?;
            self.next_os_mmio_id = Pack::unpack(r)?;
            self.page_table = Pack::unpack(r)?;
            self.os_tasks = Pack::unpack(r)?;
            self.reorder_stash = Pack::unpack(r)?;
            self.fences = Pack::unpack(r)?;
            Ok(())
        })?;
        r.section(*b"VRFY", |r| {
            self.mesi_checker.load(r)?;
            self.noc_checker.load(r)?;
            self.adapter_violations = Pack::unpack(r)?;
            self.pending_violation = Pack::unpack(r)?;
            Ok(())
        })?;
        Ok(())
    }

    /// `(allocated, privately owned)` backing-memory page counts summed
    /// over every L3 shard. The COW probe for [`fork`](System::fork):
    /// right after a fork both parent and child privately own zero pages,
    /// and each copy-on-write fault moves exactly one page from shared to
    /// owned — so "fork is O(dirty pages)" is directly assertable.
    pub fn memory_pages(&self) -> (usize, usize) {
        let mut allocated = 0;
        let mut owned = 0;
        for s in &self.shards {
            let (a, o) = s.backing_pages();
            allocated += a;
            owned += o;
        }
        (allocated, owned)
    }

    /// Forks a copy-on-write child of this system, without an accelerator.
    ///
    /// The child is in the identical simulated state (equal
    /// [`divergence_fingerprint`](System::divergence_fingerprint)) and
    /// diverges only as it is driven differently. Backing memory is shared
    /// page-grained copy-on-write, so the fork itself allocates only
    /// bookkeeping — a warmed multi-megabyte memory image costs `Arc`
    /// bumps, and pages are copied lazily as either side writes.
    ///
    /// Host-side plumbing is deliberately *not* inherited: the child starts
    /// with tracing disabled (call
    /// [`enable_tracing`](System::enable_tracing) for its own session) and
    /// builds its own shard pool lazily. If the parent has an accelerator
    /// attached, the child gets none — use
    /// [`fork_with`](System::fork_with) to carry accelerator state across.
    pub fn fork(&self) -> System {
        let sim_shards = self.sim_shards;
        let mut adapter = self.adapter.clone();
        if let Some(a) = &mut adapter {
            a.clear_tracers();
        }
        let mut mesh = self.mesh.clone();
        mesh.set_tracer(Tracer::disabled());
        let mut l2s = self.l2s.clone();
        for l2 in &mut l2s {
            l2.set_tracer(Tracer::disabled());
        }
        let mut shards = self.shards.clone();
        for s in &mut shards {
            s.set_tracer(Tracer::disabled());
        }
        System {
            cfg: self.cfg.clone(),
            dual: self.dual.clone(),
            mesh,
            cores: self.cores.clone(),
            l2s,
            shards,
            adapter,
            accel: None,
            home: self.home.clone(),
            inject_pending: self.inject_pending.clone(),
            inject_pending_total: self.inject_pending_total,
            inject_dirty: self.inject_dirty.clone(),
            core_held: self.core_held.clone(),
            node_roles: self.node_roles.clone(),
            mmio_ids: self.mmio_ids.clone(),
            next_os_mmio_id: self.next_os_mmio_id,
            page_table: self.page_table.clone(),
            os_tasks: self.os_tasks.clone(),
            slow_cdc: self.slow_cdc.clone(),
            stats: self.stats,
            executed_edges: self.executed_edges,
            now: self.now,
            skip_enabled: self.skip_enabled,
            trace: None,
            sys_tracer: Tracer::disabled(),
            accel_tracer: Tracer::disabled(),
            accel_busy: self.accel_busy,
            fault_active: self.fault_active.clone(),
            fault_index: self.fault_index.clone(),
            fault_budget: self
                .fault_budget
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            reorder_stash: self.reorder_stash.clone(),
            mesi_checker: self.mesi_checker.clone(),
            noc_checker: self.noc_checker.clone(),
            adapter_violations: self.adapter_violations,
            pending_violation: self.pending_violation.clone(),
            faults_injected: self.faults_injected,
            fences: self.fences,
            accel_fenced: self.accel_fenced,
            watchdog_sig: self.watchdog_sig,
            watchdog_since: self.watchdog_since,
            sim_shards,
            shard_plan: self.shard_plan.clone(),
            shard_lanes: (0..sim_shards)
                .map(|_| crate::parallel::ShardLane::default())
                .collect(),
            mesh_shards: self.mesh_shards,
            mesh_pool_min_active: self.mesh_pool_min_active,
            shard_pool: None,
            pool_enabled: self.pool_enabled,
            trace_scratch: None,
        }
    }

    /// [`fork`](System::fork), carrying accelerator state into the child.
    ///
    /// `Box<dyn SoftAccelerator>` cannot be cloned, so the caller supplies
    /// a freshly built instance of the *same design*; the parent's
    /// registered state is transferred through the design's
    /// `save_state`/`load_state` hooks. Fails if this system has no
    /// accelerator or if the fresh instance rejects (or fails to fully
    /// consume) the parent's state.
    pub fn fork_with(&self, mut accel: Box<dyn SoftAccelerator>) -> Result<System, SnapError> {
        let Some(parent) = &self.accel else {
            return Err(SnapError::Corrupt(
                "fork_with on a system without an accelerator",
            ));
        };
        let mut w = SnapWriter::new();
        parent.save_state(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        accel.load_state(&mut r)?;
        r.expect_end()?;
        let mut child = self.fork();
        child.accel = Some(accel);
        Ok(child)
    }
}
