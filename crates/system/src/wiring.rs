//! System construction: component instantiation, link wiring, and the
//! canonical component registry walk.
//!
//! [`System::new`] validates the [`SystemConfig`], builds every component
//! (cores, private L2s, L3 shards, mesh, adapter), and wires the
//! cross-component links: per-node injection pipes toward the mesh and —
//! for the FPSoC variant — the [`SlowHubCdc`] clock-domain crossings that
//! carry coherence traffic into and out of the slow-domain Memory Hubs.

use std::sync::Arc;

use duet_cpu::{Core, Program};
use duet_mem::priv_cache::{HomeMap, PrivCache};
use duet_mem::tlb::PageTable;
use duet_mem::L3Shard;
use duet_noc::{Mesh, MeshConfig};
use duet_sim::{Component, DualClock, Link, Time};

use crate::config::{ConfigError, SystemConfig, Variant};
use crate::stats::RunStats;
use crate::system::{NodeRole, System};
use duet_core::DuetAdapter;
use duet_mem::msg::CoherenceMsg;
use duet_noc::NodeId;

/// CDC wrapper for a slow-domain Memory Hub's NoC side (FPSoC variant).
#[derive(Clone)]
pub(crate) struct SlowHubCdc {
    /// Fast → slow: ejected coherence messages heading into the hub.
    pub(crate) into_hub: Link<(NodeId, CoherenceMsg, Time)>,
    /// Slow → fast: hub responses heading onto the NoC.
    pub(crate) from_hub: Link<(NodeId, CoherenceMsg)>,
}

impl System {
    /// Builds an idle system, or reports why the configuration cannot be
    /// built (see [`SystemConfig::validate`]).
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let (w, h) = cfg.mesh_dims();
        let mesh_cfg = MeshConfig::new(w, h, cfg.clock);
        let nodes = mesh_cfg.nodes();
        let home = HomeMap::new((0..nodes).collect());
        let cores = (0..cfg.processors)
            .map(|i| Core::new(cfg.core_config(i), Arc::new(Program::default())))
            .collect();
        let l2s = (0..cfg.processors)
            .map(|i| PrivCache::new(cfg.l2_config(), cfg.core_node(i), home.clone()))
            .collect();
        let shards = (0..nodes)
            .map(|n| L3Shard::new(cfg.dir_config(), n))
            .collect();
        let adapter = cfg.has_fpga.then(|| {
            DuetAdapter::new(
                cfg.adapter_config(),
                cfg.ctile_node(),
                &cfg.hub_nodes(),
                home.clone(),
                cfg.fpga_clock(),
            )
        });
        // Per-node cache role: message dispatch and coherent peeks index
        // this table instead of scanning core/hub lists per message.
        let mut node_roles = vec![NodeRole::ShardOnly; nodes];
        for i in 0..cfg.processors {
            node_roles[cfg.core_node(i)] = NodeRole::Core(i);
        }
        for (h, &n) in cfg.hub_nodes().iter().enumerate() {
            node_roles[n] = NodeRole::Hub(h);
        }
        let slow_cdc = if cfg.variant == Variant::Fpsoc {
            let fast = cfg.clock;
            let slow = cfg.fpga_clock();
            (0..cfg.memory_hubs)
                .map(|_| SlowHubCdc {
                    into_hub: Link::cdc(16, 2, fast, slow),
                    from_hub: Link::cdc(16, 2, slow, fast),
                })
                .collect()
        } else {
            Vec::new()
        };
        // Count-limited faults get their budget up front; window-only
        // kinds are effectively unbudgeted. Atomic cells so the sharded
        // component passes can decrement through a shared borrow.
        let fault_budget = cfg
            .faults
            .specs
            .iter()
            .map(|s| match s.kind {
                duet_verify::FaultKind::NocReorder { count, .. }
                | duet_verify::FaultKind::NocDrop { count, .. }
                | duet_verify::FaultKind::L3RespDrop { count, .. } => u64::from(count),
                _ => u64::MAX,
            })
            .map(std::sync::atomic::AtomicU64::new)
            .collect();
        // Intra-run parallelism: partition the node range into
        // weight-balanced contiguous shards; one shard reproduces the
        // classic serial loop through the same code path.
        let sim_shards = crate::parallel::resolve_sim_shards(cfg.sim_threads, nodes);
        let shard_plan = crate::parallel::build_shard_plan(&node_roles, cfg.processors, sim_shards);
        let sim_shards = shard_plan.len();
        let shard_lanes = (0..sim_shards)
            .map(|_| crate::parallel::ShardLane::default())
            .collect();
        // Mesh-tick sharding rides the same pool: the mesh keeps its own
        // contiguous partition (rebalanced from observed router load), the
        // system only tells it how many shards to aim for.
        let mesh_shards = crate::parallel::resolve_mesh_shards(cfg.mesh_shards, sim_shards, nodes);
        let mut mesh = Mesh::new(mesh_cfg);
        mesh.set_shards(mesh_shards);
        let pool_enabled =
            (sim_shards > 1 || mesh_shards > 1) && crate::parallel::want_worker_threads();
        let mesh_pool_min_active =
            if std::env::var("DUET_SIM_FORCE_THREADS").is_ok_and(|v| v == "1") {
                0
            } else {
                crate::parallel::MESH_POOL_MIN_ACTIVE
            };
        Ok(System {
            dual: DualClock::new(cfg.clock, cfg.fpga_clock()),
            mesh,
            cores,
            l2s,
            shards,
            adapter,
            accel: None,
            home,
            inject_pending: (0..nodes).map(|_| Link::pipe()).collect(),
            inject_pending_total: 0,
            inject_dirty: duet_noc::DirtyNodes::new(),
            core_held: vec![None; cfg.processors],
            node_roles,
            mmio_ids: duet_sim::IdSlab::new(),
            next_os_mmio_id: 1,
            page_table: PageTable::new(),
            os_tasks: Vec::new(),
            slow_cdc,
            stats: RunStats::default(),
            executed_edges: 0,
            now: Time::ZERO,
            // On unless DUET_DISABLE_EDGE_SKIP=1 (the exhaustive baseline
            // loop, for A/B wall-clock comparisons; results are identical).
            skip_enabled: !std::env::var("DUET_DISABLE_EDGE_SKIP").is_ok_and(|v| v == "1"),
            trace: None,
            sys_tracer: duet_trace::Tracer::disabled(),
            accel_tracer: duet_trace::Tracer::disabled(),
            accel_busy: false,
            fault_active: vec![false; cfg.faults.specs.len()],
            fault_index: duet_verify::FaultIndex::new(&cfg.faults, nodes),
            fault_budget,
            reorder_stash: Vec::new(),
            mesi_checker: duet_verify::MesiChecker::new(),
            noc_checker: duet_verify::NocOrderChecker::new(),
            adapter_violations: 0,
            pending_violation: None,
            faults_injected: 0,
            fences: 0,
            accel_fenced: false,
            watchdog_sig: 0,
            watchdog_since: Time::ZERO,
            sim_shards,
            shard_plan,
            shard_lanes,
            mesh_shards,
            mesh_pool_min_active,
            shard_pool: None,
            pool_enabled,
            trace_scratch: None,
            cfg,
        })
    }

    /// Walks every registered [`Component`] in canonical order: cores, the
    /// mesh, private L2s, L3 shards, then the adapter's Control Hub and
    /// Memory Hubs. The visitor returns `false` to stop the walk early
    /// (used by the horizon merge once a component is already due).
    ///
    /// Merge *order* never affects results — a horizon is a pure minimum —
    /// so this single walk serves both scheduling and reporting.
    pub(crate) fn visit_components(&self, visit: &mut dyn FnMut(&dyn Component) -> bool) {
        for c in &self.cores {
            if !visit(c) {
                return;
            }
        }
        if !visit(&self.mesh) {
            return;
        }
        for l2 in &self.l2s {
            if !visit(l2) {
                return;
            }
        }
        for s in &self.shards {
            if !visit(s) {
                return;
            }
        }
        if let Some(a) = &self.adapter {
            if !visit(&a.control) {
                return;
            }
            for h in &a.hubs {
                if !visit(h) {
                    return;
                }
            }
        }
    }
}
