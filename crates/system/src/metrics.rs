//! Process-wide simulation-throughput counters.
//!
//! Every completed run loop ([`System::run_until_halt`](crate::System::run_until_halt),
//! [`System::run_until`](crate::System::run_until),
//! [`System::quiesce`](crate::System::quiesce)) records how many clock
//! edges it retired (executed *plus* provably-dead edges skipped by
//! event-horizon scheduling) and how much simulated time elapsed. Harness
//! binaries read the totals with [`snapshot`] and report wall-clock
//! throughput as edges/sec and simulated-ns/sec.
//!
//! The counters are relaxed atomics so parallel sweep workers can all
//! contribute; readers only ever see monotone totals.

use std::sync::atomic::{AtomicU64, Ordering};

static EDGES: AtomicU64 = AtomicU64::new(0);
static SIM_PS: AtomicU64 = AtomicU64::new(0);

/// Adds a run-loop batch: `edges` clock edges retired over `sim_ps`
/// picoseconds of simulated time.
pub fn record(edges: u64, sim_ps: u64) {
    EDGES.fetch_add(edges, Ordering::Relaxed);
    SIM_PS.fetch_add(sim_ps, Ordering::Relaxed);
}

/// Resets both counters to zero. Back-to-back sweeps in one process call
/// this between runs so each run's throughput is measured from a clean
/// slate instead of by subtracting snapshots.
///
/// Not atomic across the two counters: do not call concurrently with
/// in-flight run loops.
pub fn reset() {
    EDGES.store(0, Ordering::Relaxed);
    SIM_PS.store(0, Ordering::Relaxed);
}

/// Totals since process start: `(edges, simulated_ps)`.
pub fn snapshot() -> (u64, u64) {
    (
        EDGES.load(Ordering::Relaxed),
        SIM_PS.load(Ordering::Relaxed),
    )
}

/// Formats throughput for a wall-clock interval as the standard
/// `"throughput: X edges/sec, Y simulated-ns/sec"` line, given counter
/// deltas and the elapsed wall time.
pub fn throughput_line(edges: u64, sim_ps: u64, wall: std::time::Duration) -> String {
    let secs = wall.as_secs_f64().max(1e-9);
    format!(
        "throughput: {:.3e} edges/sec, {:.3e} simulated-ns/sec",
        edges as f64 / secs,
        (sim_ps as f64 / 1000.0) / secs,
    )
}
