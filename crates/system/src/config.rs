//! System configurations: Dolly-PpMm instances, the FPSoC-like baseline,
//! and the processor-only baseline (Sec. V-A).

use duet_core::{AdapterConfig, ControlHubConfig, MemoryHubConfig};
use duet_cpu::CoreConfig;
use duet_mem::priv_cache::CacheConfig;
use duet_mem::DirConfig;
use duet_sim::Clock;
use duet_verify::FaultPlan;

/// Which system architecture to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Duet: Memory Hubs (Proxy Caches) in the fast clock domain, Shadow
    /// Registers available.
    Duet,
    /// FPSoC-like baseline (Sec. V-D): "moves the P-Mesh L2 cache into the
    /// eFPGA's (slow) clock domain and downgrades all shadowed soft
    /// registers to normal registers".
    Fpsoc,
    /// Processor-only baseline: no eFPGA at all.
    ProcOnly,
}

/// Why a [`SystemConfig`] cannot be built into a
/// [`System`](crate::System). Returned by [`SystemConfig::validate`] (and
/// hence `System::new`) instead of panicking deep inside wiring.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `processors == 0`: the OS stub, IRQ target, and MMIO id plumbing
    /// all assume at least one P-tile.
    NoProcessors,
    /// Memory Hubs requested without an eFPGA to host them.
    HubsWithoutFpga {
        /// The offending `memory_hubs` count.
        memory_hubs: usize,
    },
    /// The Duet / FPSoC variants model an eFPGA; `has_fpga` must be set.
    VariantRequiresFpga {
        /// The offending variant.
        variant: Variant,
    },
    /// The eFPGA clock must be a positive, finite frequency.
    InvalidFpgaClock {
        /// The offending frequency in MHz.
        mhz: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoProcessors => {
                write!(
                    f,
                    "configuration has no processors (need at least one P-tile)"
                )
            }
            ConfigError::HubsWithoutFpga { memory_hubs } => {
                write!(f, "{memory_hubs} memory hub(s) configured without an eFPGA")
            }
            ConfigError::VariantRequiresFpga { variant } => {
                write!(f, "variant {variant:?} requires an eFPGA (has_fpga = true)")
            }
            ConfigError::InvalidFpgaClock { mhz } => {
                write!(
                    f,
                    "invalid eFPGA clock: {mhz} MHz (must be positive and finite)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full system configuration. Use the constructors, then adjust fields.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of processor tiles (`p` of Dolly-PpMm).
    pub processors: usize,
    /// Number of Memory Hubs (`m` of Dolly-PpMm).
    pub memory_hubs: usize,
    /// Whether an eFPGA (and hence a C-tile) exists.
    pub has_fpga: bool,
    /// eFPGA clock in MHz.
    pub fpga_mhz: f64,
    /// Architecture variant.
    pub variant: Variant,
    /// System (processor) clock — 1 GHz in the paper's evaluation.
    pub clock: Clock,
    /// Kernel page-fault handling latency (OS-stub model), fast cycles.
    pub kernel_latency_cycles: u64,
    /// MSHRs per Proxy Cache (in-flight request bound of Fig. 10).
    pub proxy_mshrs: usize,
    /// Base of the adapter's MMIO region.
    pub mmio_base: u64,
    /// Deterministic fault-injection schedule (empty by default: inject
    /// nothing, cost nothing). See [`duet_verify::FaultPlan`].
    pub faults: FaultPlan,
    /// Intra-run simulation threads: the component graph is partitioned
    /// into this many shards, run concurrently between deterministic
    /// per-edge barriers. `1` (the default) is the serial loop; `0` means
    /// "use [`std::thread::available_parallelism`]". Overridable at run
    /// time via `DUET_SIM_THREADS`. Results are bit-identical for any
    /// value — this knob only trades host CPUs for wall-clock time.
    ///
    /// Note that sweep-level threads ([`parallel_map`] in `duet-bench`)
    /// and intra-run threads multiply: a sweep of 8 workers each running
    /// a 4-shard system wants 32 host CPUs. Cap the product at the host's
    /// parallelism — prefer sweep-level workers for many small runs and
    /// intra-run shards for one big mesh.
    ///
    /// [`parallel_map`]: https://docs.rs/duet-bench
    pub sim_threads: usize,
    /// Mesh-tick shards: the router grid is split into this many contiguous
    /// weight-balanced ranges, ticked concurrently with boundary-crossing
    /// flits replayed at a deterministic merge. `0` (the default) follows
    /// the resolved `sim_threads` value; `1` forces the serial mesh tick.
    /// Overridable at run time via `DUET_MESH_SHARDS`. Like `sim_threads`,
    /// results are bit-identical for any value — fingerprints, metrics, and
    /// traces do not depend on the shard layout.
    pub mesh_shards: usize,
}

impl SystemConfig {
    /// A Dolly-PpMm instance (Duet variant) with the eFPGA at `fpga_mhz`.
    pub fn dolly(p: usize, m: usize, fpga_mhz: f64) -> Self {
        SystemConfig {
            processors: p,
            memory_hubs: m,
            has_fpga: true,
            fpga_mhz,
            variant: Variant::Duet,
            clock: Clock::ghz1(),
            kernel_latency_cycles: 2000,
            proxy_mshrs: 2,
            mmio_base: 0x4000_0000,
            faults: FaultPlan::empty(),
            sim_threads: 1,
            mesh_shards: 0,
        }
    }

    /// The FPSoC-like baseline with the same resources.
    pub fn fpsoc(p: usize, m: usize, fpga_mhz: f64) -> Self {
        SystemConfig {
            variant: Variant::Fpsoc,
            ..Self::dolly(p, m, fpga_mhz)
        }
    }

    /// The processor-only baseline.
    pub fn proc_only(p: usize) -> Self {
        SystemConfig {
            processors: p,
            memory_hubs: 0,
            has_fpga: false,
            fpga_mhz: 100.0,
            variant: Variant::ProcOnly,
            clock: Clock::ghz1(),
            kernel_latency_cycles: 2000,
            proxy_mshrs: 8,
            mmio_base: 0x4000_0000,
            faults: FaultPlan::empty(),
            sim_threads: 1,
            mesh_shards: 0,
        }
    }

    /// A 64-tile processor-only system on an 8×8 mesh — the mid-size
    /// scaling configuration for intra-run parallel simulation.
    pub fn mesh_8x8() -> Self {
        Self::proc_only(64)
    }

    /// A 256-tile processor-only system on a 16×16 mesh — the big-mesh
    /// scaling configuration (the NoC-hotspot scenario in `duet-bench`
    /// runs here).
    pub fn mesh_16x16() -> Self {
        Self::proc_only(256)
    }

    /// Checks the configuration for inconsistencies that would make the
    /// assembled system malformed. `System::new` calls this and refuses to
    /// build on error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.processors == 0 {
            return Err(ConfigError::NoProcessors);
        }
        if !self.has_fpga {
            if self.memory_hubs > 0 {
                return Err(ConfigError::HubsWithoutFpga {
                    memory_hubs: self.memory_hubs,
                });
            }
            if self.variant != Variant::ProcOnly {
                return Err(ConfigError::VariantRequiresFpga {
                    variant: self.variant,
                });
            }
        }
        if self.has_fpga && !(self.fpga_mhz.is_finite() && self.fpga_mhz > 0.0) {
            return Err(ConfigError::InvalidFpgaClock { mhz: self.fpga_mhz });
        }
        Ok(())
    }

    /// Appends the canonical byte encoding of every field that affects
    /// simulated state to `w`: topology, clocks, variant, MMIO base, and
    /// the full fault plan (via [`FaultPlan::canonical_encode`]).
    ///
    /// `sim_threads` and `mesh_shards` are deliberately excluded: shard
    /// counts only trade host CPUs for wall-clock time (results are
    /// bit-identical), so two configs differing only there are the *same*
    /// simulated system. This one encoding backs both consumers of
    /// config identity — the snapshot header hash
    /// ([`config_hash`](SystemConfig::config_hash)) and the service
    /// layer's content-addressed cache key — so they can never drift
    /// apart.
    pub fn canonical_encode(&self, w: &mut duet_sim::SnapWriter) {
        w.len64(self.processors);
        w.len64(self.memory_hubs);
        w.u8(u8::from(self.has_fpga));
        w.u64(self.fpga_mhz.to_bits());
        w.u8(match self.variant {
            Variant::Duet => 0,
            Variant::Fpsoc => 1,
            Variant::ProcOnly => 2,
        });
        w.u64(self.clock.period().as_ps());
        w.u64(self.kernel_latency_cycles);
        w.len64(self.proxy_mshrs);
        w.u64(self.mmio_base);
        self.faults.canonical_encode(w);
    }

    /// The canonical encoding as an owned buffer.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = duet_sim::SnapWriter::new();
        self.canonical_encode(&mut w);
        w.finish()
    }

    /// A stable 64-bit digest of the canonical encoding
    /// ([`canonical_encode`](SystemConfig::canonical_encode)).
    ///
    /// Stamped into snapshot headers so a snapshot taken under one
    /// configuration refuses to load into a system built from another.
    /// The fault plan *is* folded in — replaying a checkpoint under a
    /// different plan would silently change the run.
    pub fn config_hash(&self) -> u64 {
        use duet_sim::SnapHasher;
        let mut h = SnapHasher::new();
        h.bytes(&self.canonical_bytes());
        h.finish()
    }

    /// Total number of tiles: P-tiles + C-tile + M-tiles.
    pub fn tiles(&self) -> usize {
        let fpga_tiles = if self.has_fpga {
            1 + self.memory_hubs.saturating_sub(1)
        } else {
            0
        };
        self.processors + fpga_tiles
    }

    /// Mesh dimensions: the smallest near-square grid that fits the tiles.
    pub fn mesh_dims(&self) -> (usize, usize) {
        let n = self.tiles().max(1);
        let w = (n as f64).sqrt().ceil() as usize;
        let h = n.div_ceil(w);
        (w, h)
    }

    /// NoC node of processor `i`.
    pub fn core_node(&self, i: usize) -> usize {
        assert!(i < self.processors);
        i
    }

    /// NoC node of the C-tile (Control Hub + Memory Hub 0).
    pub fn ctile_node(&self) -> usize {
        assert!(self.has_fpga, "no C-tile in a processor-only system");
        self.processors
    }

    /// NoC nodes of all Memory Hubs (hub 0 shares the C-tile).
    pub fn hub_nodes(&self) -> Vec<usize> {
        if !self.has_fpga || self.memory_hubs == 0 {
            return Vec::new();
        }
        let c = self.ctile_node();
        (0..self.memory_hubs).map(|k| c + k).collect()
    }

    /// The eFPGA clock.
    pub fn fpga_clock(&self) -> Clock {
        Clock::from_mhz(self.fpga_mhz)
    }

    /// Core configuration for hart `i`.
    pub fn core_config(&self, i: usize) -> CoreConfig {
        let mut c = CoreConfig::dolly(self.clock, i as u64);
        c.mmio_base = self.mmio_base;
        c
    }

    /// Per-tile private-L2 configuration.
    pub fn l2_config(&self) -> CacheConfig {
        CacheConfig::dolly_l2(self.clock)
    }

    /// L3-shard configuration.
    pub fn dir_config(&self) -> DirConfig {
        DirConfig::dolly_l3(self.clock)
    }

    /// Adapter configuration (hub clock domain depends on the variant).
    pub fn adapter_config(&self) -> AdapterConfig {
        let hub_clock = match self.variant {
            Variant::Fpsoc => self.fpga_clock(),
            _ => self.clock,
        };
        let mut proxy = CacheConfig::dolly_l2(hub_clock).with_mshrs(self.proxy_mshrs);
        if self.variant == Variant::Fpsoc {
            proxy = proxy.in_slow_domain();
        }
        let hub = MemoryHubConfig {
            proxy,
            ..MemoryHubConfig::dolly(self.clock)
        };
        AdapterConfig {
            mmio_base: self.mmio_base,
            hub,
            ctrl: ControlHubConfig::dolly(self.clock),
            irq_target: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dolly_p2m2_topology_matches_fig8() {
        // Fig. 8: Dolly-P2M2 = 2 P-tiles, 1 C-tile, 1 M-tile = 4 tiles.
        let c = SystemConfig::dolly(2, 2, 100.0);
        assert_eq!(c.tiles(), 4);
        assert_eq!(c.mesh_dims(), (2, 2));
        assert_eq!(c.ctile_node(), 2);
        assert_eq!(c.hub_nodes(), vec![2, 3]);
    }

    #[test]
    fn p1m0_has_ctile_but_no_hubs() {
        let c = SystemConfig::dolly(1, 0, 100.0);
        assert_eq!(c.tiles(), 2);
        assert!(c.hub_nodes().is_empty());
        assert_eq!(c.ctile_node(), 1);
    }

    #[test]
    fn proc_only_has_no_fpga_tiles() {
        let c = SystemConfig::proc_only(4);
        assert_eq!(c.tiles(), 4);
        assert!(c.hub_nodes().is_empty());
    }

    #[test]
    fn p16m1_mesh_is_near_square() {
        let c = SystemConfig::dolly(16, 1, 126.0);
        let (w, h) = c.mesh_dims();
        assert!(w * h >= 17);
        assert!(w.abs_diff(h) <= 1);
    }

    #[test]
    fn validate_accepts_the_stock_constructors() {
        assert_eq!(SystemConfig::dolly(2, 2, 100.0).validate(), Ok(()));
        assert_eq!(SystemConfig::fpsoc(1, 1, 137.0).validate(), Ok(()));
        assert_eq!(SystemConfig::proc_only(4).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_malformed_configs() {
        let mut c = SystemConfig::proc_only(0);
        assert_eq!(c.validate(), Err(ConfigError::NoProcessors));
        c = SystemConfig::proc_only(1);
        c.memory_hubs = 2;
        assert_eq!(
            c.validate(),
            Err(ConfigError::HubsWithoutFpga { memory_hubs: 2 })
        );
        c = SystemConfig::dolly(1, 1, 100.0);
        c.has_fpga = false;
        c.memory_hubs = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::VariantRequiresFpga {
                variant: Variant::Duet
            })
        );
        c = SystemConfig::dolly(1, 1, 0.0);
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidFpgaClock { mhz: 0.0 })
        );
        c = SystemConfig::dolly(1, 1, f64::NAN);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidFpgaClock { .. })
        ));
    }

    #[test]
    fn mesh_presets_are_square() {
        let c = SystemConfig::mesh_8x8();
        assert_eq!(c.tiles(), 64);
        assert_eq!(c.mesh_dims(), (8, 8));
        assert_eq!(c.validate(), Ok(()));
        let c = SystemConfig::mesh_16x16();
        assert_eq!(c.tiles(), 256);
        assert_eq!(c.mesh_dims(), (16, 16));
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.sim_threads, 1, "presets default to the serial loop");
        assert_eq!(c.mesh_shards, 0, "mesh shards default to follow threads");
    }

    #[test]
    fn config_hash_covers_state_fields_and_ignores_shard_knobs() {
        use duet_verify::{FaultKind, FaultSpec};
        let base = SystemConfig::dolly(2, 2, 100.0);
        assert_eq!(base.config_hash(), base.clone().config_hash());

        // Host-parallelism knobs are not part of config identity: a
        // snapshot taken at one shard count restores at any other, and a
        // cached service result is reusable at any thread count.
        let mut threaded = base.clone();
        threaded.sim_threads = 4;
        threaded.mesh_shards = 2;
        assert_eq!(base.config_hash(), threaded.config_hash());

        // Everything that changes simulated behavior must change the hash.
        let mut other = base.clone();
        other.processors = 3;
        assert_ne!(base.config_hash(), other.config_hash());
        let mut other = base.clone();
        other.fpga_mhz = 126.0;
        assert_ne!(base.config_hash(), other.config_hash());
        let mut other = base.clone();
        other.faults = other.faults.with(FaultSpec::starting(
            FaultKind::AccelHang,
            duet_sim::Time::from_us(1),
        ));
        assert_ne!(base.config_hash(), other.config_hash());
    }

    #[test]
    fn fpsoc_variant_puts_proxy_in_slow_domain() {
        let c = SystemConfig::fpsoc(1, 1, 100.0);
        let a = c.adapter_config();
        assert!(a.hub.proxy.slow_domain);
        assert_eq!(a.hub.proxy.clock.period().as_ps(), 10_000);
        let d = SystemConfig::dolly(1, 1, 100.0).adapter_config();
        assert!(!d.hub.proxy.slow_domain);
        assert_eq!(d.hub.proxy.clock.period().as_ps(), 1000);
    }
}
