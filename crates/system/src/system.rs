//! The assembled Dolly system: cores + L1/L2 + distributed L3 + NoC +
//! Duet Adapter + eFPGA, driven by a dual-clock edge loop.
//!
//! This module holds the [`System`] state and its inspection/configuration
//! surface. Construction and the component registry live in `wiring`, the
//! dual-clock run loop in `run_loop`, and statistics/link reporting in
//! `stats`.

use std::sync::Arc;

use duet_core::{DuetAdapter, DuetMsg, RegMode};
use duet_cpu::{Core, Program};
use duet_fpga::ports::SoftAccelerator;
use duet_mem::priv_cache::{HomeMap, LineState, PrivCache};
use duet_mem::tlb::{PagePerms, PageTable};
use duet_mem::types::{read_scalar, LineAddr, MemReq, Width, LINE_BYTES};
use duet_mem::L3Shard;
use duet_noc::{Mesh, NodeId};
use duet_sim::{DualClock, IdSlab, Link, Time};
use duet_trace::{Scoreboard, TraceConfig, TraceSession, Tracer};
use duet_verify::{MesiChecker, NocOrderChecker, Violation};

use crate::config::{SystemConfig, Variant};
use crate::run_loop::OsTask;
use crate::wiring::SlowHubCdc;

pub use crate::stats::RunStats;

/// What cache (if any) lives at a NoC node, precomputed at wiring time so
/// per-message dispatch is a table lookup instead of a scan. Every node
/// additionally hosts an L3 shard; the role only describes the cache side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NodeRole {
    /// P-tile: core `i` with its private L2.
    Core(usize),
    /// Tile hosting Memory Hub `h` (hub 0 shares the C-tile).
    Hub(usize),
    /// No cache at this node (C-tile without hubs, filler tiles).
    ShardOnly,
}

/// The full simulated system. Build with [`System::new`], load memory and
/// programs, then [`run_until_halt`](System::run_until_halt).
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) dual: DualClock,
    pub(crate) mesh: Mesh<DuetMsg>,
    pub(crate) cores: Vec<Core>,
    /// Per-core private L2 (index = core index; node = core node).
    pub(crate) l2s: Vec<PrivCache>,
    /// One shard per mesh node.
    pub(crate) shards: Vec<L3Shard>,
    pub(crate) adapter: Option<DuetAdapter>,
    pub(crate) accel: Option<Box<dyn SoftAccelerator>>,
    pub(crate) home: HomeMap,
    /// Per-node injection pipes toward the mesh (backpressure buffers).
    pub(crate) inject_pending: Vec<Link<(NodeId, DuetMsg)>>,
    /// Total entries across `inject_pending` (O(1) activity check).
    pub(crate) inject_pending_total: usize,
    /// Sorted superset of the nodes whose injection pipes are non-empty,
    /// so the injection pump visits only live pipes (ascending — the same
    /// order as a full node scan).
    pub(crate) inject_dirty: duet_noc::DirtyNodes,
    /// Core cached-request held when the L2 queue is full.
    pub(crate) core_held: Vec<Option<MemReq>>,
    /// Per-node cache role, indexed by NoC node (built in wiring).
    pub(crate) node_roles: Vec<NodeRole>,
    /// MMIO id mangling: slab id -> (core index, original id). The wire id
    /// *is* the slot index, so response lookup is an array access.
    pub(crate) mmio_ids: IdSlab<(usize, u64)>,
    /// Monotone id counter for OS-stub MMIOs (fire-and-forget: tagged with
    /// `OS_ID_BASE`, never looked up on response).
    pub(crate) next_os_mmio_id: u64,
    /// OS model.
    pub(crate) page_table: PageTable,
    pub(crate) os_tasks: Vec<(Time, OsTask)>,
    /// CDC wrappers per hub (FPSoC variant only).
    pub(crate) slow_cdc: Vec<SlowHubCdc>,
    pub(crate) stats: RunStats,
    /// Host-side counter of edges actually executed (not skipped). Unlike
    /// [`RunStats`] edge counts — which are reconstructed to match
    /// exhaustive ticking bit-for-bit — this differs between skip modes;
    /// it exists only for host-performance introspection.
    pub(crate) executed_edges: u64,
    pub(crate) now: Time,
    /// Event-horizon scheduling: when set (the default), run loops jump
    /// over provably-dead clock edges and fast edges skip provably-idle
    /// components. Cycle-for-cycle identical to exhaustive ticking; turn
    /// off only to cross-check (see the differential determinism tests).
    pub(crate) skip_enabled: bool,
    /// Per-run trace session, when [`enable_tracing`](System::enable_tracing)
    /// was called. Tracing is strictly observational: fingerprints and all
    /// timing statistics are bit-identical with it on or off.
    pub(crate) trace: Option<TraceSession>,
    /// Run-loop trace handle (edge execution and horizon skips).
    pub(crate) sys_tracer: Tracer,
    /// Accelerator trace handle (start/stall/done).
    pub(crate) accel_tracer: Tracer,
    /// Shadow of the accelerator's busy state, for start/done edges.
    pub(crate) accel_busy: bool,

    // ----- fault injection & runtime verification (duet-verify) -----
    /// Per-spec latch: whether spec `i`'s window is currently applied.
    pub(crate) fault_active: Vec<bool>,
    /// Per-node index over the plan's NoC specs, so the injection pump and
    /// ejection dispatcher consult only the specs targeting their node
    /// instead of scanning the whole plan per message.
    pub(crate) fault_index: duet_verify::FaultIndex,
    /// Per-spec remaining budget for count-limited faults (`u64::MAX` for
    /// window-only kinds). Atomic so the sharded component passes can
    /// decrement through a shared borrow; every counter still has exactly
    /// one consumer per edge (each spec targets a single node), so the
    /// values are deterministic.
    pub(crate) fault_budget: Vec<std::sync::atomic::AtomicU64>,
    /// Messages held back by an active `NocReorder` fault:
    /// `(spec index, eject node, message)`.
    pub(crate) reorder_stash: Vec<(usize, NodeId, duet_noc::Message<DuetMsg>)>,
    /// Runtime MESI invariant checker (pure observer, always on).
    pub(crate) mesi_checker: MesiChecker,
    /// Runtime NoC point-to-point ordering checker (pure observer).
    pub(crate) noc_checker: NocOrderChecker,
    /// Adapter/MMIO invariant breaks recorded in place of panics.
    pub(crate) adapter_violations: u64,
    /// First violation not yet surfaced as a
    /// [`RunError`](duet_verify::RunError).
    pub(crate) pending_violation: Option<Violation>,
    /// Fault-window activations observed so far.
    pub(crate) faults_injected: u64,
    /// Accelerator fences performed by the degradation watchdog.
    pub(crate) fences: u64,
    /// The accelerator has been fenced off: its ticks are suppressed and
    /// the adapter answers MMIO with error status.
    pub(crate) accel_fenced: bool,
    /// Watchdog: last sampled adapter progress signature and the time it
    /// last changed.
    pub(crate) watchdog_sig: u64,
    pub(crate) watchdog_since: Time,

    // ----- intra-run parallel simulation (parallel) -----
    /// Effective shard count for the fast-edge component passes
    /// (resolved from `cfg.sim_threads` / `DUET_SIM_THREADS` at wiring).
    pub(crate) sim_shards: usize,
    /// Contiguous weight-balanced partition of the node range; always at
    /// least one shard covering every node.
    pub(crate) shard_plan: Vec<crate::parallel::ShardSpec>,
    /// Per-shard output lanes (deferred MMIOs, pipe accounting), replayed
    /// in shard order after the passes.
    pub(crate) shard_lanes: Vec<crate::parallel::ShardLane>,
    /// Effective mesh-tick shard count (resolved from `cfg.mesh_shards` /
    /// `DUET_MESH_SHARDS` at wiring; 0 in the config follows `sim_shards`).
    pub(crate) mesh_shards: usize,
    /// Below this many active routers the sharded mesh tick runs inline
    /// instead of waking the pool (0 when `DUET_SIM_FORCE_THREADS=1`, so
    /// the determinism tests exercise the pooled path on tiny meshes).
    pub(crate) mesh_pool_min_active: usize,
    /// Persistent worker threads, spawned lazily on the first pooled pass.
    /// Shared between the component passes and the sharded mesh tick (one
    /// epoch each per fast edge).
    pub(crate) shard_pool: Option<crate::parallel::ShardPool>,
    /// Whether multi-shard passes may use real worker threads (host has
    /// parallelism, or `DUET_SIM_FORCE_THREADS=1`); otherwise the sharded
    /// schedule runs inline on the coordinator.
    pub(crate) pool_enabled: bool,
    /// Per-shard trace scratch rings, built lazily while tracing is on
    /// and invalidated by [`enable_tracing`](System::enable_tracing).
    pub(crate) trace_scratch: Option<crate::parallel::TraceScratch>,
}

impl System {
    /// Enables or disables event-horizon scheduling (dead-edge skipping
    /// and idle-component gating). On by default; both settings produce
    /// bit-identical results — the off position exists so tests can
    /// cross-check against exhaustive edge-by-edge ticking.
    pub fn set_edge_skipping(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Enables event tracing for subsequent runs: creates a per-run
    /// [`TraceSession`] and threads trace handles through every layer (run
    /// loop, mesh, private L2s, L3 shards, adapter hubs, accelerator
    /// ports). Components register in the canonical walk order, one trace
    /// track each. Calling again replaces the previous session.
    ///
    /// Tracing is purely observational — simulation results, fingerprints,
    /// and all timing statistics are bit-identical with it on or off (the
    /// differential tests assert this).
    pub fn enable_tracing(&mut self, tcfg: &TraceConfig) {
        let mut session = TraceSession::new(tcfg);
        self.sys_tracer = session.tracer("runloop");
        self.mesh.set_tracer(session.tracer("mesh"));
        for i in 0..self.l2s.len() {
            let node = self.cfg.core_node(i);
            self.l2s[i].set_tracer(session.tracer(&format!("l2@n{node}")));
        }
        for s in self.shards.iter_mut() {
            let node = s.node();
            s.set_tracer(session.tracer(&format!("l3@n{node}")));
        }
        if let Some(a) = self.adapter.as_mut() {
            a.install_tracers(&mut session);
        }
        self.accel_tracer = session.tracer("accel");
        if let Some(a) = self.adapter.as_mut() {
            a.set_fabric_tracer(self.accel_tracer.clone());
        }
        // The scratch rings cache clones of the per-component tracers, so
        // a new session invalidates them (rebuilt lazily on the next
        // sharded pass).
        self.trace_scratch = None;
        self.trace = Some(session);
    }

    /// Whether a trace session is active.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The active trace session (event inspection), if any.
    pub fn trace_session(&self) -> Option<&TraceSession> {
        self.trace.as_ref()
    }

    /// Exports the captured trace as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`), if tracing is enabled.
    pub fn trace_chrome_json(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.chrome_trace())
    }

    /// Exports the captured trace as a plain-text event log.
    pub fn trace_text_log(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.text_log())
    }

    /// Derived scoreboards (latency histograms, MESI transition counts)
    /// computed from the captured events.
    pub fn trace_scoreboard(&self) -> Option<Scoreboard> {
        self.trace.as_ref().map(|t| t.scoreboard())
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Mutable access to core `i`.
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Shared access to core `i`.
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Per-core private L2 (inspection).
    pub fn l2(&self, i: usize) -> &PrivCache {
        &self.l2s[i]
    }

    /// The NoC (inspection).
    pub fn mesh(&self) -> &Mesh<DuetMsg> {
        &self.mesh
    }

    /// The Duet Adapter, if the configuration has one.
    pub fn adapter_mut(&mut self) -> &mut DuetAdapter {
        match self.adapter.as_mut() {
            Some(a) => a,
            None => panic!("configuration has no eFPGA"),
        }
    }

    /// The Duet Adapter (shared).
    pub fn adapter(&self) -> &DuetAdapter {
        match self.adapter.as_ref() {
            Some(a) => a,
            None => panic!("configuration has no eFPGA"),
        }
    }

    /// The kernel's page table (the OS stub consults it on page faults).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Attaches the soft accelerator (the programmed fabric design).
    pub fn attach_accelerator(&mut self, accel: Box<dyn SoftAccelerator>) {
        assert!(self.cfg.has_fpga, "no eFPGA in this configuration");
        self.accel = Some(accel);
    }

    /// The attached accelerator, for post-run inspection.
    pub fn accelerator(&self) -> Option<&dyn SoftAccelerator> {
        self.accel.as_deref()
    }

    /// Mutable accelerator access.
    pub fn accelerator_mut(&mut self) -> Option<&mut (dyn SoftAccelerator + '_)> {
        match self.accel.as_mut() {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Configures a soft register's mode, honoring the variant: the
    /// FPSoC-like baseline "downgrades all shadowed soft registers to
    /// normal registers" (Sec. V-D).
    pub fn set_reg_mode(&mut self, reg: usize, mode: RegMode) {
        let effective = match (self.cfg.variant, mode) {
            (Variant::Fpsoc, RegMode::ShadowPlain)
            | (Variant::Fpsoc, RegMode::FpgaBound)
            | (Variant::Fpsoc, RegMode::CpuBound)
            | (Variant::Fpsoc, RegMode::Token) => RegMode::Normal,
            (_, m) => m,
        };
        self.adapter_mut().control.set_reg_mode(reg, effective);
    }

    /// Loads `program` into core `i` starting at `entry`.
    pub fn load_program(&mut self, i: usize, program: Arc<Program>, entry: &str) {
        let cfg = self.cfg.core_config(i);
        let mut core = Core::new(cfg, program);
        core.set_pc_label(entry);
        self.cores[i] = core;
    }

    // ----- memory image access -----

    /// Writes bytes into the memory image (pre-run initialization).
    pub fn poke_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (k, &b) in bytes.iter().enumerate() {
            let a = addr + k as u64;
            let line = LineAddr::containing(a);
            let home = self.home.home_of(line);
            let mut data = self.shards[home].peek_line(line);
            data[LineAddr::offset(a)] = b;
            self.shards[home].poke_line(line, data);
        }
    }

    /// Writes a u64 into the memory image.
    pub fn poke_u64(&mut self, addr: u64, v: u64) {
        self.poke_bytes(addr, &v.to_le_bytes());
    }

    /// Writes an f64 into the memory image.
    pub fn poke_f64(&mut self, addr: u64, v: f64) {
        self.poke_u64(addr, v.to_bits());
    }

    /// Reads bytes from the memory image (NOT coherence-aware; prefer
    /// [`peek_u64`](System::peek_u64) after a quiesced run).
    pub fn peek_bytes_raw(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|k| {
                let a = addr + k as u64;
                let line = LineAddr::containing(a);
                let home = self.home.home_of(line);
                self.shards[home].peek_line(line)[LineAddr::offset(a)]
            })
            .collect()
    }

    /// Directory inspection (debug aid): `(owner, sharers)` of a line at
    /// its home shard.
    pub fn dir_state(&self, line: LineAddr) -> (Option<NodeId>, Vec<NodeId>) {
        let home = self.home.home_of(line);
        (
            self.shards[home].owner_of(line),
            self.shards[home].sharers_of(line),
        )
    }

    /// Reads the globally visible line value: the owner's cached copy if
    /// one exists, else the memory image.
    pub fn peek_line(&self, line: LineAddr) -> [u8; LINE_BYTES] {
        let home = self.home.home_of(line);
        if let Some(owner) = self.shards[home].owner_of(line) {
            if let Some(d) = self.component_line(owner, line) {
                return d;
            }
        }
        self.shards[home].peek_line(line)
    }

    /// The cached copy of `line` at `node`, if the node hosts a cache that
    /// holds it.
    fn component_line(&self, node: NodeId, line: LineAddr) -> Option<[u8; LINE_BYTES]> {
        match self.node_roles[node] {
            NodeRole::Core(i) => self.l2s[i].peek_line(line),
            NodeRole::Hub(h) => self.adapter.as_ref()?.hubs[h].peek_proxy_line(line),
            NodeRole::ShardOnly => None,
        }
    }

    /// Reads a coherently-visible u64.
    pub fn peek_u64(&self, addr: u64) -> u64 {
        let line = self.peek_line(LineAddr::containing(addr));
        read_scalar(&line, LineAddr::offset(addr), Width::B8)
    }

    /// Reads a coherently-visible u32.
    pub fn peek_u32(&self, addr: u64) -> u32 {
        let line = self.peek_line(LineAddr::containing(addr));
        read_scalar(&line, LineAddr::offset(addr), Width::B4) as u32
    }

    /// Reads a coherently-visible f64.
    pub fn peek_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.peek_u64(addr))
    }

    // ----- cache warm-up (the paper's warm-start baselines) -----

    /// Warms `len` bytes at `base` into core `i`'s L2 in shared state (and
    /// the L3 tags), so the first loads hit.
    pub fn warm_shared(&mut self, base: u64, len: u64, core: usize) {
        let node = self.cfg.core_node(core);
        let first = LineAddr::containing(base);
        let last = LineAddr::containing(base + len.max(1) - 1);
        for l in first.0..=last.0 {
            let line = LineAddr(l);
            let home = self.home.home_of(line);
            let data = self.shards[home].peek_line(line);
            self.shards[home].warm_sharer(line, node);
            self.l2s[core].warm_insert(line, data, LineState::S);
        }
    }

    /// Warms lines into core `i`'s L2 in exclusive state.
    pub fn warm_exclusive(&mut self, base: u64, len: u64, core: usize) {
        let node = self.cfg.core_node(core);
        let first = LineAddr::containing(base);
        let last = LineAddr::containing(base + len.max(1) - 1);
        for l in first.0..=last.0 {
            let line = LineAddr(l);
            let home = self.home.home_of(line);
            let data = self.shards[home].peek_line(line);
            self.shards[home].warm_owner(line, node);
            self.l2s[core].warm_insert(line, data, LineState::E);
        }
    }

    // ----- identity-map helper for accelerator virtual addressing -----

    /// Identity-maps a range in the kernel page table (used with
    /// TLB-enabled hubs).
    pub fn map_identity(&mut self, base: u64, len: u64) {
        self.page_table
            .map_range_identity(base, len, PagePerms::rw());
    }

    // ----- runtime verification (duet-verify) -----

    /// The runtime MESI invariant checker (pure observer; always on).
    pub fn mesi_checker(&self) -> &MesiChecker {
        &self.mesi_checker
    }

    /// The runtime NoC point-to-point ordering checker.
    pub fn noc_checker(&self) -> &NocOrderChecker {
        &self.noc_checker
    }

    /// Total violations recorded by every runtime checker (MESI, NoC
    /// ordering, adapter/MMIO invariants).
    pub fn checker_violations(&self) -> u64 {
        self.mesi_checker.violations() + self.noc_checker.violations() + self.adapter_violations
    }

    /// Fault-window activations observed so far (one per spec activation,
    /// not per affected message).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Accelerator fences performed by the degradation watchdog.
    pub fn fences(&self) -> u64 {
        self.fences
    }

    /// Whether the degradation watchdog has fenced the accelerator off.
    pub fn accel_fenced(&self) -> bool {
        self.accel_fenced
    }

    /// Structural coherence sweep: cross-checks every *stable* directory
    /// entry against the actual cache states at each node. Intended after
    /// [`quiesce`](System::quiesce) — while transactions are in flight a
    /// cache and its home legitimately disagree (the sweep skips busy
    /// directory entries, but an in-flight `PutM`, for example, leaves a
    /// stable entry naming an owner that already evicted).
    ///
    /// Checks, per line: the registered owner holds the line in E/M; no
    /// other cache holds it in any valid state when an owner is registered;
    /// every cache holding the line is listed as a sharer (sharer lists are
    /// allowed to be supersets — silent S evictions).
    pub fn check_coherence(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let cache_nodes: Vec<NodeId> = (0..self.node_roles.len())
            .filter(|&n| self.node_roles[n] != NodeRole::ShardOnly)
            .collect();
        for shard in &self.shards {
            for (line, owner, sharers, busy) in shard.dir_entries() {
                if busy {
                    continue;
                }
                if let Some(o) = owner {
                    match self.cache_line_state(o, line) {
                        Some(LineState::E) | Some(LineState::M) => {}
                        other => out.push(Violation::MesiDirectoryMismatch {
                            line: line.0,
                            detail: format!(
                                "directory names n{o} owner but its cache holds {other:?}"
                            ),
                        }),
                    }
                }
                for &n in &cache_nodes {
                    let Some(st) = self.cache_line_state(n, line) else {
                        continue;
                    };
                    match owner {
                        Some(o) if n != o => out.push(Violation::MesiDirectoryMismatch {
                            line: line.0,
                            detail: format!(
                                "n{n} holds {st:?} while the directory names n{o} owner"
                            ),
                        }),
                        Some(_) => {}
                        None => {
                            if st != LineState::S {
                                out.push(Violation::MesiDirectoryMismatch {
                                    line: line.0,
                                    detail: format!(
                                        "n{n} holds {st:?} but the directory has no owner"
                                    ),
                                });
                            } else if !sharers.contains(&n) {
                                out.push(Violation::MesiDirectoryMismatch {
                                    line: line.0,
                                    detail: format!(
                                        "n{n} holds S but is missing from the sharer list"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The MESI state of `line` in the cache at `node`, if the node hosts
    /// a cache that currently holds it.
    fn cache_line_state(&self, node: NodeId, line: LineAddr) -> Option<LineState> {
        match self.node_roles[node] {
            NodeRole::Core(i) => self.l2s[i].line_state(line),
            NodeRole::Hub(h) => self.adapter.as_ref()?.hubs[h].proxy_line_state(line),
            NodeRole::ShardOnly => None,
        }
    }
}
