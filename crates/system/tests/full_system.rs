//! Full-system integration tests: cores + coherence + NoC + Duet Adapter +
//! a live soft accelerator, end to end.

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::Time;
use duet_system::{System, SystemConfig};

/// A minimal accelerator: consumes values written to reg 0, produces
/// `value + 1` on result reg 1. One result per FPGA cycle. Works under both
/// shadow (Duet) and normal (FPSoC) register configurations.
struct EchoPlusOne {
    regs: FabricRegFile,
}

impl EchoPlusOne {
    fn new(push_mode: bool) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        EchoPlusOne { regs }
    }
}

impl SoftAccelerator for EchoPlusOne {
    fn name(&self) -> &str {
        "echo-plus-one"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        if let Some(v) = self.regs.pop_write(0) {
            self.regs.push_result(1, v + 1);
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        NetlistSummary {
            name: "echo-plus-one",
            luts: 64,
            ffs: 64,
            bram_kbits: 0,
            mults: 0,
            logic_levels: 2,
        }
    }
}

/// An accelerator that sums a cacheline from coherent memory via hub 0 and
/// reports the total through result reg 1.
struct LineSummer {
    regs: FabricRegFile,
    addr: Option<u64>,
}

impl LineSummer {
    fn new(push_mode: bool) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        LineSummer { regs, addr: None }
    }
}

impl SoftAccelerator for LineSummer {
    fn name(&self) -> &str {
        "line-summer"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        if self.addr.is_none() {
            self.addr = self.regs.pop_write(0);
        }
        if let Some(r) = ports.hubs[0].pop_resp(now) {
            if let FpgaRespKind::LoadAck { data } = r.kind {
                let sum: u64 = data.iter().map(|&b| u64::from(b)).sum();
                self.regs.push_result(1, sum);
            }
        }
        if let Some(addr) = self.addr.take() {
            if !ports.hubs[0].load_line(now, 1, addr) {
                self.addr = Some(addr);
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        NetlistSummary {
            name: "line-summer",
            luts: 128,
            ffs: 96,
            bram_kbits: 0,
            mults: 0,
            logic_levels: 3,
        }
    }
}

#[test]
fn two_cores_contend_on_an_atomic_counter() {
    let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x2000);
    a.li(regs::T[1], 0);
    a.label("loop");
    a.li(regs::T[2], 1);
    a.amoadd(regs::T[3], regs::T[0], regs::T[2]);
    a.addi(regs::T[1], regs::T[1], 1);
    a.li(regs::T[2], 50);
    a.blt(regs::T[1], regs::T[2], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "main");
    sys.load_program(1, prog, "main");
    sys.run_until_halt(Time::from_us(500))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(600))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x2000), 100, "atomicity across cores");
}

#[test]
fn producer_consumer_through_shared_memory() {
    // Core 0 writes a flag+value; core 1 spins on the flag then reads.
    let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
    let mut a = Asm::new();
    a.label("producer");
    a.li(regs::T[0], 0x3000);
    a.li(regs::T[1], 777);
    a.sd(regs::T[1], regs::T[0], 8); // value
    a.fence();
    a.li(regs::T[1], 1);
    a.sd(regs::T[1], regs::T[0], 0); // flag
    a.halt();
    a.label("consumer");
    a.li(regs::T[0], 0x3000);
    a.label("spin");
    a.ld(regs::T[1], regs::T[0], 0);
    a.beqz(regs::T[1], "spin");
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x3100);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    sys.load_program(0, prog.clone(), "producer");
    sys.load_program(1, prog, "consumer");
    sys.run_until_halt(Time::from_us(500))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(600))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x3100), 777, "consumer saw the produced value");
}

#[test]
fn core_reaches_accelerator_through_shadow_registers() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(EchoPlusOne::new(true)));

    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x4000_0000u64 as i64); // reg 0
    a.li(regs::T[1], 41);
    a.sd(regs::T[1], regs::T[0], 0); // write arg (FPGA-bound)
    a.ld(regs::T[2], regs::T[0], 8); // read result (CPU-bound, blocking)
    a.li(regs::T[3], 0x5000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(100))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(200))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sys.peek_u64(0x5000), 42, "round trip through the eFPGA");
}

#[test]
fn accelerator_reads_coherent_memory_written_by_core() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(LineSummer::new(true)));

    // The core writes 16 bytes (2,3,...) then asks the accelerator to sum
    // the line — the accelerator must see the *core's* dirty data through
    // the Proxy Cache (bi-directional coherence).
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], 0x6000);
    a.li(regs::T[1], 0x0302_0302_0302_0302u64 as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.sd(regs::T[1], regs::T[0], 8);
    a.fence();
    a.li(regs::T[2], 0x4000_0000u64 as i64);
    a.li(regs::T[3], 0x6000);
    a.sd(regs::T[3], regs::T[2], 0); // address -> accel
    a.ld(regs::T[4], regs::T[2], 8); // blocking read of the sum
    a.li(regs::T[5], 0x7000);
    a.sd(regs::T[4], regs::T[5], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(200))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(300))
        .unwrap_or_else(|e| panic!("{e}"));
    // Sum of bytes: 8 × (2+3) = 40.
    assert_eq!(sys.peek_u64(0x7000), 40, "accelerator saw coherent data");
}

#[test]
fn fpsoc_variant_is_slower_than_duet_for_the_same_work() {
    let run = |cfg: SystemConfig| -> Time {
        let push_mode = cfg.variant == duet_system::Variant::Duet;
        let mut sys = System::new(cfg).expect("valid config");
        sys.set_reg_mode(0, RegMode::FpgaBound);
        sys.set_reg_mode(1, RegMode::CpuBound);
        sys.attach_accelerator(Box::new(EchoPlusOne::new(push_mode)));
        let mut a = Asm::new();
        a.label("main");
        a.li(regs::T[0], 0x4000_0000u64 as i64);
        a.li(regs::S[0], 0); // i
        a.li(regs::S[1], 16); // n
        a.label("loop");
        a.sd(regs::S[0], regs::T[0], 0);
        a.ld(regs::T[2], regs::T[0], 8);
        a.addi(regs::S[0], regs::S[0], 1);
        a.blt(regs::S[0], regs::S[1], "loop");
        a.halt();
        sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
        sys.run_until_halt(Time::from_us(1000))
            .unwrap_or_else(|e| panic!("{e}"))
    };
    let duet = run(SystemConfig::dolly(1, 1, 100.0));
    let fpsoc = run(SystemConfig::fpsoc(1, 1, 100.0));
    assert!(
        fpsoc > duet,
        "FPSoC ({fpsoc}) must be slower than Duet ({duet}) at 100 MHz"
    );
}

#[test]
fn page_fault_is_serviced_by_the_os_stub() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    // Hub 0 in virtual-address mode.
    {
        let a = sys.adapter_mut();
        let mut sw = a.hubs[0].switches();
        sw.tlb_enabled = true;
        a.hubs[0].set_switches(sw);
    }
    sys.map_identity(0x6000, 0x1000);
    sys.poke_u64(0x6000, 0x0101_0101_0101_0101);
    sys.poke_u64(0x6008, 0x0101_0101_0101_0101);
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(LineSummer::new(true)));
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[2], 0x4000_0000u64 as i64);
    a.li(regs::T[3], 0x6000);
    a.sd(regs::T[3], regs::T[2], 0);
    a.ld(regs::T[4], regs::T[2], 8); // blocks across the page fault
    a.li(regs::T[5], 0x7000);
    a.sd(regs::T[4], regs::T[5], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(500))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(600))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        sys.peek_u64(0x7000),
        16,
        "access completed after TLB refill"
    );
    assert_eq!(sys.stats().page_faults, 1, "exactly one fault serviced");
}

#[test]
fn unmapped_page_kills_the_accelerator() {
    let mut sys = System::new(SystemConfig::dolly(1, 1, 100.0)).expect("valid config");
    {
        let a = sys.adapter_mut();
        let mut sw = a.hubs[0].switches();
        sw.tlb_enabled = true;
        a.hubs[0].set_switches(sw);
    }
    // No mapping for 0x6000 at all.
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.attach_accelerator(Box::new(LineSummer::new(true)));
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[2], 0x4000_0000u64 as i64);
    a.li(regs::T[3], 0x6000);
    a.sd(regs::T[3], regs::T[2], 0);
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
    sys.run_until_halt(Time::from_us(100))
        .unwrap_or_else(|e| panic!("{e}"));
    // Give the fault + kill path time to complete.
    let deadline = sys.now() + Time::from_us(50);
    while sys.now() < deadline {
        sys.step_edge();
    }
    let hub = &sys.adapter().hubs[0];
    assert_eq!(
        hub.error_code(),
        duet_core::memory_hub::error_codes::KILLED,
        "kernel killed the accelerator"
    );
    assert!(!hub.switches().active);
}
