//! A distributed L3 shard: directory controller plus data slice.
//!
//! Dolly distributes the shared L3 among all physical tiles (64 KB per
//! shard) and runs "a directory-based MESI protocol together with the
//! private L2 caches" (Sec. IV). Each shard owns the lines that hash to it
//! (see [`crate::priv_cache::HomeMap`]) and serializes transactions per line
//! with a blocking busy state released by the requestor's `Unblock`.
//!
//! **Modelling notes** (documented substitutions):
//!
//! * Directory state lives in an unbounded map — we model a directory with
//!   no capacity conflicts, so no recall traffic. The paper's working sets
//!   fit comfortably in the L3, so recalls would not occur in its
//!   experiments either.
//! * The memory controller is folded into the shard as a fixed extra
//!   latency on L3 data misses rather than a separate mesh node.

use std::collections::VecDeque;

use duet_noc::NodeId;
use duet_sim::{
    Clock, ClockDomain, Component, LatencyBreakdown, LineMap, Link, LinkReport, PagedMem, Time,
};
use duet_trace::{mesi, pack_mesi, EventKind, Tracer};

use crate::array::CacheArray;
use crate::msg::{CoherenceMsg, Grant};
use crate::types::{LineAddr, LineData};

/// Configuration of an L3 shard.
#[derive(Clone, Copy, Debug)]
pub struct DirConfig {
    /// Data-array sets (power of two).
    pub sets: usize,
    /// Data-array associativity.
    pub ways: usize,
    /// Directory/tag processing latency per message, in cycles.
    pub proc_cycles: u32,
    /// Additional latency for an L3 data-array hit, in cycles.
    pub l3_cycles: u32,
    /// Additional latency for fetching a line from memory, in cycles.
    pub mem_cycles: u32,
    /// Clock (always the fast/system clock in Dolly).
    pub clock: Clock,
}

impl DirConfig {
    /// Dolly-like shard: 64 KB (4096 lines), 4-way; 4-cycle directory
    /// processing, 8-cycle L3 data access, 90-cycle memory.
    pub fn dolly_l3(clock: Clock) -> Self {
        DirConfig {
            sets: 1024,
            ways: 4,
            proc_cycles: 4,
            l3_cycles: 8,
            mem_cycles: 90,
            clock,
        }
    }
}

/// Stable directory state for one line.
#[derive(Clone, Debug, PartialEq, Eq)]
enum DirState {
    /// No cached copies; L3/memory owns the data.
    I,
    /// Read-only copies at the listed nodes.
    S { sharers: Vec<NodeId> },
    /// Exclusive or modified at `owner` (the directory does not distinguish
    /// E from M — an E holder may upgrade silently).
    EorM { owner: NodeId },
}

/// An in-flight transaction holding the line busy.
#[derive(Clone, Debug)]
struct BusyTxn {
    /// Waiting for the requestor's `Unblock`.
    need_unblock: bool,
    /// Waiting for the previous owner's `WBData` (FwdGetS path).
    need_wbdata: bool,
}

#[derive(Clone, Debug)]
struct DirLine {
    state: DirState,
    busy: Option<BusyTxn>,
    /// Requests queued behind the busy transaction: `(src, msg, arrived, flight)`.
    queued: VecDeque<(NodeId, CoherenceMsg, Time, Time)>,
}

impl Default for DirLine {
    fn default() -> Self {
        DirLine {
            state: DirState::I,
            busy: None,
            queued: VecDeque::new(),
        }
    }
}

/// Event counters for a directory shard.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirStats {
    /// GetS requests processed.
    pub gets: u64,
    /// GetM requests processed.
    pub getm: u64,
    /// Writebacks (PutM) processed.
    pub putm: u64,
    /// Invalidations sent.
    pub invs_sent: u64,
    /// Requests forwarded to an owner.
    pub fwds_sent: u64,
    /// L3 data hits.
    pub l3_hits: u64,
    /// L3 data misses (memory fetches).
    pub l3_misses: u64,
}

/// A directory + L3 data shard. See module docs.
#[derive(Clone)]
pub struct L3Shard {
    cfg: DirConfig,
    node: NodeId,
    dir: LineMap<DirLine>,
    /// Lines currently busy or with queued requests (kept incrementally so
    /// [`L3Shard::is_idle`] is O(1) instead of scanning the directory).
    blocked_lines: usize,
    /// Ground-truth data for lines homed here (memory image).
    backing: PagedMem<LineData>,
    /// Timing-only L3 data array: presence decides hit vs memory latency.
    l3_tags: CacheArray<()>,
    incoming: VecDeque<(NodeId, CoherenceMsg, Time, Time)>,
    /// Outgoing NoC link `(dst, msg)`: entries become injectable after the
    /// shard's L3/memory access latency.
    out: Link<(NodeId, CoherenceMsg)>,
    stats: DirStats,
    /// Trace handle (disabled unless the owning system enables tracing).
    tracer: Tracer,
}

impl L3Shard {
    /// Creates an empty shard at NoC node `node`.
    pub fn new(cfg: DirConfig, node: NodeId) -> Self {
        L3Shard {
            cfg,
            node,
            dir: LineMap::new(),
            blocked_lines: 0,
            backing: PagedMem::new(),
            l3_tags: CacheArray::new(cfg.sets, cfg.ways),
            incoming: VecDeque::new(),
            out: Link::pipe(),
            stats: DirStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// `(allocated, privately owned)` page counts of this shard's backing
    /// memory — the copy-on-write fork probe. Immediately after a fork
    /// both sides privately own zero pages; each COW fault adds one.
    pub fn backing_pages(&self) -> (usize, usize) {
        (self.backing.allocated_pages(), self.backing.owned_pages())
    }

    /// Installs the trace handle (events: MESI directory transitions and
    /// owner writebacks). Purely observational.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed trace handle. The sharded run loop reads this to
    /// retarget events into per-shard scratch rings during parallel
    /// passes, restoring the original afterwards.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The NoC node of this shard.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Event counters.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// Writes a line directly into the memory image (pre-simulation
    /// initialization only — bypasses all timing and coherence).
    pub fn poke_line(&mut self, line: LineAddr, data: LineData) {
        self.backing.write(line.0, data);
    }

    /// Reads a line from the memory image. Only coherent if the line is not
    /// dirty in a private cache (see `duet_system::System::peek` for the
    /// coherent variant).
    pub fn peek_line(&self, line: LineAddr) -> LineData {
        self.backing.read(line.0)
    }

    /// Pre-warms the L3 data array so a subsequent access is a hit.
    pub fn warm_l3(&mut self, line: LineAddr) {
        self.l3_tags.insert(line, [0; 16], ());
    }

    /// Pre-simulation warm-up: records `node` as a sharer of `line` (the
    /// caller must install the matching S copy in that node's cache).
    pub fn warm_sharer(&mut self, line: LineAddr, node: NodeId) {
        self.warm_l3(line);
        let e = self.dir.get_or_default(line.0);
        match &mut e.state {
            DirState::S { sharers } => {
                if !sharers.contains(&node) {
                    sharers.push(node);
                }
            }
            DirState::I => {
                e.state = DirState::S {
                    sharers: vec![node],
                }
            }
            DirState::EorM { .. } => panic!("warm_sharer on owned line"),
        }
    }

    /// Pre-simulation warm-up: records `node` as the owner of `line` (the
    /// caller must install the matching E/M copy in that node's cache).
    pub fn warm_owner(&mut self, line: LineAddr, node: NodeId) {
        self.warm_l3(line);
        let e = self.dir.get_or_default(line.0);
        assert!(
            matches!(e.state, DirState::I),
            "warm_owner on a non-idle line"
        );
        e.state = DirState::EorM { owner: node };
    }

    /// Current owner per the directory, if the line is in E/M.
    pub fn owner_of(&self, line: LineAddr) -> Option<NodeId> {
        match self.dir.get(line.0).map(|d| &d.state) {
            Some(DirState::EorM { owner }) => Some(*owner),
            _ => None,
        }
    }

    /// Sharers per the directory (possibly stale supersets — silent S
    /// evictions leave bits behind).
    pub fn sharers_of(&self, line: LineAddr) -> Vec<NodeId> {
        match self.dir.get(line.0).map(|d| &d.state) {
            Some(DirState::S { sharers }) => sharers.clone(),
            _ => Vec::new(),
        }
    }

    /// Deterministic (line-sorted) snapshot of every tracked directory
    /// entry: `(line, owner, sharers, busy)`. Verification aid for
    /// structural directory/cache agreement sweeps; idle `I` lines with no
    /// queued work are included only while the map still tracks them.
    pub fn dir_entries(&self) -> Vec<(LineAddr, Option<NodeId>, Vec<NodeId>, bool)> {
        let mut out = Vec::new();
        for key in self.dir.sorted_keys() {
            if let Some(e) = self.dir.get(key) {
                let (owner, sharers) = match &e.state {
                    DirState::I => (None, Vec::new()),
                    DirState::S { sharers } => (None, sharers.clone()),
                    DirState::EorM { owner } => (Some(*owner), Vec::new()),
                };
                out.push((LineAddr(key), owner, sharers, e.busy.is_some()));
            }
        }
        out
    }

    /// Whether any transaction is in flight or queued. O(1): blocked lines
    /// are counted incrementally in [`L3Shard::tick`].
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty() && self.out.is_empty() && self.blocked_lines == 0
    }

    /// True when ticking or draining this shard right now could do anything.
    ///
    /// Busy/queued directory lines are *passive*: they only progress when a
    /// response arrives in `incoming`, so when both queues are empty, `tick`
    /// and `pop_outgoing` are provable no-ops.
    pub fn is_active(&self) -> bool {
        !self.incoming.is_empty() || !self.out.is_empty()
    }

    /// The earliest time this shard can next do observable work, or `None`
    /// when it can only be woken by an arriving message.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if !self.incoming.is_empty() {
            return Some(now);
        }
        self.out.front_ready_at()
    }

    /// Delivers a coherence message from the NoC glue. `flight` is the
    /// time the message spent in the network (attributed to the NoC bucket
    /// of the transaction it starts).
    pub fn handle_msg(&mut self, now: Time, src: NodeId, msg: CoherenceMsg) {
        self.handle_msg_with_flight(now, src, msg, Time::ZERO);
    }

    /// [`handle_msg`](L3Shard::handle_msg) with explicit network flight time.
    pub fn handle_msg_with_flight(
        &mut self,
        now: Time,
        src: NodeId,
        msg: CoherenceMsg,
        flight: Time,
    ) {
        self.incoming.push_back((src, msg, now, flight));
    }

    /// Pops a ready outgoing message: `(dst, msg)`.
    pub fn pop_outgoing(&mut self, now: Time) -> Option<(NodeId, CoherenceMsg)> {
        self.out.pop(now)
    }

    fn delay(&self, cycles: u32) -> Time {
        self.cfg.clock.period().mul(u64::from(cycles))
    }

    fn send(&mut self, ready_at: Time, dst: NodeId, msg: CoherenceMsg) {
        self.out.push_at(ready_at, (dst, msg));
    }

    /// Reads line data for a response, charging L3-hit or memory latency.
    /// Returns `(data, extra_cycles)`.
    fn read_data(&mut self, line: LineAddr) -> (LineData, u32) {
        let data = self.backing.read(line.0);
        if self.l3_tags.get(line).is_some() {
            self.stats.l3_hits += 1;
            (data, self.cfg.l3_cycles)
        } else {
            self.stats.l3_misses += 1;
            self.l3_tags.insert(line, [0; 16], ());
            (data, self.cfg.mem_cycles)
        }
    }

    /// Advances the shard by one clock edge: processes at most one incoming
    /// message.
    pub fn tick(&mut self, now: Time) {
        let Some((src, msg, arrived, flight)) = self.incoming.pop_front() else {
            return;
        };
        // One message touches exactly one line (even queued-request release
        // recurses on the same line), so the blocked-line count can be
        // maintained with a single before/after check here.
        let key = msg.line().0;
        let was_blocked = self.line_blocked(key);
        self.dispatch(now, src, msg, arrived, flight);
        match (was_blocked, self.line_blocked(key)) {
            (false, true) => self.blocked_lines += 1,
            (true, false) => self.blocked_lines -= 1,
            _ => {}
        }
    }

    /// True when `key`'s directory line holds a busy transaction or queued
    /// requests (the per-line component of [`L3Shard::is_idle`]).
    fn line_blocked(&self, key: u64) -> bool {
        self.dir
            .get(key)
            .is_some_and(|d| d.busy.is_some() || !d.queued.is_empty())
    }

    fn dispatch(&mut self, now: Time, src: NodeId, msg: CoherenceMsg, arrived: Time, flight: Time) {
        let line = msg.line();
        let entry = self.dir.get_or_default(line.0);
        match &msg {
            CoherenceMsg::GetS { .. } | CoherenceMsg::GetM { .. } | CoherenceMsg::PutM { .. }
                if entry.busy.is_some() =>
            {
                entry.queued.push_back((src, msg, arrived, flight));
                return;
            }
            _ => {}
        }
        match msg {
            CoherenceMsg::GetS { line } => self.process_gets(now, src, line, arrived, flight),
            CoherenceMsg::GetM { line } => self.process_getm(now, src, line, arrived, flight),
            CoherenceMsg::PutM { line, data } => self.process_putm(now, src, line, data),
            CoherenceMsg::WBData { line, data } => {
                self.backing.write(line.0, data);
                self.tracer
                    .emit(now.as_ps(), EventKind::Writeback, line.0, 1);
                let e = self.dir.get_mut(line.0).expect("WBData without entry");
                if let Some(busy) = &mut e.busy {
                    busy.need_wbdata = false;
                }
                self.maybe_release(now, line);
            }
            CoherenceMsg::Unblock { line } => {
                let e = self.dir.get_mut(line.0).expect("Unblock without entry");
                if let Some(busy) = &mut e.busy {
                    busy.need_unblock = false;
                }
                self.maybe_release(now, line);
            }
            other => panic!("cache-bound message {other:?} delivered to directory"),
        }
    }

    fn process_gets(
        &mut self,
        now: Time,
        src: NodeId,
        line: LineAddr,
        arrived: Time,
        flight: Time,
    ) {
        self.stats.gets += 1;
        let mut bd = LatencyBreakdown::new();
        bd.noc += flight;
        // Time spent queued behind a busy transaction is home processing.
        bd.cache_fast += now.saturating_sub(arrived);
        let state = self.dir.get(line.0).map(|d| d.state.clone()).unwrap();
        match state {
            DirState::I => {
                let (data, extra) = self.read_data(line);
                let total = self.cfg.proc_cycles + extra;
                bd.cache_fast += self.delay(total);
                self.send(
                    now + self.delay(total),
                    src,
                    CoherenceMsg::Data {
                        line,
                        data,
                        grant: Grant::E,
                        acks: 0,
                        breakdown: bd,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::I, mesi::EM, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::EorM { owner: src };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: false,
                });
            }
            DirState::S { mut sharers } => {
                let (data, extra) = self.read_data(line);
                let total = self.cfg.proc_cycles + extra;
                bd.cache_fast += self.delay(total);
                self.send(
                    now + self.delay(total),
                    src,
                    CoherenceMsg::Data {
                        line,
                        data,
                        grant: Grant::S,
                        acks: 0,
                        breakdown: bd,
                    },
                );
                if !sharers.contains(&src) {
                    sharers.push(src);
                }
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::S, mesi::S, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::S { sharers };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: false,
                });
            }
            DirState::EorM { owner } => {
                self.stats.fwds_sent += 1;
                bd.cache_fast += self.delay(self.cfg.proc_cycles);
                self.send(
                    now + self.delay(self.cfg.proc_cycles),
                    owner,
                    CoherenceMsg::FwdGetS {
                        line,
                        requestor: src,
                        breakdown: bd,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::EM, mesi::S, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::S {
                    sharers: vec![owner, src],
                };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: true,
                });
            }
        }
    }

    fn process_getm(
        &mut self,
        now: Time,
        src: NodeId,
        line: LineAddr,
        arrived: Time,
        flight: Time,
    ) {
        self.stats.getm += 1;
        let mut bd = LatencyBreakdown::new();
        bd.noc += flight;
        bd.cache_fast += now.saturating_sub(arrived);
        let state = self.dir.get(line.0).map(|d| d.state.clone()).unwrap();
        match state {
            DirState::I => {
                let (data, extra) = self.read_data(line);
                let total = self.cfg.proc_cycles + extra;
                bd.cache_fast += self.delay(total);
                self.send(
                    now + self.delay(total),
                    src,
                    CoherenceMsg::Data {
                        line,
                        data,
                        grant: Grant::M,
                        acks: 0,
                        breakdown: bd,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::I, mesi::EM, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::EorM { owner: src };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: false,
                });
            }
            DirState::S { sharers } => {
                let targets: Vec<NodeId> = sharers.iter().copied().filter(|&s| s != src).collect();
                let (data, extra) = self.read_data(line);
                let total = self.cfg.proc_cycles + extra;
                bd.cache_fast += self.delay(total);
                for &t in &targets {
                    self.stats.invs_sent += 1;
                    self.send(
                        now + self.delay(self.cfg.proc_cycles),
                        t,
                        CoherenceMsg::Inv {
                            line,
                            requestor: src,
                        },
                    );
                }
                self.send(
                    now + self.delay(total),
                    src,
                    CoherenceMsg::Data {
                        line,
                        data,
                        grant: Grant::M,
                        acks: targets.len() as u32,
                        breakdown: bd,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::S, mesi::EM, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::EorM { owner: src };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: false,
                });
            }
            DirState::EorM { owner } => {
                debug_assert_ne!(owner, src, "owner re-requesting M");
                self.stats.fwds_sent += 1;
                bd.cache_fast += self.delay(self.cfg.proc_cycles);
                self.send(
                    now + self.delay(self.cfg.proc_cycles),
                    owner,
                    CoherenceMsg::FwdGetM {
                        line,
                        requestor: src,
                        breakdown: bd,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MesiTransition,
                    line.0,
                    pack_mesi(mesi::EM, mesi::EM, src),
                );
                let e = self.dir.get_mut(line.0).unwrap();
                e.state = DirState::EorM { owner: src };
                e.busy = Some(BusyTxn {
                    need_unblock: true,
                    need_wbdata: false,
                });
            }
        }
    }

    fn process_putm(&mut self, now: Time, src: NodeId, line: LineAddr, data: LineData) {
        self.stats.putm += 1;
        let e = self.dir.get_mut(line.0).unwrap();
        let from_owner = matches!(&e.state, DirState::EorM { owner } if *owner == src);
        if from_owner {
            e.state = DirState::I;
            self.backing.write(line.0, data);
            self.l3_tags.insert(line, [0; 16], ());
            self.tracer.emit(
                now.as_ps(),
                EventKind::MesiTransition,
                line.0,
                pack_mesi(mesi::EM, mesi::I, src),
            );
        }
        // Stale PutM (the sender was downgraded/invalidated while the PutM
        // was in flight): acknowledge but ignore the data.
        self.send(
            now + self.delay(self.cfg.proc_cycles),
            src,
            CoherenceMsg::PutAck { line },
        );
    }

    /// Releases the busy state when the transaction's obligations are met,
    /// then processes queued requests.
    fn maybe_release(&mut self, now: Time, line: LineAddr) {
        let e = self.dir.get_mut(line.0).unwrap();
        let done = e
            .busy
            .as_ref()
            .is_some_and(|b| !b.need_unblock && !b.need_wbdata);
        if !done {
            return;
        }
        e.busy = None;
        if let Some((src, msg, arrived, flight)) = e.queued.pop_front() {
            self.dispatch(now, src, msg, arrived, flight);
        }
    }
}

mod snap_impls {
    use std::collections::VecDeque;

    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{BusyTxn, DirLine, DirState, DirStats, L3Shard};

    impl Pack for DirState {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                DirState::I => w.u8(0),
                DirState::S { sharers } => {
                    w.u8(1);
                    sharers.pack(w);
                }
                DirState::EorM { owner } => {
                    w.u8(2);
                    w.len64(*owner);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => DirState::I,
                1 => DirState::S {
                    sharers: Vec::unpack(r)?,
                },
                2 => DirState::EorM { owner: r.len64()? },
                _ => return Err(SnapError::Corrupt("invalid DirState discriminant")),
            })
        }
    }

    impl Pack for BusyTxn {
        fn pack(&self, w: &mut SnapWriter) {
            self.need_unblock.pack(w);
            self.need_wbdata.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(BusyTxn {
                need_unblock: bool::unpack(r)?,
                need_wbdata: bool::unpack(r)?,
            })
        }
    }

    impl Pack for DirLine {
        fn pack(&self, w: &mut SnapWriter) {
            self.state.pack(w);
            self.busy.pack(w);
            self.queued.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(DirLine {
                state: DirState::unpack(r)?,
                busy: Option::unpack(r)?,
                queued: VecDeque::unpack(r)?,
            })
        }
    }

    impl Pack for DirStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.gets);
            w.u64(self.getm);
            w.u64(self.putm);
            w.u64(self.invs_sent);
            w.u64(self.fwds_sent);
            w.u64(self.l3_hits);
            w.u64(self.l3_misses);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(DirStats {
                gets: r.u64()?,
                getm: r.u64()?,
                putm: r.u64()?,
                invs_sent: r.u64()?,
                fwds_sent: r.u64()?,
                l3_hits: r.u64()?,
                l3_misses: r.u64()?,
            })
        }
    }

    impl Snap for L3Shard {
        /// `blocked_lines` is derived (recomputed on load); the tracer
        /// handle is re-installed by the owning system.
        fn save(&self, w: &mut SnapWriter) {
            self.dir.pack(w);
            self.backing.save(w);
            self.l3_tags.save(w);
            self.incoming.pack(w);
            self.out.save(w);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.dir = Pack::unpack(r)?;
            self.backing.load(r)?;
            self.l3_tags.load(r)?;
            self.incoming = Pack::unpack(r)?;
            self.out.load(r)?;
            self.stats = DirStats::unpack(r)?;
            self.blocked_lines = self
                .dir
                .sorted_keys()
                .into_iter()
                .filter(|&k| self.line_blocked(k))
                .count();
            Ok(())
        }
    }
}

impl Component for L3Shard {
    fn name(&self) -> String {
        format!("l3@n{}", self.node)
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Fast
    }

    fn tick(&mut self, now: Time) {
        L3Shard::tick(self, now);
    }

    fn next_event_time(&self, now: Time) -> Option<Time> {
        L3Shard::next_event_time(self, now)
    }

    fn is_active(&self, _now: Time) -> bool {
        L3Shard::is_active(self)
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        visit("noc_out", self.out.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> L3Shard {
        L3Shard::new(DirConfig::dolly_l3(Clock::ghz1()), 0)
    }

    fn t(c: u64) -> Time {
        Time::from_ps(1000 * c)
    }

    fn drain(s: &mut L3Shard, until: u64) -> Vec<(NodeId, CoherenceMsg)> {
        let mut out = Vec::new();
        for c in 0..until {
            s.tick(t(c));
            while let Some(m) = s.pop_outgoing(t(until)) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn gets_on_idle_line_grants_exclusive() {
        let mut s = shard();
        s.poke_line(LineAddr(5), [9u8; 16]);
        s.handle_msg(t(1), 2, CoherenceMsg::GetS { line: LineAddr(5) });
        let out = drain(&mut s, 200);
        assert_eq!(out.len(), 1);
        let (dst, msg) = &out[0];
        assert_eq!(*dst, 2);
        match msg {
            CoherenceMsg::Data {
                data, grant, acks, ..
            } => {
                assert_eq!(data[0], 9);
                assert_eq!(*grant, Grant::E);
                assert_eq!(*acks, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.owner_of(LineAddr(5)), Some(2));
    }

    #[test]
    fn second_gets_forwards_to_owner() {
        let mut s = shard();
        s.handle_msg(t(1), 2, CoherenceMsg::GetS { line: LineAddr(5) });
        let _ = drain(&mut s, 200);
        s.handle_msg(t(300), 2, CoherenceMsg::Unblock { line: LineAddr(5) });
        let _ = drain(&mut s, 301);
        // Node 3 reads the same line.
        s.handle_msg(t(302), 3, CoherenceMsg::GetS { line: LineAddr(5) });
        let mut out = Vec::new();
        for c in 302..320 {
            s.tick(t(c));
            while let Some(m) = s.pop_outgoing(t(400)) {
                out.push(m);
            }
        }
        assert_eq!(out.len(), 1);
        let (dst, msg) = &out[0];
        assert_eq!(*dst, 2, "forward goes to the owner");
        assert!(matches!(msg, CoherenceMsg::FwdGetS { requestor: 3, .. }));
        let mut sh = s.sharers_of(LineAddr(5));
        sh.sort_unstable();
        assert_eq!(sh, vec![2, 3]);
    }

    #[test]
    fn getm_on_shared_line_invalidates_sharers() {
        let mut s = shard();
        // Build S state at nodes 2 and 3.
        for (time, node) in [(1u64, 2), (50, 3)] {
            s.handle_msg(t(time), node, CoherenceMsg::GetS { line: LineAddr(5) });
            let _ = drain(&mut s, time + 150);
            s.handle_msg(
                t(time + 160),
                node,
                CoherenceMsg::Unblock { line: LineAddr(5) },
            );
            let _ = drain(&mut s, time + 161);
        }
        // node 2's GetS made it owner (E); node 3's GetS triggered FwdGetS;
        // complete that txn's WBData.
        s.handle_msg(
            t(250),
            2,
            CoherenceMsg::WBData {
                line: LineAddr(5),
                data: [0; 16],
            },
        );
        let _ = drain(&mut s, 251);
        // Now node 4 wants M.
        s.handle_msg(t(260), 4, CoherenceMsg::GetM { line: LineAddr(5) });
        let out = drain(&mut s, 460);
        let invs: Vec<NodeId> = out
            .iter()
            .filter_map(|(d, m)| matches!(m, CoherenceMsg::Inv { .. }).then_some(*d))
            .collect();
        let datas: Vec<u32> = out
            .iter()
            .filter_map(|(_, m)| match m {
                CoherenceMsg::Data { acks, .. } => Some(*acks),
                _ => None,
            })
            .collect();
        assert_eq!(invs.len(), 2, "both sharers invalidated: {out:?}");
        assert!(invs.contains(&2) && invs.contains(&3));
        assert_eq!(datas, vec![2], "requestor told to expect 2 acks");
        assert_eq!(s.owner_of(LineAddr(5)), Some(4));
    }

    #[test]
    fn busy_line_queues_requests() {
        let mut s = shard();
        s.handle_msg(t(1), 2, CoherenceMsg::GetS { line: LineAddr(5) });
        let _ = drain(&mut s, 200);
        // Second request while busy (no Unblock yet).
        s.handle_msg(t(210), 3, CoherenceMsg::GetS { line: LineAddr(5) });
        let out = drain(&mut s, 400);
        assert!(out.is_empty(), "queued behind busy transaction");
        // Unblock releases and processes the queued GetS (-> FwdGetS to 2).
        s.handle_msg(t(401), 2, CoherenceMsg::Unblock { line: LineAddr(5) });
        let out = drain(&mut s, 600);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].1,
            CoherenceMsg::FwdGetS { requestor: 3, .. }
        ));
    }

    #[test]
    fn putm_from_owner_writes_back() {
        let mut s = shard();
        s.handle_msg(t(1), 2, CoherenceMsg::GetM { line: LineAddr(7) });
        let _ = drain(&mut s, 200);
        s.handle_msg(t(201), 2, CoherenceMsg::Unblock { line: LineAddr(7) });
        let _ = drain(&mut s, 202);
        s.handle_msg(
            t(210),
            2,
            CoherenceMsg::PutM {
                line: LineAddr(7),
                data: [3u8; 16],
            },
        );
        let out = drain(&mut s, 250);
        assert!(matches!(out[0].1, CoherenceMsg::PutAck { .. }));
        assert_eq!(s.peek_line(LineAddr(7))[0], 3);
        assert_eq!(s.owner_of(LineAddr(7)), None);
    }

    #[test]
    fn stale_putm_acked_but_ignored() {
        let mut s = shard();
        // Node 2 owns the line.
        s.handle_msg(t(1), 2, CoherenceMsg::GetM { line: LineAddr(7) });
        let _ = drain(&mut s, 200);
        s.handle_msg(t(201), 2, CoherenceMsg::Unblock { line: LineAddr(7) });
        let _ = drain(&mut s, 202);
        // Ownership moves to 3.
        s.handle_msg(t(210), 3, CoherenceMsg::GetM { line: LineAddr(7) });
        let _ = drain(&mut s, 260);
        s.handle_msg(t(261), 3, CoherenceMsg::Unblock { line: LineAddr(7) });
        let _ = drain(&mut s, 262);
        // Stale PutM from 2 (crossed the FwdGetM).
        s.poke_line(LineAddr(7), [1u8; 16]);
        s.handle_msg(
            t(270),
            2,
            CoherenceMsg::PutM {
                line: LineAddr(7),
                data: [0xEEu8; 16],
            },
        );
        let out = drain(&mut s, 300);
        assert!(matches!(out[0].1, CoherenceMsg::PutAck { .. }));
        assert_eq!(s.peek_line(LineAddr(7))[0], 1, "stale data ignored");
        assert_eq!(s.owner_of(LineAddr(7)), Some(3), "ownership unchanged");
    }

    #[test]
    fn l3_miss_charges_memory_latency() {
        let mut s = shard();
        s.handle_msg(t(1), 2, CoherenceMsg::GetS { line: LineAddr(11) });
        s.tick(t(1));
        // First access misses L3: response not ready before mem_cycles.
        assert!(s.pop_outgoing(t(50)).is_none());
        assert!(s.pop_outgoing(t(1 + 95)).is_some());
        assert_eq!(s.stats().l3_misses, 1);
        // Complete and re-request from another node after PutM... simpler:
        // warm hit check via second line.
        let mut s2 = shard();
        s2.warm_l3(LineAddr(12));
        s2.handle_msg(t(1), 2, CoherenceMsg::GetS { line: LineAddr(12) });
        s2.tick(t(1));
        assert!(s2.pop_outgoing(t(1 + 12)).is_some(), "L3 hit is fast");
        assert_eq!(s2.stats().l3_hits, 1);
    }

    #[test]
    fn unknown_line_reads_zero() {
        let s = shard();
        assert_eq!(s.peek_line(LineAddr(0xFFFF)), [0u8; 16]);
    }
}
