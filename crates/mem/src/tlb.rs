//! Page tables and the per-Memory-Hub TLB (Sec. II-D of the paper).
//!
//! Application-specific fine-grained accelerators are restricted to virtual
//! addresses; every accelerator-initiated access is translated by the
//! Memory Hub's TLB "while being speculatively processed by the Proxy
//! Cache". On a miss, the TLB raises an interrupt and the kernel refills it
//! via MMIOs (modelled in `duet-system` by an OS-stub latency).

use duet_sim::LineMap;

use crate::types::Addr;

/// Page size: 4 KB.
pub const PAGE_BYTES: u64 = 4096;

/// log2 of [`PAGE_BYTES`].
pub const PAGE_OFFSET_BITS: u32 = 12;

/// A virtual page number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical page number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppn(pub u64);

impl Vpn {
    /// The virtual page containing `va`.
    pub fn containing(va: Addr) -> Self {
        Vpn(va >> PAGE_OFFSET_BITS)
    }
}

/// Access permissions of a mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagePerms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl PagePerms {
    /// Read/write permissions.
    pub fn rw() -> Self {
        PagePerms {
            read: true,
            write: true,
        }
    }

    /// Read-only permissions.
    pub fn ro() -> Self {
        PagePerms {
            read: true,
            write: false,
        }
    }
}

/// A software-managed page table (the kernel's view; the TLB caches it).
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    map: LineMap<(Ppn, PagePerms)>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps one virtual page.
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn, perms: PagePerms) {
        self.map.insert(vpn.0, (ppn, perms));
    }

    /// Identity-maps a virtual address range with the given permissions.
    pub fn map_range_identity(&mut self, base: Addr, len: u64, perms: PagePerms) {
        let first = base >> PAGE_OFFSET_BITS;
        let last = (base + len.max(1) - 1) >> PAGE_OFFSET_BITS;
        for p in first..=last {
            self.map(Vpn(p), Ppn(p), perms);
        }
    }

    /// Looks up a mapping.
    pub fn lookup(&self, vpn: Vpn) -> Option<(Ppn, PagePerms)> {
        self.map.get(vpn.0).copied()
    }

    /// Removes a mapping.
    pub fn unmap(&mut self, vpn: Vpn) -> bool {
        self.map.remove(vpn.0).is_some()
    }
}

/// Result of a TLB translation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Translation {
    /// Hit: translated physical address.
    Hit(Addr),
    /// Miss: the hub must raise a page-fault interrupt.
    Miss,
    /// Mapped but lacking permission (e.g. store to a read-only page): the
    /// access is invalid and the accelerator should be killed.
    Fault,
}

/// Event counters for a TLB.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Translation misses.
    pub misses: u64,
    /// Permission faults.
    pub faults: u64,
}

/// A small fully-associative, LRU TLB.
///
/// # Example
///
/// ```
/// use duet_mem::tlb::{Tlb, Vpn, Ppn, PagePerms, Translation};
/// let mut tlb = Tlb::new(8);
/// tlb.insert(Vpn(0x10), Ppn(0x99), PagePerms::rw());
/// assert_eq!(tlb.translate(0x10_123, false), Translation::Hit(0x99_123));
/// assert_eq!(tlb.translate(0x20_000, false), Translation::Miss);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<(Vpn, Ppn, PagePerms, u64)>,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Inserts a mapping (kernel MMIO refill), evicting LRU if full.
    pub fn insert(&mut self, vpn: Vpn, ppn: Ppn, perms: PagePerms) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            *e = (vpn, ppn, perms, self.tick);
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .unwrap();
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, ppn, perms, self.tick));
    }

    /// Translates a virtual address; `is_write` selects the permission
    /// check.
    pub fn translate(&mut self, va: Addr, is_write: bool) -> Translation {
        self.tick += 1;
        let vpn = Vpn::containing(va);
        match self.entries.iter_mut().find(|e| e.0 == vpn) {
            Some(e) => {
                e.3 = self.tick;
                let perms = e.2;
                if (is_write && !perms.write) || (!is_write && !perms.read) {
                    self.stats.faults += 1;
                    Translation::Fault
                } else {
                    self.stats.hits += 1;
                    Translation::Hit((e.1 .0 << PAGE_OFFSET_BITS) | (va & (PAGE_BYTES - 1)))
                }
            }
            None => {
                self.stats.misses += 1;
                Translation::Miss
            }
        }
    }

    /// Removes one mapping.
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.entries.retain(|e| e.0 != vpn);
    }

    /// Removes every mapping.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

mod snap_impls {
    use duet_sim::{LineMap, Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{PagePerms, PageTable, Ppn, Tlb, TlbStats, Vpn};

    impl Pack for Vpn {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.0);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Vpn(r.u64()?))
        }
    }

    impl Pack for Ppn {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.0);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Ppn(r.u64()?))
        }
    }

    impl Pack for PagePerms {
        fn pack(&self, w: &mut SnapWriter) {
            self.read.pack(w);
            self.write.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(PagePerms {
                read: bool::unpack(r)?,
                write: bool::unpack(r)?,
            })
        }
    }

    impl Pack for TlbStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.hits);
            w.u64(self.misses);
            w.u64(self.faults);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(TlbStats {
                hits: r.u64()?,
                misses: r.u64()?,
                faults: r.u64()?,
            })
        }
    }

    impl Pack for PageTable {
        fn pack(&self, w: &mut SnapWriter) {
            self.map.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(PageTable {
                map: LineMap::unpack(r)?,
            })
        }
    }

    impl Snap for Tlb {
        fn save(&self, w: &mut SnapWriter) {
            w.len64(self.capacity);
            // Entry order is observable: `swap_remove` on eviction makes
            // future victim choices depend on slot positions.
            self.entries.pack(w);
            w.u64(self.tick);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            if r.len64()? != self.capacity {
                return Err(SnapError::Corrupt("tlb capacity mismatch"));
            }
            let entries: Vec<(Vpn, Ppn, PagePerms, u64)> = Vec::unpack(r)?;
            if entries.len() > self.capacity {
                return Err(SnapError::Corrupt("tlb entry count exceeds capacity"));
            }
            self.entries = entries;
            self.tick = r.u64()?;
            self.stats = TlbStats::unpack(r)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_identity_range() {
        let mut pt = PageTable::new();
        pt.map_range_identity(0x1000, 0x3000, PagePerms::rw());
        assert_eq!(pt.lookup(Vpn(1)), Some((Ppn(1), PagePerms::rw())));
        assert_eq!(pt.lookup(Vpn(3)), Some((Ppn(3), PagePerms::rw())));
        assert_eq!(pt.lookup(Vpn(4)), None);
        assert!(pt.unmap(Vpn(1)));
        assert_eq!(pt.lookup(Vpn(1)), None);
    }

    #[test]
    fn tlb_hit_translates_offset() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn(2), Ppn(7), PagePerms::rw());
        assert_eq!(tlb.translate(0x2ABC, false), Translation::Hit(0x7ABC));
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn tlb_miss_and_refill() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.translate(0x5000, false), Translation::Miss);
        tlb.insert(Vpn(5), Ppn(9), PagePerms::rw());
        assert_eq!(tlb.translate(0x5000, false), Translation::Hit(0x9000));
    }

    #[test]
    fn tlb_write_to_readonly_faults() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn(1), Ppn(1), PagePerms::ro());
        assert_eq!(tlb.translate(0x1000, true), Translation::Fault);
        assert_eq!(tlb.translate(0x1000, false), Translation::Hit(0x1000));
        assert_eq!(tlb.stats().faults, 1);
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(Vpn(1), Ppn(1), PagePerms::rw());
        tlb.insert(Vpn(2), Ppn(2), PagePerms::rw());
        // Touch 1 so 2 is LRU.
        let _ = tlb.translate(0x1000, false);
        tlb.insert(Vpn(3), Ppn(3), PagePerms::rw());
        assert_eq!(tlb.translate(0x2000, false), Translation::Miss);
        assert!(matches!(tlb.translate(0x1000, false), Translation::Hit(_)));
    }

    #[test]
    fn tlb_invalidate_and_flush() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn(1), Ppn(1), PagePerms::rw());
        tlb.insert(Vpn(2), Ppn(2), PagePerms::rw());
        tlb.invalidate(Vpn(1));
        assert_eq!(tlb.translate(0x1000, false), Translation::Miss);
        tlb.flush();
        assert_eq!(tlb.translate(0x2000, false), Translation::Miss);
    }
}
