//! The private, write-back, MESI-coherent cache.
//!
//! This component plays three roles in the workspace:
//!
//! 1. the per-tile **private L2** behind each processor's L1 (the P-Mesh L2
//!    of Dolly, Sec. IV),
//! 2. the **Proxy Cache** inside each Memory Hub — Dolly "implements the
//!    Proxy Cache by adding a *coherent memory interface* to the
//!    *unmodified* P-Mesh L2 cache", which is exactly what `duet-core` does
//!    with this type,
//! 3. the **slow cache** baseline of Sec. V-C, by instantiating it on the
//!    eFPGA clock (`slow_domain = true`) so all of its processing time is
//!    paid in slow cycles and attributed to the slow-domain bucket.
//!
//! The protocol is the blocking-directory MESI described in [`crate::msg`].

use std::collections::VecDeque;

use duet_noc::NodeId;
use duet_sim::{
    merge_min, Clock, ClockDomain, Component, LatencyBreakdown, LineMap, Link, LinkReport, Time,
};
use duet_trace::{EventKind, Tracer};

use crate::array::CacheArray;
use crate::msg::{CoherenceMsg, Grant};
use crate::types::{
    apply_amo, read_scalar, write_scalar, LineAddr, LineData, MemOp, MemReq, MemResp,
};

/// Maps a line address to its home directory shard's node id.
#[derive(Clone, Debug)]
pub struct HomeMap {
    homes: Vec<NodeId>,
}

impl HomeMap {
    /// Creates a home map distributing lines round-robin over `homes`.
    ///
    /// # Panics
    ///
    /// Panics if `homes` is empty.
    pub fn new(homes: Vec<NodeId>) -> Self {
        assert!(!homes.is_empty(), "at least one home node required");
        HomeMap { homes }
    }

    /// The home node of `line`.
    pub fn home_of(&self, line: LineAddr) -> NodeId {
        self.homes[(line.0 as usize) % self.homes.len()]
    }

    /// All home nodes.
    pub fn homes(&self) -> &[NodeId] {
        &self.homes
    }
}

/// Configuration of a private cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Maximum outstanding misses. This is the "number of concurrent,
    /// in-flight memory requests" that bounds cache-based bandwidth in
    /// Fig. 10.
    pub mshrs: usize,
    /// CPU-side hit latency, in cycles of `clock`.
    pub hit_cycles: u32,
    /// Tag-check / message-processing latency, in cycles of `clock`.
    pub proc_cycles: u32,
    /// Incoming CPU-side request queue capacity.
    pub req_queue_cap: usize,
    /// The clock this cache runs on.
    pub clock: Clock,
    /// When true, processing time is attributed to the slow-domain bucket
    /// of [`LatencyBreakdown`] (used for the soft-cache and FPSoC models).
    pub slow_domain: bool,
}

impl CacheConfig {
    /// Dolly-like private L2: 8 KB, 4-way, 16 B lines (128 sets), 4 MSHRs,
    /// 4-cycle hits and a 2-cycle tag/message pipeline on the given clock —
    /// P-Mesh-class latencies. The same pipeline ticking on the eFPGA clock
    /// is what makes the soft-only "slow cache" organization of Fig. 5a so
    /// expensive.
    pub fn dolly_l2(clock: Clock) -> Self {
        CacheConfig {
            sets: 128,
            ways: 4,
            mshrs: 4,
            hit_cycles: 5,
            proc_cycles: 3,
            req_queue_cap: 8,
            clock,
            slow_domain: false,
        }
    }

    /// Marks this cache as running in the slow (eFPGA) clock domain.
    pub fn in_slow_domain(mut self) -> Self {
        self.slow_domain = true;
        self
    }

    /// Sets the MSHR count.
    pub fn with_mshrs(mut self, mshrs: usize) -> Self {
        self.mshrs = mshrs;
        self
    }
}

/// Stable MESI state of a resident line (I = not resident).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    /// Shared, read-only.
    S,
    /// Exclusive, clean.
    E,
    /// Modified, dirty.
    M,
}

/// Why a line left the cache (reported for L1 back-invalidation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvalReason {
    /// Invalidation from the coherence protocol.
    Coherence,
    /// Capacity eviction.
    Eviction,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WbState {
    /// `PutM` sent, waiting for `PutAck`.
    MiA,
    /// Downgraded by `FwdGetS` while writing back; stale `PutM` in flight.
    SiA,
    /// Invalidated by `FwdGetM` while writing back; stale `PutM` in flight.
    IiA,
}

#[derive(Clone, Debug)]
struct WbEntry {
    state: WbState,
    data: LineData,
}

#[derive(Clone, Debug)]
struct Mshr {
    /// True when this miss requires M (store/AMO); false for loads.
    want_m: bool,
    /// True when the requestor held the line in S when the GetM was issued.
    was_s: bool,
    /// Fill data and granted state, once received.
    data: Option<(LineData, Grant)>,
    /// InvAcks outstanding: `needed` is learned from the Data message.
    acks_needed: Option<u32>,
    acks_got: u32,
    /// An Inv arrived while the fill was pending (GetS only): serve the
    /// waiting loads once and do not install the line.
    fill_invalidated: bool,
    /// CPU-side requests waiting on this line.
    pending: VecDeque<MemReq>,
    /// Attribution for the whole transaction.
    breakdown: LatencyBreakdown,
}

/// Event counters for a private cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// CPU-side hits.
    pub hits: u64,
    /// CPU-side misses (MSHR allocations).
    pub misses: u64,
    /// Requests folded into an existing MSHR.
    pub mshr_merges: u64,
    /// Lines written back (PutM sent).
    pub writebacks: u64,
    /// Invalidations received.
    pub invs: u64,
    /// Downgrades received (FwdGetS).
    pub downgrades: u64,
    /// Ownership transfers away (FwdGetM).
    pub fwd_getm: u64,
}

/// The private MESI cache. See module docs.
#[derive(Clone)]
pub struct PrivCache {
    cfg: CacheConfig,
    node: NodeId,
    home: HomeMap,
    array: CacheArray<LineState>,
    mshrs: LineMap<Mshr>,
    wb: LineMap<WbEntry>,
    req_in: VecDeque<MemReq>,
    /// Incoming coherence messages: the cache pipeline processes one per
    /// cycle (this serialization is what makes a slow-domain cache slow).
    noc_in: VecDeque<(NodeId, CoherenceMsg, Time, Time)>,
    /// CPU-side response link: entries carry the hit/miss pipeline delay as
    /// their ready time.
    resp_out: Link<MemResp>,
    /// Outgoing NoC link `(dst, msg)`: entries become injectable after the
    /// cache's local processing delay.
    noc_out: Link<(NodeId, CoherenceMsg)>,
    back_inval: VecDeque<(LineAddr, InvalReason)>,
    stats: CacheStats,
    /// Trace handle (disabled unless the owning system enables tracing).
    tracer: Tracer,
}

impl PrivCache {
    /// Creates an empty cache attached to NoC node `node`.
    pub fn new(cfg: CacheConfig, node: NodeId, home: HomeMap) -> Self {
        let array = CacheArray::new(cfg.sets, cfg.ways);
        PrivCache {
            cfg,
            node,
            home,
            array,
            mshrs: LineMap::new(),
            wb: LineMap::new(),
            req_in: VecDeque::new(),
            noc_in: VecDeque::new(),
            resp_out: Link::pipe(),
            noc_out: Link::pipe(),
            back_inval: VecDeque::new(),
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the trace handle (events: MSHR allocate/retire, evictions'
    /// writebacks). Purely observational.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed trace handle. The sharded run loop reads this to
    /// retarget events into per-shard scratch rings during parallel
    /// passes, restoring the original afterwards.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The NoC node this cache sits on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether the CPU-side request queue can accept another request.
    pub fn can_accept(&self) -> bool {
        self.req_in.len() < self.cfg.req_queue_cap
    }

    /// Enqueues a CPU-side request.
    ///
    /// # Panics
    ///
    /// Panics if the request queue is full (check
    /// [`can_accept`](PrivCache::can_accept) first) or the access is not
    /// naturally aligned / crosses a line boundary.
    pub fn cpu_request(&mut self, req: MemReq) {
        assert!(self.can_accept(), "cpu request queue overflow");
        let width = match req.op {
            MemOp::Load(w) | MemOp::Store(w) | MemOp::Amo(_, w) => w.bytes() as u64,
            MemOp::LoadLine | MemOp::IFetch => 1,
        };
        assert_eq!(req.addr % width, 0, "unaligned access");
        self.req_in.push_back(req);
    }

    /// Pops a ready CPU-side response.
    pub fn pop_cpu_resp(&mut self, now: Time) -> Option<MemResp> {
        self.resp_out.pop(now)
    }

    /// Pops a ready outgoing NoC message: `(dst, msg)`.
    pub fn pop_outgoing(&mut self, now: Time) -> Option<(NodeId, CoherenceMsg)> {
        self.noc_out.pop(now)
    }

    /// Drains the lines the L1 (or soft cache) above must invalidate.
    pub fn take_back_invalidations(&mut self) -> Vec<(LineAddr, InvalReason)> {
        self.back_inval.drain(..).collect()
    }

    /// Number of MSHRs currently in use.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// True when the cache has no buffered work (used by quiesce loops).
    pub fn is_idle(&self) -> bool {
        self.req_in.is_empty()
            && self.noc_in.is_empty()
            && self.resp_out.is_empty()
            && self.noc_out.is_empty()
            && self.mshrs.is_empty()
            && self.wb.is_empty()
    }

    /// True when ticking or draining this cache right now could do anything.
    ///
    /// MSHRs and pending writebacks alone are *passive*: they only progress
    /// when a NoC message arrives (which lands in `noc_in` and re-activates
    /// the cache), so they are deliberately excluded. When this returns
    /// `false`, `tick`, `pop_outgoing`, `take_back_invalidations`, and
    /// `pop_cpu_resp` are all provable no-ops.
    pub fn is_active(&self) -> bool {
        !self.req_in.is_empty()
            || !self.noc_in.is_empty()
            || !self.resp_out.is_empty()
            || !self.noc_out.is_empty()
            || !self.back_inval.is_empty()
    }

    /// The earliest time this cache can next do observable work, or `None`
    /// when it can only be woken externally (empty queues, or only passive
    /// MSHR/writeback state waiting on the NoC).
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if !self.req_in.is_empty() || !self.noc_in.is_empty() || !self.back_inval.is_empty() {
            return Some(now);
        }
        merge_min(
            self.resp_out.front_ready_at(),
            self.noc_out.front_ready_at(),
        )
    }

    /// Looks up a line's stable state (test/debug aid).
    pub fn line_state(&self, line: LineAddr) -> Option<LineState> {
        self.array.peek(line).map(|(m, _)| *m)
    }

    /// Reads resident line data without timing effects (verification aid).
    pub fn peek_line(&self, line: LineAddr) -> Option<LineData> {
        self.array.peek(line).map(|(_, d)| *d)
    }

    /// Directly installs a line (cache warm-up before measurement, matching
    /// the paper's warm-start baselines).
    pub fn warm_insert(&mut self, line: LineAddr, data: LineData, state: LineState) {
        self.array.insert(line, data, state);
    }

    fn local_bucket<'a>(&self, b: &'a mut LatencyBreakdown) -> &'a mut Time {
        if self.cfg.slow_domain {
            &mut b.cache_slow
        } else {
            &mut b.cache_fast
        }
    }

    fn delay(&self, cycles: u32) -> Time {
        self.cfg.clock.period().mul(u64::from(cycles))
    }

    fn send(&mut self, now: Time, dst: NodeId, msg: CoherenceMsg, extra_cycles: u32) {
        self.noc_out
            .push_at(now + self.delay(extra_cycles), (dst, msg));
    }

    /// Queues a coherence message delivered by the NoC glue. `flight` is
    /// the time the message spent in the network (and any CDC FIFOs). The
    /// cache pipeline processes one message per clock edge.
    pub fn handle_msg(&mut self, now: Time, src: NodeId, msg: CoherenceMsg, flight: Time) {
        self.noc_in.push_back((src, msg, now, flight));
    }

    /// Processes one queued coherence message.
    fn process_msg(&mut self, now: Time, _src: NodeId, msg: CoherenceMsg, flight: Time) {
        match msg {
            CoherenceMsg::Data {
                line,
                data,
                grant,
                acks,
                mut breakdown,
            } => {
                breakdown.noc += flight;
                let mshr = self
                    .mshrs
                    .get_mut(line.0)
                    .expect("Data response without MSHR");
                mshr.breakdown.merge(&breakdown);
                mshr.data = Some((data, grant));
                mshr.acks_needed = Some(acks);
                self.try_complete_fill(now, line);
            }
            CoherenceMsg::DataOwner {
                line,
                data,
                grant,
                mut breakdown,
            } => {
                breakdown.noc += flight;
                let mshr = self
                    .mshrs
                    .get_mut(line.0)
                    .expect("DataOwner response without MSHR");
                mshr.breakdown.merge(&breakdown);
                mshr.data = Some((data, grant));
                mshr.acks_needed = Some(0);
                self.try_complete_fill(now, line);
            }
            CoherenceMsg::InvAck { line } => {
                let mshr = self.mshrs.get_mut(line.0).expect("InvAck without MSHR");
                mshr.acks_got += 1;
                self.try_complete_fill(now, line);
            }
            CoherenceMsg::Inv { line, requestor } => {
                self.stats.invs += 1;
                // Resident shared copy?
                if let Some((state, _)) = self.array.peek(line) {
                    debug_assert_eq!(*state, LineState::S, "Inv for non-shared line");
                    self.array.remove(line);
                    self.back_inval.push_back((line, InvalReason::Coherence));
                } else if let Some(mshr) = self.mshrs.get_mut(line.0) {
                    debug_assert!(
                        mshr.data.is_none(),
                        "Inv cannot arrive after the current-epoch fill"
                    );
                    if mshr.want_m {
                        // Stale Inv (we were a silently-dropped sharer) or a
                        // current upgrade race: either way we lose any S copy.
                        mshr.was_s = false;
                    } else {
                        mshr.fill_invalidated = true;
                    }
                    self.back_inval.push_back((line, InvalReason::Coherence));
                }
                // Always acknowledge — the line may have been silently
                // evicted from S, leaving a stale sharer bit at the home.
                self.send(
                    now,
                    requestor,
                    CoherenceMsg::InvAck { line },
                    self.cfg.proc_cycles,
                );
            }
            CoherenceMsg::FwdGetS {
                line,
                requestor,
                mut breakdown,
            } => {
                self.stats.downgrades += 1;
                breakdown.noc += flight;
                *self.local_bucket(&mut breakdown) += self.delay(self.cfg.proc_cycles);
                if let Some((state, data)) = self.array.peek(line).map(|(m, d)| (*m, *d)) {
                    debug_assert!(
                        matches!(state, LineState::E | LineState::M),
                        "FwdGetS to non-owner"
                    );
                    *self.array.meta_mut(line).unwrap() = LineState::S;
                    self.send(
                        now,
                        requestor,
                        CoherenceMsg::DataOwner {
                            line,
                            data,
                            grant: Grant::S,
                            breakdown,
                        },
                        self.cfg.proc_cycles,
                    );
                    let home = self.home.home_of(line);
                    self.send(
                        now,
                        home,
                        CoherenceMsg::WBData { line, data },
                        self.cfg.proc_cycles,
                    );
                } else if let Some(entry) = self.wb.get_mut(line.0) {
                    // Race: we are writing the line back; still the owner.
                    debug_assert_eq!(entry.state, WbState::MiA);
                    entry.state = WbState::SiA;
                    let data = entry.data;
                    self.send(
                        now,
                        requestor,
                        CoherenceMsg::DataOwner {
                            line,
                            data,
                            grant: Grant::S,
                            breakdown,
                        },
                        self.cfg.proc_cycles,
                    );
                    let home = self.home.home_of(line);
                    self.send(
                        now,
                        home,
                        CoherenceMsg::WBData { line, data },
                        self.cfg.proc_cycles,
                    );
                } else {
                    panic!("FwdGetS for line {line:?} we do not own");
                }
            }
            CoherenceMsg::FwdGetM {
                line,
                requestor,
                mut breakdown,
            } => {
                self.stats.fwd_getm += 1;
                breakdown.noc += flight;
                *self.local_bucket(&mut breakdown) += self.delay(self.cfg.proc_cycles);
                if let Some((_, data)) = self.array.remove(line) {
                    self.back_inval.push_back((line, InvalReason::Coherence));
                    self.send(
                        now,
                        requestor,
                        CoherenceMsg::DataOwner {
                            line,
                            data,
                            grant: Grant::M,
                            breakdown,
                        },
                        self.cfg.proc_cycles,
                    );
                } else if let Some(entry) = self.wb.get_mut(line.0) {
                    debug_assert_eq!(entry.state, WbState::MiA);
                    entry.state = WbState::IiA;
                    let data = entry.data;
                    self.send(
                        now,
                        requestor,
                        CoherenceMsg::DataOwner {
                            line,
                            data,
                            grant: Grant::M,
                            breakdown,
                        },
                        self.cfg.proc_cycles,
                    );
                } else {
                    panic!("FwdGetM for line {line:?} we do not own");
                }
            }
            CoherenceMsg::PutAck { line } => {
                let entry = self.wb.remove(line.0).expect("PutAck without writeback");
                // Whatever the final state (MI_A/SI_A/II_A), the line is gone.
                let _ = entry;
            }
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetM { .. }
            | CoherenceMsg::PutM { .. }
            | CoherenceMsg::WBData { .. }
            | CoherenceMsg::Unblock { .. } => {
                panic!("directory-bound message delivered to a private cache")
            }
        }
    }

    /// Completes a fill when both the data and all invalidation acks have
    /// arrived.
    fn try_complete_fill(&mut self, now: Time, line: LineAddr) {
        let done = {
            let mshr = self.mshrs.get(line.0).expect("fill without MSHR");
            mshr.data.is_some() && mshr.acks_needed.is_some_and(|n| mshr.acks_got >= n)
        };
        if !done {
            return;
        }
        let mut mshr = self.mshrs.remove(line.0).unwrap();
        self.tracer.emit(
            now.as_ps(),
            EventKind::MshrRetire,
            line.0,
            self.mshrs.len() as u64,
        );
        let (data, grant) = mshr.data.take().unwrap();
        // Release the home's busy state.
        let home = self.home.home_of(line);
        self.send(
            now,
            home,
            CoherenceMsg::Unblock { line },
            self.cfg.proc_cycles,
        );

        if mshr.fill_invalidated {
            debug_assert!(!mshr.want_m);
            // Serve the leading loads from the momentary data, then replay
            // the rest (they will re-miss).
            while let Some(req) = mshr.pending.front() {
                match req.op {
                    MemOp::Load(_) | MemOp::LoadLine | MemOp::IFetch => {
                        let req = mshr.pending.pop_front().unwrap();
                        // Forward-once: the line is NOT installed here, so
                        // the L1 must not retain it either.
                        self.finish_access_opts(
                            now,
                            &req,
                            &mut data.clone(),
                            &mshr.breakdown,
                            false,
                            false,
                        );
                    }
                    _ => break,
                }
            }
            for req in mshr.pending.drain(..).rev() {
                self.req_in.push_front(req);
            }
            return;
        }

        let state = match grant {
            Grant::S => LineState::S,
            Grant::E => {
                if mshr.want_m {
                    LineState::M
                } else {
                    LineState::E
                }
            }
            Grant::M => LineState::M,
        };
        self.install_line(now, line, data, state);
        // Serve all pending requests that this state satisfies; replay the
        // rest (e.g. a store after an S fill re-issues as an upgrade).
        let mut line_data = self.array.peek(line).map(|(_, d)| *d).unwrap();
        let mut dirty = false;
        while let Some(req) = mshr.pending.front() {
            let needs_m = !matches!(req.op, MemOp::Load(_) | MemOp::LoadLine | MemOp::IFetch);
            let have_m = matches!(state, LineState::M);
            if needs_m && !have_m {
                break;
            }
            let req = mshr.pending.pop_front().unwrap();
            let wrote = self.finish_access(now, &req, &mut line_data, &mshr.breakdown, true);
            dirty |= wrote;
        }
        if dirty {
            if let Some((_, d)) = self.array.get_mut(line) {
                *d = line_data;
            }
        }
        for req in mshr.pending.drain(..).rev() {
            self.req_in.push_front(req);
        }
    }

    /// Installs a filled line, evicting a victim if the set is full.
    fn install_line(&mut self, now: Time, line: LineAddr, data: LineData, state: LineState) {
        if let Some(victim) = self.array.victim_for(line) {
            self.evict(now, victim);
        }
        self.array.insert(line, data, state);
    }

    /// Evicts a stable line: M/E lines are written back, S lines dropped
    /// silently.
    fn evict(&mut self, now: Time, victim: LineAddr) {
        let (state, data) = self.array.remove(victim).expect("victim must be resident");
        self.back_inval.push_back((victim, InvalReason::Eviction));
        if matches!(state, LineState::M | LineState::E) {
            self.stats.writebacks += 1;
            self.tracer
                .emit(now.as_ps(), EventKind::Writeback, victim.0, 0);
            self.wb.insert(
                victim.0,
                WbEntry {
                    state: WbState::MiA,
                    data,
                },
            );
            let home = self.home.home_of(victim);
            self.send(now, home, CoherenceMsg::PutM { line: victim, data }, 0);
        }
    }

    /// Completes one CPU-side access against `line_data`, pushing the
    /// response. Returns true if it wrote. `miss_path` selects the latency:
    /// responses on the hit path wait `hit_cycles`; fills respond after
    /// `proc_cycles` (the miss latency has already elapsed in real time).
    fn finish_access(
        &mut self,
        now: Time,
        req: &MemReq,
        line_data: &mut LineData,
        breakdown: &LatencyBreakdown,
        miss_path: bool,
    ) -> bool {
        self.finish_access_opts(now, req, line_data, breakdown, miss_path, true)
    }

    /// [`finish_access`](Self::finish_access) with an explicit cacheability
    /// marker for forward-once (fill-invalidated) serves.
    fn finish_access_opts(
        &mut self,
        now: Time,
        req: &MemReq,
        line_data: &mut LineData,
        breakdown: &LatencyBreakdown,
        miss_path: bool,
        cacheable: bool,
    ) -> bool {
        let offset = LineAddr::offset(req.addr);
        let mut bd = *breakdown;
        let resp_delay = if miss_path {
            self.delay(self.cfg.proc_cycles)
        } else {
            self.delay(self.cfg.hit_cycles)
        };
        *self.local_bucket(&mut bd) += resp_delay;
        let (rdata, line, wrote) = match req.op {
            MemOp::Load(w) => (read_scalar(line_data, offset, w), None, false),
            MemOp::LoadLine | MemOp::IFetch => (0, Some(*line_data), false),
            MemOp::Store(w) => {
                write_scalar(line_data, offset, w, req.wdata);
                (0, None, true)
            }
            MemOp::Amo(op, w) => {
                let old = apply_amo(line_data, offset, w, op, req.wdata, req.expected);
                (old, None, true)
            }
        };
        self.resp_out.push_at(
            now + resp_delay,
            MemResp {
                id: req.id,
                rdata,
                line,
                cacheable,
                breakdown: bd,
            },
        );
        wrote
    }

    /// Advances the cache by one clock edge: processes at most one queued
    /// coherence message and at most one CPU-side request.
    pub fn tick(&mut self, now: Time) {
        if let Some((src, msg, arrived, flight)) = self.noc_in.pop_front() {
            // Queue wait counts as local pipeline occupancy for the
            // transaction this message carries forward.
            let wait = now.saturating_sub(arrived);
            let msg = add_wait(msg, wait, self.cfg.slow_domain);
            self.process_msg(now, src, msg, flight);
        }
        let Some(req) = self.req_in.front().copied() else {
            return;
        };
        let line = LineAddr::containing(req.addr);

        // Fold into an existing outstanding miss on the same line.
        if let Some(mshr) = self.mshrs.get_mut(line.0) {
            self.req_in.pop_front();
            self.stats.mshr_merges += 1;
            mshr.pending.push_back(req);
            return;
        }

        let needs_m = !matches!(req.op, MemOp::Load(_) | MemOp::LoadLine | MemOp::IFetch);
        let state = self.array.peek(line).map(|(m, _)| *m);
        match state {
            Some(LineState::M) => {
                self.req_in.pop_front();
                self.stats.hits += 1;
                let mut data = *self.array.get(line).map(|(_, d)| d).unwrap();
                let wrote =
                    self.finish_access(now, &req, &mut data, &LatencyBreakdown::new(), false);
                if wrote {
                    if let Some((_, d)) = self.array.get_mut(line) {
                        *d = data;
                    }
                }
            }
            Some(LineState::E) => {
                self.req_in.pop_front();
                self.stats.hits += 1;
                if needs_m {
                    // Silent E -> M upgrade.
                    *self.array.meta_mut(line).unwrap() = LineState::M;
                }
                let mut data = *self.array.get(line).map(|(_, d)| d).unwrap();
                let wrote =
                    self.finish_access(now, &req, &mut data, &LatencyBreakdown::new(), false);
                if wrote {
                    if let Some((_, d)) = self.array.get_mut(line) {
                        *d = data;
                    }
                }
            }
            Some(LineState::S) if !needs_m => {
                self.req_in.pop_front();
                self.stats.hits += 1;
                let mut data = *self.array.get(line).map(|(_, d)| d).unwrap();
                self.finish_access(now, &req, &mut data, &LatencyBreakdown::new(), false);
            }
            Some(LineState::S) => {
                // Upgrade miss.
                if self.mshrs.len() >= self.cfg.mshrs {
                    return; // head-of-line block until an MSHR frees
                }
                self.req_in.pop_front();
                self.stats.misses += 1;
                let mut breakdown = LatencyBreakdown::new();
                *self.local_bucket(&mut breakdown) += self.delay(self.cfg.proc_cycles);
                let mut pending = VecDeque::new();
                pending.push_back(req);
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        want_m: true,
                        was_s: true,
                        data: None,
                        acks_needed: None,
                        acks_got: 0,
                        fill_invalidated: false,
                        pending,
                        breakdown,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MshrAlloc,
                    line.0,
                    self.mshrs.len() as u64,
                );
                // Drop the S copy locally; the directory's Data response
                // will re-supply it. (Keeping it would be legal MESI but the
                // epoch argument in handle_msg relies on request-time state.)
                self.array.remove(line);
                let home = self.home.home_of(line);
                self.send(now, home, CoherenceMsg::GetM { line }, self.cfg.proc_cycles);
            }
            None => {
                if self.mshrs.len() >= self.cfg.mshrs {
                    return;
                }
                self.req_in.pop_front();
                self.stats.misses += 1;
                let mut breakdown = LatencyBreakdown::new();
                *self.local_bucket(&mut breakdown) += self.delay(self.cfg.proc_cycles);
                let mut pending = VecDeque::new();
                pending.push_back(req);
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        want_m: needs_m,
                        was_s: false,
                        data: None,
                        acks_needed: None,
                        acks_got: 0,
                        fill_invalidated: false,
                        pending,
                        breakdown,
                    },
                );
                self.tracer.emit(
                    now.as_ps(),
                    EventKind::MshrAlloc,
                    line.0,
                    self.mshrs.len() as u64,
                );
                let home = self.home.home_of(line);
                let msg = if needs_m {
                    CoherenceMsg::GetM { line }
                } else {
                    CoherenceMsg::GetS { line }
                };
                self.send(now, home, msg, self.cfg.proc_cycles);
            }
        }
    }
}

impl Component for PrivCache {
    fn name(&self) -> String {
        format!("cache@n{}", self.node)
    }

    fn domain(&self) -> ClockDomain {
        if self.cfg.slow_domain {
            ClockDomain::Slow
        } else {
            ClockDomain::Fast
        }
    }

    fn tick(&mut self, now: Time) {
        PrivCache::tick(self, now);
    }

    fn next_event_time(&self, now: Time) -> Option<Time> {
        PrivCache::next_event_time(self, now)
    }

    fn is_active(&self, _now: Time) -> bool {
        PrivCache::is_active(self)
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        visit("resp_out", self.resp_out.report());
        visit("noc_out", self.noc_out.report());
    }
}

mod snap_impls {
    use std::collections::VecDeque;

    use duet_sim::{LatencyBreakdown, Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{CacheStats, InvalReason, LineState, Mshr, PrivCache, WbEntry, WbState};
    use crate::msg::Grant;
    use crate::types::{LineData, MemReq};

    impl Pack for LineState {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                LineState::S => 0,
                LineState::E => 1,
                LineState::M => 2,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(LineState::S),
                1 => Ok(LineState::E),
                2 => Ok(LineState::M),
                _ => Err(SnapError::Corrupt("invalid LineState discriminant")),
            }
        }
    }

    impl Pack for InvalReason {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                InvalReason::Coherence => 0,
                InvalReason::Eviction => 1,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(InvalReason::Coherence),
                1 => Ok(InvalReason::Eviction),
                _ => Err(SnapError::Corrupt("invalid InvalReason discriminant")),
            }
        }
    }

    impl Pack for WbState {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                WbState::MiA => 0,
                WbState::SiA => 1,
                WbState::IiA => 2,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(WbState::MiA),
                1 => Ok(WbState::SiA),
                2 => Ok(WbState::IiA),
                _ => Err(SnapError::Corrupt("invalid WbState discriminant")),
            }
        }
    }

    impl Pack for WbEntry {
        fn pack(&self, w: &mut SnapWriter) {
            self.state.pack(w);
            self.data.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(WbEntry {
                state: WbState::unpack(r)?,
                data: LineData::unpack(r)?,
            })
        }
    }

    impl Pack for Mshr {
        fn pack(&self, w: &mut SnapWriter) {
            self.want_m.pack(w);
            self.was_s.pack(w);
            self.data.pack(w);
            self.acks_needed.pack(w);
            self.acks_got.pack(w);
            self.fill_invalidated.pack(w);
            self.pending.pack(w);
            self.breakdown.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Mshr {
                want_m: bool::unpack(r)?,
                was_s: bool::unpack(r)?,
                data: Option::<(LineData, Grant)>::unpack(r)?,
                acks_needed: Option::<u32>::unpack(r)?,
                acks_got: u32::unpack(r)?,
                fill_invalidated: bool::unpack(r)?,
                pending: VecDeque::<MemReq>::unpack(r)?,
                breakdown: LatencyBreakdown::unpack(r)?,
            })
        }
    }

    impl Pack for CacheStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.hits);
            w.u64(self.misses);
            w.u64(self.mshr_merges);
            w.u64(self.writebacks);
            w.u64(self.invs);
            w.u64(self.downgrades);
            w.u64(self.fwd_getm);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(CacheStats {
                hits: r.u64()?,
                misses: r.u64()?,
                mshr_merges: r.u64()?,
                writebacks: r.u64()?,
                invs: r.u64()?,
                downgrades: r.u64()?,
                fwd_getm: r.u64()?,
            })
        }
    }

    impl Snap for PrivCache {
        /// Everything observable is serialized; the tracer handle is not
        /// (the owning system re-installs it after a restore).
        fn save(&self, w: &mut SnapWriter) {
            self.array.save(w);
            self.mshrs.pack(w);
            self.wb.pack(w);
            self.req_in.pack(w);
            self.noc_in.pack(w);
            self.resp_out.save(w);
            self.noc_out.save(w);
            self.back_inval.pack(w);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.array.load(r)?;
            self.mshrs = Pack::unpack(r)?;
            self.wb = Pack::unpack(r)?;
            self.req_in = Pack::unpack(r)?;
            self.noc_in = Pack::unpack(r)?;
            self.resp_out.load(r)?;
            self.noc_out.load(r)?;
            self.back_inval = Pack::unpack(r)?;
            self.stats = CacheStats::unpack(r)?;
            Ok(())
        }
    }
}

/// Adds pipeline-wait time into a breakdown-carrying message.
fn add_wait(msg: CoherenceMsg, wait: Time, slow: bool) -> CoherenceMsg {
    if wait == Time::ZERO {
        return msg;
    }
    let bump = |mut b: LatencyBreakdown| {
        if slow {
            b.cache_slow += wait;
        } else {
            b.cache_fast += wait;
        }
        b
    };
    match msg {
        CoherenceMsg::FwdGetS {
            line,
            requestor,
            breakdown,
        } => CoherenceMsg::FwdGetS {
            line,
            requestor,
            breakdown: bump(breakdown),
        },
        CoherenceMsg::FwdGetM {
            line,
            requestor,
            breakdown,
        } => CoherenceMsg::FwdGetM {
            line,
            requestor,
            breakdown: bump(breakdown),
        },
        CoherenceMsg::Data {
            line,
            data,
            grant,
            acks,
            breakdown,
        } => CoherenceMsg::Data {
            line,
            data,
            grant,
            acks,
            breakdown: bump(breakdown),
        },
        CoherenceMsg::DataOwner {
            line,
            data,
            grant,
            breakdown,
        } => CoherenceMsg::DataOwner {
            line,
            data,
            grant,
            breakdown: bump(breakdown),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Width;

    fn cache() -> PrivCache {
        let cfg = CacheConfig::dolly_l2(Clock::ghz1());
        PrivCache::new(cfg, 0, HomeMap::new(vec![1]))
    }

    fn t(c: u64) -> Time {
        Time::from_ps(1000 * c)
    }

    /// Runs ticks, collecting outgoing messages, until a CPU response pops.
    fn run_until_resp(
        c: &mut PrivCache,
        mut cycle: u64,
    ) -> (u64, MemResp, Vec<(NodeId, CoherenceMsg)>) {
        let mut out = Vec::new();
        for _ in 0..1000 {
            cycle += 1;
            c.tick(t(cycle));
            while let Some(m) = c.pop_outgoing(t(cycle)) {
                out.push(m);
            }
            if let Some(r) = c.pop_cpu_resp(t(cycle)) {
                return (cycle, r, out);
            }
        }
        panic!("no response");
    }

    #[test]
    fn load_miss_sends_gets_and_fill_completes() {
        let mut c = cache();
        c.cpu_request(MemReq::load(1, 0x100, Width::B8));
        c.tick(t(1));
        let (dst, msg) = loop {
            if let Some(m) = c.pop_outgoing(t(10)) {
                break m;
            }
        };
        assert_eq!(dst, 1);
        assert!(matches!(msg, CoherenceMsg::GetS { line } if line == LineAddr(0x10)));

        // Home responds with exclusive data.
        let mut data = [0u8; 16];
        write_scalar(&mut data, 0, Width::B8, 0xABCD);
        c.handle_msg(
            t(20),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x10),
                data,
                grant: Grant::E,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::from_ns(5),
        );
        let (_, resp, out) = run_until_resp(&mut c, 20);
        assert_eq!(resp.id, 1);
        assert_eq!(resp.rdata, 0xABCD);
        assert!(resp.breakdown.noc >= Time::from_ns(5));
        // Unblock went to home.
        assert!(out
            .iter()
            .any(|(d, m)| *d == 1 && matches!(m, CoherenceMsg::Unblock { .. })));
        assert_eq!(c.line_state(LineAddr(0x10)), Some(LineState::E));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn load_hit_after_fill_is_fast_and_local() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [7u8; 16], LineState::E);
        c.cpu_request(MemReq::load(2, 0x100, Width::B1));
        let (_, resp, out) = run_until_resp(&mut c, 0);
        assert_eq!(resp.rdata, 7);
        assert!(out.is_empty(), "hits generate no traffic");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn store_hit_in_e_upgrades_silently() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [0u8; 16], LineState::E);
        c.cpu_request(MemReq::store(3, 0x100, Width::B8, 55));
        let (_, _, out) = run_until_resp(&mut c, 0);
        assert!(out.is_empty());
        assert_eq!(c.line_state(LineAddr(0x10)), Some(LineState::M));
        let line = c.peek_line(LineAddr(0x10)).unwrap();
        assert_eq!(read_scalar(&line, 0, Width::B8), 55);
    }

    #[test]
    fn store_to_shared_line_issues_getm_upgrade() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [0u8; 16], LineState::S);
        c.cpu_request(MemReq::store(4, 0x100, Width::B4, 9));
        c.tick(t(1));
        let mut saw_getm = false;
        while let Some((dst, m)) = c.pop_outgoing(t(10)) {
            if matches!(m, CoherenceMsg::GetM { .. }) {
                assert_eq!(dst, 1);
                saw_getm = true;
            }
        }
        assert!(saw_getm);
        // Fill with 1 pending ack: not complete until InvAck arrives.
        c.handle_msg(
            t(12),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x10),
                data: [0u8; 16],
                grant: Grant::M,
                acks: 1,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        c.tick(t(13));
        assert!(c.pop_cpu_resp(t(13)).is_none(), "must wait for InvAck");
        c.handle_msg(
            t(14),
            2,
            CoherenceMsg::InvAck {
                line: LineAddr(0x10),
            },
            Time::ZERO,
        );
        let (_, resp, _) = run_until_resp(&mut c, 14);
        assert_eq!(resp.id, 4);
        assert_eq!(c.line_state(LineAddr(0x10)), Some(LineState::M));
    }

    #[test]
    fn inv_on_shared_line_acks_to_requestor() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [1u8; 16], LineState::S);
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::Inv {
                line: LineAddr(0x10),
                requestor: 3,
            },
            Time::ZERO,
        );
        c.tick(t(6));
        let (dst, msg) = c.pop_outgoing(t(12)).unwrap();
        assert_eq!(dst, 3, "InvAck goes to the requestor, not home");
        assert!(matches!(msg, CoherenceMsg::InvAck { .. }));
        assert_eq!(c.line_state(LineAddr(0x10)), None);
        let bi = c.take_back_invalidations();
        assert_eq!(bi, vec![(LineAddr(0x10), InvalReason::Coherence)]);
    }

    #[test]
    fn inv_for_absent_line_still_acks() {
        let mut c = cache();
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::Inv {
                line: LineAddr(0x99),
                requestor: 2,
            },
            Time::ZERO,
        );
        c.tick(t(6));
        let (dst, msg) = c.pop_outgoing(t(12)).unwrap();
        assert_eq!(dst, 2);
        assert!(matches!(msg, CoherenceMsg::InvAck { .. }));
    }

    #[test]
    fn fwd_gets_downgrades_and_copies_back() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [9u8; 16], LineState::M);
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::FwdGetS {
                line: LineAddr(0x10),
                requestor: 2,
                breakdown: LatencyBreakdown::new(),
            },
            Time::from_ns(3),
        );
        c.tick(t(6));
        let mut to_req = None;
        let mut to_home = None;
        while let Some((dst, m)) = c.pop_outgoing(t(14)) {
            match m {
                CoherenceMsg::DataOwner {
                    grant, breakdown, ..
                } => {
                    assert_eq!(dst, 2);
                    assert_eq!(grant, Grant::S);
                    assert!(breakdown.noc >= Time::from_ns(3));
                    to_req = Some(());
                }
                CoherenceMsg::WBData { data, .. } => {
                    assert_eq!(dst, 1);
                    assert_eq!(data[0], 9);
                    to_home = Some(());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(to_req.is_some() && to_home.is_some());
        assert_eq!(c.line_state(LineAddr(0x10)), Some(LineState::S));
    }

    #[test]
    fn fwd_getm_transfers_ownership() {
        let mut c = cache();
        c.warm_insert(LineAddr(0x10), [4u8; 16], LineState::M);
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::FwdGetM {
                line: LineAddr(0x10),
                requestor: 2,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        c.tick(t(6));
        let (dst, msg) = c.pop_outgoing(t(12)).unwrap();
        assert_eq!(dst, 2);
        assert!(matches!(
            msg,
            CoherenceMsg::DataOwner {
                grant: Grant::M,
                ..
            }
        ));
        assert_eq!(c.line_state(LineAddr(0x10)), None);
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        // 1-set config to force conflict.
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            ..CacheConfig::dolly_l2(Clock::ghz1())
        };
        let mut c = PrivCache::new(cfg, 0, HomeMap::new(vec![1]));
        c.warm_insert(LineAddr(0x10), [3u8; 16], LineState::M);
        // Miss on a conflicting line.
        c.cpu_request(MemReq::load(1, 0x200, Width::B8));
        c.tick(t(1));
        // Fill arrives; installing evicts the dirty victim.
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x20),
                data: [0u8; 16],
                grant: Grant::E,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        let mut saw_putm = false;
        for k in 6..16 {
            c.tick(t(k));
            while let Some((dst, m)) = c.pop_outgoing(t(20)) {
                if let CoherenceMsg::PutM { line, data } = m {
                    assert_eq!(dst, 1);
                    assert_eq!(line, LineAddr(0x10));
                    assert_eq!(data[0], 3);
                    saw_putm = true;
                }
            }
        }
        assert!(saw_putm);
        assert_eq!(c.stats().writebacks, 1);
        // PutAck clears the writeback buffer.
        c.handle_msg(
            t(25),
            1,
            CoherenceMsg::PutAck {
                line: LineAddr(0x10),
            },
            Time::ZERO,
        );
        // Wait for the fill response before checking idle.
        let _ = run_until_resp(&mut c, 25);
        assert!(c.is_idle());
    }

    #[test]
    fn fwd_during_writeback_served_from_wb_buffer() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            ..CacheConfig::dolly_l2(Clock::ghz1())
        };
        let mut c = PrivCache::new(cfg, 0, HomeMap::new(vec![1]));
        c.warm_insert(LineAddr(0x10), [8u8; 16], LineState::M);
        c.cpu_request(MemReq::load(1, 0x200, Width::B8));
        c.tick(t(1));
        c.handle_msg(
            t(3),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x20),
                data: [0u8; 16],
                grant: Grant::E,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        // Drain the PutM.
        for k in 4..10 {
            c.tick(t(k));
        }
        while c.pop_outgoing(t(10)).is_some() {}
        // A FwdGetS for the in-flight writeback line.
        c.handle_msg(
            t(11),
            1,
            CoherenceMsg::FwdGetS {
                line: LineAddr(0x10),
                requestor: 2,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        c.tick(t(12));
        let mut got_data = false;
        while let Some((dst, m)) = c.pop_outgoing(t(20)) {
            if let CoherenceMsg::DataOwner { data, .. } = m {
                assert_eq!(dst, 2);
                assert_eq!(data[0], 8);
                got_data = true;
            }
        }
        assert!(got_data, "wb buffer must serve forwarded requests");
        // PutAck finally clears it.
        c.handle_msg(
            t(21),
            1,
            CoherenceMsg::PutAck {
                line: LineAddr(0x10),
            },
            Time::ZERO,
        );
        let _ = run_until_resp(&mut c, 21);
        assert!(c.is_idle());
    }

    #[test]
    fn amo_returns_old_value_and_mutates() {
        let mut c = cache();
        let mut d = [0u8; 16];
        write_scalar(&mut d, 0, Width::B8, 41);
        c.warm_insert(LineAddr(0x10), d, LineState::M);
        c.cpu_request(MemReq::amo(
            9,
            crate::types::AmoOp::Add,
            0x100,
            Width::B8,
            1,
            0,
        ));
        let (_, resp, _) = run_until_resp(&mut c, 0);
        assert_eq!(resp.rdata, 41);
        let line = c.peek_line(LineAddr(0x10)).unwrap();
        assert_eq!(read_scalar(&line, 0, Width::B8), 42);
    }

    #[test]
    fn mshr_merge_coalesces_same_line_requests() {
        let mut c = cache();
        c.cpu_request(MemReq::load(1, 0x100, Width::B8));
        c.cpu_request(MemReq::load(2, 0x108, Width::B8));
        c.tick(t(1));
        c.tick(t(2));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().mshr_merges, 1);
        c.handle_msg(
            t(5),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x10),
                data: [5u8; 16],
                grant: Grant::S,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        let (_, r1, _) = run_until_resp(&mut c, 5);
        let (_, r2, _) = run_until_resp(&mut c, 6);
        assert_eq!((r1.id, r2.id), (1, 2), "responses in order");
    }

    #[test]
    fn mshr_limit_blocks_new_misses() {
        let cfg = CacheConfig::dolly_l2(Clock::ghz1()).with_mshrs(1);
        let mut c = PrivCache::new(cfg, 0, HomeMap::new(vec![1]));
        c.cpu_request(MemReq::load(1, 0x100, Width::B8));
        c.cpu_request(MemReq::load(2, 0x200, Width::B8));
        c.tick(t(1));
        c.tick(t(2));
        c.tick(t(3));
        assert_eq!(c.stats().misses, 1, "second miss blocked by MSHR limit");
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn inv_during_pending_gets_serves_load_once_without_install() {
        let mut c = cache();
        c.cpu_request(MemReq::load(1, 0x100, Width::B8));
        c.tick(t(1));
        // Inv races ahead of the fill.
        c.handle_msg(
            t(2),
            1,
            CoherenceMsg::Inv {
                line: LineAddr(0x10),
                requestor: 2,
            },
            Time::ZERO,
        );
        let mut d = [0u8; 16];
        write_scalar(&mut d, 0, Width::B8, 77);
        c.handle_msg(
            t(4),
            1,
            CoherenceMsg::Data {
                line: LineAddr(0x10),
                data: d,
                grant: Grant::S,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        let (_, resp, _) = run_until_resp(&mut c, 4);
        assert_eq!(resp.rdata, 77, "load served with forwarded-once data");
        assert_eq!(c.line_state(LineAddr(0x10)), None, "line not installed");
    }

    #[test]
    fn loadline_returns_full_line() {
        let mut c = cache();
        let mut d = [0u8; 16];
        for (i, b) in d.iter_mut().enumerate() {
            *b = i as u8;
        }
        c.warm_insert(LineAddr(0x10), d, LineState::S);
        c.cpu_request(MemReq::load_line(7, 0x100));
        let (_, resp, _) = run_until_resp(&mut c, 0);
        assert_eq!(resp.line, Some(d));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut c = cache();
        c.cpu_request(MemReq::load(1, 0x101, Width::B8));
    }

    #[test]
    fn snapshot_mid_transaction_roundtrip_is_bit_identical() {
        use duet_sim::{Snap, SnapReader, SnapWriter};

        // Leave an MSHR in flight, a queued request, and a dirty line, then
        // snapshot, restore into a fresh cache, and drive both in lockstep.
        let mut a = cache();
        a.warm_insert(LineAddr(0x30), [3u8; 16], LineState::M);
        a.cpu_request(MemReq::load(1, 0x100, Width::B8));
        a.cpu_request(MemReq::load(2, 0x108, Width::B8));
        a.tick(t(1));

        let mut w = SnapWriter::new();
        a.save(&mut w);
        let bytes = w.finish();
        let mut b = cache();
        b.load(&mut SnapReader::new(&bytes)).unwrap();

        for c in [&mut a, &mut b] {
            let mut d = [0u8; 16];
            write_scalar(&mut d, 0, Width::B8, 0xFEED);
            c.handle_msg(
                t(10),
                1,
                CoherenceMsg::Data {
                    line: LineAddr(0x10),
                    data: d,
                    grant: Grant::E,
                    acks: 0,
                    breakdown: LatencyBreakdown::new(),
                },
                Time::from_ns(2),
            );
        }
        for cyc in 11..40 {
            a.tick(t(cyc));
            b.tick(t(cyc));
            loop {
                let (ma, mb) = (a.pop_outgoing(t(cyc)), b.pop_outgoing(t(cyc)));
                assert_eq!(format!("{ma:?}"), format!("{mb:?}"));
                if ma.is_none() {
                    break;
                }
            }
            loop {
                let (ra, rb) = (a.pop_cpu_resp(t(cyc)), b.pop_cpu_resp(t(cyc)));
                assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
                if ra.is_none() {
                    break;
                }
            }
        }
        assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b.stats()));
        assert_eq!(a.line_state(LineAddr(0x30)), b.line_state(LineAddr(0x30)));
    }
}
