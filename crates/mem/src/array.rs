//! Generic set-associative cache array with true-LRU replacement.
//!
//! Used by the L1 caches, the private L2 / Proxy Cache, the L3 data array,
//! and the eFPGA-emulated soft cache. The array stores tags, per-line
//! metadata `M`, and the actual line data (the simulator is functional as
//! well as timing-accurate — coherence bugs surface as wrong data).

use crate::types::{LineAddr, LineData, LINE_BYTES};

/// One way of one set.
#[derive(Clone, Debug)]
struct Way<M> {
    tag: u64,
    valid: bool,
    lru: u64,
    meta: M,
    data: LineData,
}

/// A set-associative array of cachelines with metadata `M` per line.
///
/// # Example
///
/// ```
/// use duet_mem::array::CacheArray;
/// use duet_mem::types::LineAddr;
///
/// let mut a: CacheArray<bool> = CacheArray::new(4, 2);
/// a.insert(LineAddr(0x10), [0u8; 16], true);
/// assert!(a.get(LineAddr(0x10)).is_some());
/// assert!(a.get(LineAddr(0x11)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    sets: usize,
    ways: usize,
    lines: Vec<Option<Way<M>>>,
    tick: u64,
}

impl<M> CacheArray<M> {
    /// Creates an empty array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "array dimensions must be non-zero");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            sets,
            ways,
            // Materialized on first insert: a system builds one array per
            // cache/shard/hub, and most never see traffic in short runs —
            // eagerly zeroing sets*ways slots dominated construction time.
            lines: Vec::new(),
            tick: 0,
        }
    }

    /// Allocates the slot storage (all-empty) if it has not been yet.
    fn ensure_backing(&mut self) {
        if self.lines.is_empty() {
            self.lines = (0..self.sets * self.ways).map(|_| None).collect();
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    fn slot_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_index(line);
        s * self.ways..(s + 1) * self.ways
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        if self.lines.is_empty() {
            return None;
        }
        self.slot_range(line).find(|&i| {
            self.lines[i]
                .as_ref()
                .is_some_and(|w| w.valid && w.tag == line.0)
        })
    }

    /// Looks up a line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<(&M, &LineData)> {
        self.find(line)
            .map(|i| self.lines[i].as_ref().map(|w| (&w.meta, &w.data)).unwrap())
    }

    /// Looks up a line and updates LRU on hit.
    pub fn get(&mut self, line: LineAddr) -> Option<(&M, &LineData)> {
        let i = self.find(line)?;
        self.tick += 1;
        let w = self.lines[i].as_mut().unwrap();
        w.lru = self.tick;
        Some((&w.meta, &w.data))
    }

    /// Mutable lookup, updating LRU on hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<(&mut M, &mut LineData)> {
        let i = self.find(line)?;
        self.tick += 1;
        let w = self.lines[i].as_mut().unwrap();
        w.lru = self.tick;
        Some((&mut w.meta, &mut w.data))
    }

    /// Metadata-only mutable access without LRU update (for coherence
    /// downgrades that shouldn't count as uses).
    pub fn meta_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let i = self.find(line)?;
        Some(&mut self.lines[i].as_mut().unwrap().meta)
    }

    /// Whether inserting `line` would require evicting a valid line, and if
    /// so which one (the LRU victim of the set). Returns `None` when the
    /// line is already present or a free way exists.
    pub fn victim_for(&self, line: LineAddr) -> Option<LineAddr> {
        if self.lines.is_empty() || self.find(line).is_some() {
            return None;
        }
        let range = self.slot_range(line);
        if self.lines[range.clone()]
            .iter()
            .any(|w| w.is_none() || !w.as_ref().unwrap().valid)
        {
            return None;
        }
        let victim = range
            .min_by_key(|&i| self.lines[i].as_ref().unwrap().lru)
            .unwrap();
        Some(LineAddr(self.lines[victim].as_ref().unwrap().tag))
    }

    /// Inserts (or overwrites) a line. The caller must have handled the
    /// victim first (see [`victim_for`](CacheArray::victim_for)); if the set
    /// is still full, the LRU line is silently dropped.
    pub fn insert(&mut self, line: LineAddr, data: LineData, meta: M) {
        self.ensure_backing();
        self.tick += 1;
        if let Some(i) = self.find(line) {
            let w = self.lines[i].as_mut().unwrap();
            w.data = data;
            w.meta = meta;
            w.lru = self.tick;
            return;
        }
        let range = self.slot_range(line);
        let slot = self.lines[range.clone()]
            .iter()
            .position(|w| w.is_none() || !w.as_ref().unwrap().valid)
            .map(|p| range.start + p)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].as_ref().unwrap().lru)
                    .unwrap()
            });
        self.lines[slot] = Some(Way {
            tag: line.0,
            valid: true,
            lru: self.tick,
            meta,
            data,
        });
    }

    /// Removes a line, returning its metadata and data if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<(M, LineData)> {
        let i = self.find(line)?;
        let w = self.lines[i].take().unwrap();
        Some((w.meta, w.data))
    }

    /// Invalidates every line, returning those that were present.
    pub fn drain(&mut self) -> Vec<(LineAddr, M, LineData)> {
        let mut out = Vec::new();
        for slot in &mut self.lines {
            if let Some(w) = slot.take() {
                if w.valid {
                    out.push((LineAddr(w.tag), w.meta, w.data));
                }
            }
        }
        out
    }

    /// Iterates over all valid lines (no LRU update).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M, &LineData)> {
        self.lines
            .iter()
            .filter_map(|w| w.as_ref())
            .filter(|w| w.valid)
            .map(|w| (LineAddr(w.tag), &w.meta, &w.data))
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.lines
            .iter()
            .filter(|w| w.as_ref().is_some_and(|w| w.valid))
            .count()
    }

    /// Whether the array holds no valid lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{CacheArray, Way};
    use crate::types::LineData;

    impl<M: Pack> Pack for Way<M> {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.tag);
            self.valid.pack(w);
            w.u64(self.lru);
            self.meta.pack(w);
            self.data.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Way {
                tag: r.u64()?,
                valid: bool::unpack(r)?,
                lru: r.u64()?,
                meta: M::unpack(r)?,
                data: LineData::unpack(r)?,
            })
        }
    }

    impl<M: Pack> Snap for CacheArray<M> {
        fn save(&self, w: &mut SnapWriter) {
            w.u64(self.tick);
            // Lazy backing: `lines` is either empty (never touched) or
            // exactly sets*ways slots. The length distinguishes the two.
            self.lines.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            let tick = r.u64()?;
            let lines: Vec<Option<Way<M>>> = Vec::unpack(r)?;
            if !lines.is_empty() && lines.len() != self.sets * self.ways {
                return Err(SnapError::Corrupt("cache array geometry mismatch"));
            }
            self.tick = tick;
            self.lines = lines;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    fn data(b: u8) -> LineData {
        [b; LINE_BYTES]
    }

    #[test]
    fn insert_and_get() {
        let mut a: CacheArray<u8> = CacheArray::new(8, 2);
        a.insert(line(1), data(7), 1);
        let (m, d) = a.get(line(1)).unwrap();
        assert_eq!(*m, 1);
        assert_eq!(d[0], 7);
        assert!(a.get(line(2)).is_none());
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut a: CacheArray<u8> = CacheArray::new(4, 2);
        a.insert(line(1), data(1), 1);
        a.insert(line(1), data(2), 2);
        assert_eq!(a.len(), 1);
        let (m, d) = a.peek(line(1)).unwrap();
        assert_eq!((*m, d[0]), (2, 2));
    }

    #[test]
    fn lru_victim_selection() {
        // 1 set, 2 ways: lines 0, 4 map to set 0 (4 sets? no — force conflict
        // with sets=1).
        let mut a: CacheArray<()> = CacheArray::new(1, 2);
        a.insert(line(10), data(0), ());
        a.insert(line(20), data(0), ());
        // Touch 10 so 20 becomes LRU.
        a.get(line(10));
        assert_eq!(a.victim_for(line(30)), Some(line(20)));
        // Present line needs no victim.
        assert_eq!(a.victim_for(line(10)), None);
    }

    #[test]
    fn insert_into_full_set_evicts_lru() {
        let mut a: CacheArray<()> = CacheArray::new(1, 2);
        a.insert(line(1), data(1), ());
        a.insert(line(2), data(2), ());
        a.get(line(1));
        a.insert(line(3), data(3), ());
        assert!(a.peek(line(2)).is_none(), "LRU line 2 evicted");
        assert!(a.peek(line(1)).is_some());
        assert!(a.peek(line(3)).is_some());
    }

    #[test]
    fn set_mapping_avoids_conflicts() {
        let mut a: CacheArray<()> = CacheArray::new(4, 1);
        for i in 0..4 {
            a.insert(line(i), data(i as u8), ());
        }
        assert_eq!(a.len(), 4, "distinct sets, no eviction");
    }

    #[test]
    fn remove_and_drain() {
        let mut a: CacheArray<u32> = CacheArray::new(4, 2);
        a.insert(line(1), data(1), 11);
        a.insert(line(2), data(2), 22);
        let (m, _) = a.remove(line(1)).unwrap();
        assert_eq!(m, 11);
        assert!(a.remove(line(1)).is_none());
        let rest = a.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, line(2));
        assert!(a.is_empty());
    }

    #[test]
    fn meta_mut_does_not_touch_lru() {
        let mut a: CacheArray<u8> = CacheArray::new(1, 2);
        a.insert(line(1), data(0), 0);
        a.insert(line(2), data(0), 0);
        // line(1) is LRU; meta_mut on it must not promote it.
        *a.meta_mut(line(1)).unwrap() = 9;
        assert_eq!(a.victim_for(line(3)), Some(line(1)));
    }

    #[test]
    fn capacity_accounting() {
        let a: CacheArray<()> = CacheArray::new(128, 4);
        assert_eq!(a.capacity_bytes(), 128 * 4 * 16); // 8 KB
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _: CacheArray<()> = CacheArray::new(3, 1);
    }
}
