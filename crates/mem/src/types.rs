//! Fundamental memory types: addresses, cachelines, and the CPU-side
//! request/response interface shared by cores and the Duet Adapter.

use duet_sim::LatencyBreakdown;

/// A physical (or virtual, depending on context) byte address.
pub type Addr = u64;

/// Bytes per cacheline. Dolly uses 16-byte lines ("the cache line size is
/// 16 Bytes", Sec. V-C).
pub const LINE_BYTES: usize = 16;

/// log2 of [`LINE_BYTES`].
pub const LINE_OFFSET_BITS: u32 = 4;

/// The data contents of one cacheline.
pub type LineData = [u8; LINE_BYTES];

/// A cacheline-granular address (byte address >> 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `a`.
    pub fn containing(a: Addr) -> Self {
        LineAddr(a >> LINE_OFFSET_BITS)
    }

    /// First byte address of this line.
    pub fn base(self) -> Addr {
        self.0 << LINE_OFFSET_BITS
    }

    /// Byte offset of `a` within its line.
    pub fn offset(a: Addr) -> usize {
        (a as usize) & (LINE_BYTES - 1)
    }
}

/// Access width in bytes (1, 2, 4, or 8 — the Dolly L2 "only supports stores
/// up to 8 Bytes", Sec. V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    /// 1 byte.
    B1 = 1,
    /// 2 bytes.
    B2 = 2,
    /// 4 bytes.
    B4 = 4,
    /// 8 bytes.
    B8 = 8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        self as usize
    }

    /// Mask selecting the low `bytes * 8` bits of a u64.
    pub fn mask(self) -> u64 {
        match self {
            Width::B8 => u64::MAX,
            w => (1u64 << (w.bytes() * 8)) - 1,
        }
    }
}

/// Atomic memory operation kinds.
///
/// `Cas` is not a RISC-V AMO, but MCS-style locks need either LR/SC or CAS;
/// we model the LR/SC pair as a single CAS performed at the coherence point
/// (documented substitution — the timing is equivalent to a successful LR/SC
/// pair executed under an exclusive line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmoOp {
    /// Atomic swap; returns the old value.
    Swap,
    /// Atomic add; returns the old value.
    Add,
    /// Atomic AND.
    And,
    /// Atomic OR.
    Or,
    /// Atomic signed max.
    Max,
    /// Atomic signed min.
    Min,
    /// Compare-and-swap: stores `wdata` iff current == `expected`; returns
    /// the old value.
    Cas,
}

/// Operations accepted by the CPU-side port of a private cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Scalar load of `width` bytes.
    Load(Width),
    /// Scalar store of `width` bytes.
    Store(Width),
    /// Atomic read-modify-write of `width` bytes.
    Amo(AmoOp, Width),
    /// Whole-cacheline load (used by the eFPGA side: "the eFPGA can load up
    /// to one line per cycle", Sec. V-C).
    LoadLine,
    /// Instruction-side line fetch (shared, read-only).
    IFetch,
}

/// A request into a private cache's CPU-side port.
#[derive(Clone, Copy, Debug)]
pub struct MemReq {
    /// Caller-chosen id echoed in the response.
    pub id: u64,
    /// Operation.
    pub op: MemOp,
    /// Byte address (must be naturally aligned for the width).
    pub addr: Addr,
    /// Store/AMO operand (low `width` bytes significant).
    pub wdata: u64,
    /// Second operand for [`AmoOp::Cas`] (the expected value).
    pub expected: u64,
}

impl MemReq {
    /// Convenience constructor for a load.
    pub fn load(id: u64, addr: Addr, width: Width) -> Self {
        MemReq {
            id,
            op: MemOp::Load(width),
            addr,
            wdata: 0,
            expected: 0,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(id: u64, addr: Addr, width: Width, wdata: u64) -> Self {
        MemReq {
            id,
            op: MemOp::Store(width),
            addr,
            wdata,
            expected: 0,
        }
    }

    /// Convenience constructor for a whole-line load.
    pub fn load_line(id: u64, addr: Addr) -> Self {
        MemReq {
            id,
            op: MemOp::LoadLine,
            addr,
            wdata: 0,
            expected: 0,
        }
    }

    /// Convenience constructor for an atomic.
    pub fn amo(id: u64, op: AmoOp, addr: Addr, width: Width, wdata: u64, expected: u64) -> Self {
        MemReq {
            id,
            op: MemOp::Amo(op, width),
            addr,
            wdata,
            expected,
        }
    }
}

/// A response from a private cache's CPU-side port.
#[derive(Clone, Copy, Debug)]
pub struct MemResp {
    /// Echo of the request id.
    pub id: u64,
    /// Loaded value (old value for AMOs; zero for stores).
    pub rdata: u64,
    /// Whole-line data for [`MemOp::LoadLine`].
    pub line: Option<LineData>,
    /// Whether the upper cache (L1) may retain this line. False when the
    /// serving cache did not install it (a fill invalidated in flight is
    /// served once and discarded); caching it above would break inclusion.
    pub cacheable: bool,
    /// Latency attribution for this transaction.
    pub breakdown: LatencyBreakdown,
}

mod pack_impls {
    use duet_sim::{Pack, SnapError, SnapReader, SnapWriter};

    use super::{LineAddr, MemOp, MemReq, MemResp, Width};
    use crate::types::AmoOp;

    impl Pack for LineAddr {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.0);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(LineAddr(r.u64()?))
        }
    }

    impl Pack for Width {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(*self as u8);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                1 => Ok(Width::B1),
                2 => Ok(Width::B2),
                4 => Ok(Width::B4),
                8 => Ok(Width::B8),
                _ => Err(SnapError::Corrupt("invalid access width")),
            }
        }
    }

    impl Pack for AmoOp {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                AmoOp::Swap => 0,
                AmoOp::Add => 1,
                AmoOp::And => 2,
                AmoOp::Or => 3,
                AmoOp::Max => 4,
                AmoOp::Min => 5,
                AmoOp::Cas => 6,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(AmoOp::Swap),
                1 => Ok(AmoOp::Add),
                2 => Ok(AmoOp::And),
                3 => Ok(AmoOp::Or),
                4 => Ok(AmoOp::Max),
                5 => Ok(AmoOp::Min),
                6 => Ok(AmoOp::Cas),
                _ => Err(SnapError::Corrupt("invalid AMO opcode")),
            }
        }
    }

    impl Pack for MemOp {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                MemOp::Load(width) => {
                    w.u8(0);
                    width.pack(w);
                }
                MemOp::Store(width) => {
                    w.u8(1);
                    width.pack(w);
                }
                MemOp::Amo(op, width) => {
                    w.u8(2);
                    op.pack(w);
                    width.pack(w);
                }
                MemOp::LoadLine => w.u8(3),
                MemOp::IFetch => w.u8(4),
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(MemOp::Load(Width::unpack(r)?)),
                1 => Ok(MemOp::Store(Width::unpack(r)?)),
                2 => Ok(MemOp::Amo(AmoOp::unpack(r)?, Width::unpack(r)?)),
                3 => Ok(MemOp::LoadLine),
                4 => Ok(MemOp::IFetch),
                _ => Err(SnapError::Corrupt("invalid MemOp discriminant")),
            }
        }
    }

    impl Pack for MemReq {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.id);
            self.op.pack(w);
            w.u64(self.addr);
            w.u64(self.wdata);
            w.u64(self.expected);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(MemReq {
                id: r.u64()?,
                op: MemOp::unpack(r)?,
                addr: r.u64()?,
                wdata: r.u64()?,
                expected: r.u64()?,
            })
        }
    }

    impl Pack for MemResp {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.id);
            w.u64(self.rdata);
            self.line.pack(w);
            self.cacheable.pack(w);
            self.breakdown.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(MemResp {
                id: r.u64()?,
                rdata: r.u64()?,
                line: Option::unpack(r)?,
                cacheable: bool::unpack(r)?,
                breakdown: Pack::unpack(r)?,
            })
        }
    }
}

/// Reads `width` bytes at `offset` in a line as a little-endian u64.
///
/// # Panics
///
/// Panics if `offset + width` exceeds the line.
pub fn read_scalar(line: &LineData, offset: usize, width: Width) -> u64 {
    let n = width.bytes();
    assert!(
        offset + n <= LINE_BYTES,
        "scalar read crosses line boundary"
    );
    let mut v = 0u64;
    for i in 0..n {
        v |= u64::from(line[offset + i]) << (8 * i);
    }
    v
}

/// Writes the low `width` bytes of `value` at `offset` in a line
/// (little-endian).
///
/// # Panics
///
/// Panics if `offset + width` exceeds the line.
pub fn write_scalar(line: &mut LineData, offset: usize, width: Width, value: u64) {
    let n = width.bytes();
    assert!(
        offset + n <= LINE_BYTES,
        "scalar write crosses line boundary"
    );
    for i in 0..n {
        line[offset + i] = (value >> (8 * i)) as u8;
    }
}

/// Applies an atomic op to `width` bytes at `offset`, returning the old value.
pub fn apply_amo(
    line: &mut LineData,
    offset: usize,
    width: Width,
    op: AmoOp,
    wdata: u64,
    expected: u64,
) -> u64 {
    let old = read_scalar(line, offset, width);
    let mask = width.mask();
    let w = wdata & mask;
    let new = match op {
        AmoOp::Swap => w,
        AmoOp::Add => old.wrapping_add(w) & mask,
        AmoOp::And => old & w,
        AmoOp::Or => old | w,
        AmoOp::Max => {
            let sign_ext = |v: u64| -> i64 {
                let shift = 64 - width.bytes() * 8;
                ((v << shift) as i64) >> shift
            };
            if sign_ext(old) >= sign_ext(w) {
                old
            } else {
                w
            }
        }
        AmoOp::Min => {
            let sign_ext = |v: u64| -> i64 {
                let shift = 64 - width.bytes() * 8;
                ((v << shift) as i64) >> shift
            };
            if sign_ext(old) <= sign_ext(w) {
                old
            } else {
                w
            }
        }
        AmoOp::Cas => {
            if old == expected & mask {
                w
            } else {
                old
            }
        }
    };
    write_scalar(line, offset, width, new);
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_math() {
        assert_eq!(LineAddr::containing(0x1234).0, 0x123);
        assert_eq!(LineAddr(0x123).base(), 0x1230);
        assert_eq!(LineAddr::offset(0x1234), 4);
        assert_eq!(LineAddr::offset(0x1230), 0);
    }

    #[test]
    fn scalar_roundtrip() {
        let mut line = [0u8; LINE_BYTES];
        write_scalar(&mut line, 8, Width::B8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(read_scalar(&line, 8, Width::B8), 0xDEAD_BEEF_CAFE_F00D);
        write_scalar(&mut line, 0, Width::B2, 0xABCD);
        assert_eq!(read_scalar(&line, 0, Width::B2), 0xABCD);
        assert_eq!(read_scalar(&line, 0, Width::B1), 0xCD);
    }

    #[test]
    fn scalar_write_is_masked() {
        let mut line = [0xFFu8; LINE_BYTES];
        write_scalar(&mut line, 0, Width::B4, 0x1122_3344_5566_7788);
        assert_eq!(read_scalar(&line, 0, Width::B4), 0x5566_7788);
        // Adjacent bytes untouched.
        assert_eq!(line[4], 0xFF);
    }

    #[test]
    fn amo_add_and_swap() {
        let mut line = [0u8; LINE_BYTES];
        write_scalar(&mut line, 0, Width::B8, 10);
        let old = apply_amo(&mut line, 0, Width::B8, AmoOp::Add, 5, 0);
        assert_eq!(old, 10);
        assert_eq!(read_scalar(&line, 0, Width::B8), 15);
        let old = apply_amo(&mut line, 0, Width::B8, AmoOp::Swap, 99, 0);
        assert_eq!(old, 15);
        assert_eq!(read_scalar(&line, 0, Width::B8), 99);
    }

    #[test]
    fn amo_cas_success_and_failure() {
        let mut line = [0u8; LINE_BYTES];
        write_scalar(&mut line, 0, Width::B8, 7);
        let old = apply_amo(&mut line, 0, Width::B8, AmoOp::Cas, 8, 7);
        assert_eq!(old, 7);
        assert_eq!(read_scalar(&line, 0, Width::B8), 8);
        let old = apply_amo(&mut line, 0, Width::B8, AmoOp::Cas, 99, 7);
        assert_eq!(old, 8, "failed CAS returns current value");
        assert_eq!(
            read_scalar(&line, 0, Width::B8),
            8,
            "failed CAS writes nothing"
        );
    }

    #[test]
    fn amo_minmax_signed() {
        let mut line = [0u8; LINE_BYTES];
        write_scalar(&mut line, 0, Width::B4, (-5i32) as u32 as u64);
        apply_amo(&mut line, 0, Width::B4, AmoOp::Max, 3, 0);
        assert_eq!(read_scalar(&line, 0, Width::B4) as u32 as i32, 3);
        apply_amo(
            &mut line,
            0,
            Width::B4,
            AmoOp::Min,
            (-9i32) as u32 as u64,
            0,
        );
        assert_eq!(read_scalar(&line, 0, Width::B4) as u32 as i32, -9);
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::B1.mask(), 0xFF);
        assert_eq!(Width::B4.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::B8.mask(), u64::MAX);
    }
}
