//! Coherence protocol messages exchanged between private caches (including
//! Proxy Caches) and the distributed L3 directory shards.
//!
//! The protocol is a blocking-directory MESI in the style of the OpenPiton
//! P-Mesh / Wisconsin GEMS `MESI_Two_Level` protocols:
//!
//! * the **home** directory shard serializes transactions per line — while a
//!   transaction is in flight the line is *busy* and later requests queue;
//! * a requestor finishes a transaction by sending `Unblock`, which releases
//!   the busy state;
//! * invalidation acknowledgements flow directly from sharers to the
//!   requestor (the directory tells the requestor how many to expect);
//! * on a downgrade (`FwdGetS`) the previous owner copies the dirty line
//!   back to the home (`WBData`) in parallel with sending it to the
//!   requestor.

use duet_noc::{NodeId, VNet};
use duet_sim::LatencyBreakdown;

use crate::types::{LineAddr, LineData};

/// Ownership level granted by a data response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Grant {
    /// Shared, read-only.
    S,
    /// Exclusive, clean (granted on a read miss when no other sharer exists).
    E,
    /// Modified-permission (granted on a write miss / upgrade).
    M,
}

/// A coherence protocol message. The sender's node id travels in the NoC
/// message envelope ([`duet_noc::Message::src`]).
#[derive(Clone, Debug)]
pub enum CoherenceMsg {
    // ----- VNet::Req: private cache -> home directory -----
    /// Read request (load miss).
    GetS {
        /// Target line.
        line: LineAddr,
    },
    /// Write/upgrade request (store or AMO miss).
    GetM {
        /// Target line.
        line: LineAddr,
    },
    /// Write-back of an owned (E or M) line being evicted.
    PutM {
        /// Evicted line.
        line: LineAddr,
        /// Line contents (clean copy for E evictions).
        data: LineData,
    },

    // ----- VNet::Fwd: home directory -> private cache -----
    /// Downgrade request: send the line to `requestor` (shared) and copy it
    /// back to the home.
    FwdGetS {
        /// Target line.
        line: LineAddr,
        /// Node that issued the triggering `GetS`.
        requestor: NodeId,
        /// Attribution accumulated so far in this transaction.
        breakdown: LatencyBreakdown,
    },
    /// Ownership transfer: send the line to `requestor` and invalidate.
    FwdGetM {
        /// Target line.
        line: LineAddr,
        /// Node that issued the triggering `GetM`.
        requestor: NodeId,
        /// Attribution accumulated so far in this transaction.
        breakdown: LatencyBreakdown,
    },
    /// Invalidate a shared copy; acknowledge directly to `requestor`.
    Inv {
        /// Target line.
        line: LineAddr,
        /// Node collecting the acknowledgement.
        requestor: NodeId,
    },
    /// Acknowledges a `PutM`; the write-back is complete.
    PutAck {
        /// Written-back line.
        line: LineAddr,
    },

    // ----- VNet::Resp -----
    /// Data response from the home directory.
    Data {
        /// Filled line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Ownership granted.
        grant: Grant,
        /// Number of `InvAck`s the requestor must collect before the fill
        /// is complete.
        acks: u32,
        /// Attribution accumulated so far (request flight + home processing).
        breakdown: LatencyBreakdown,
    },
    /// Data response from the previous owner (via `FwdGetS`/`FwdGetM`).
    DataOwner {
        /// Filled line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Ownership granted (`S` after `FwdGetS`, `M` after `FwdGetM`).
        grant: Grant,
        /// Attribution accumulated so far.
        breakdown: LatencyBreakdown,
    },
    /// Invalidation acknowledgement (sharer -> requestor).
    InvAck {
        /// Invalidated line.
        line: LineAddr,
    },
    /// Dirty copy-back from a downgraded owner to the home.
    WBData {
        /// Copied-back line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
    },
    /// Transaction-complete notification (requestor -> home); releases the
    /// home's per-line busy state.
    Unblock {
        /// Completed line.
        line: LineAddr,
    },
}

impl CoherenceMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match self {
            CoherenceMsg::GetS { line }
            | CoherenceMsg::GetM { line }
            | CoherenceMsg::PutM { line, .. }
            | CoherenceMsg::FwdGetS { line, .. }
            | CoherenceMsg::FwdGetM { line, .. }
            | CoherenceMsg::Inv { line, .. }
            | CoherenceMsg::PutAck { line }
            | CoherenceMsg::Data { line, .. }
            | CoherenceMsg::DataOwner { line, .. }
            | CoherenceMsg::InvAck { line }
            | CoherenceMsg::WBData { line, .. }
            | CoherenceMsg::Unblock { line } => *line,
        }
    }

    /// The virtual network this message type travels on.
    pub fn vnet(&self) -> VNet {
        match self {
            CoherenceMsg::GetS { .. } | CoherenceMsg::GetM { .. } | CoherenceMsg::PutM { .. } => {
                VNet::Req
            }
            CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetM { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::PutAck { .. } => VNet::Fwd,
            CoherenceMsg::Data { .. }
            | CoherenceMsg::DataOwner { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::WBData { .. }
            | CoherenceMsg::Unblock { .. } => VNet::Resp,
        }
    }

    /// Message size in 64-bit flits: one header flit plus two flits per
    /// 16-byte data payload.
    pub fn flits(&self) -> u32 {
        match self {
            CoherenceMsg::PutM { .. }
            | CoherenceMsg::Data { .. }
            | CoherenceMsg::DataOwner { .. }
            | CoherenceMsg::WBData { .. } => 3,
            _ => 1,
        }
    }
}

mod pack_impls {
    use duet_sim::{LatencyBreakdown, Pack, SnapError, SnapReader, SnapWriter};

    use super::{CoherenceMsg, Grant};
    use crate::types::{LineAddr, LineData};

    impl Pack for Grant {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                Grant::S => 0,
                Grant::E => 1,
                Grant::M => 2,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(Grant::S),
                1 => Ok(Grant::E),
                2 => Ok(Grant::M),
                _ => Err(SnapError::Corrupt("invalid Grant discriminant")),
            }
        }
    }

    impl Pack for CoherenceMsg {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                CoherenceMsg::GetS { line } => {
                    w.u8(0);
                    line.pack(w);
                }
                CoherenceMsg::GetM { line } => {
                    w.u8(1);
                    line.pack(w);
                }
                CoherenceMsg::PutM { line, data } => {
                    w.u8(2);
                    line.pack(w);
                    data.pack(w);
                }
                CoherenceMsg::FwdGetS {
                    line,
                    requestor,
                    breakdown,
                } => {
                    w.u8(3);
                    line.pack(w);
                    w.len64(*requestor);
                    breakdown.pack(w);
                }
                CoherenceMsg::FwdGetM {
                    line,
                    requestor,
                    breakdown,
                } => {
                    w.u8(4);
                    line.pack(w);
                    w.len64(*requestor);
                    breakdown.pack(w);
                }
                CoherenceMsg::Inv { line, requestor } => {
                    w.u8(5);
                    line.pack(w);
                    w.len64(*requestor);
                }
                CoherenceMsg::PutAck { line } => {
                    w.u8(6);
                    line.pack(w);
                }
                CoherenceMsg::Data {
                    line,
                    data,
                    grant,
                    acks,
                    breakdown,
                } => {
                    w.u8(7);
                    line.pack(w);
                    data.pack(w);
                    grant.pack(w);
                    acks.pack(w);
                    breakdown.pack(w);
                }
                CoherenceMsg::DataOwner {
                    line,
                    data,
                    grant,
                    breakdown,
                } => {
                    w.u8(8);
                    line.pack(w);
                    data.pack(w);
                    grant.pack(w);
                    breakdown.pack(w);
                }
                CoherenceMsg::InvAck { line } => {
                    w.u8(9);
                    line.pack(w);
                }
                CoherenceMsg::WBData { line, data } => {
                    w.u8(10);
                    line.pack(w);
                    data.pack(w);
                }
                CoherenceMsg::Unblock { line } => {
                    w.u8(11);
                    line.pack(w);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let tag = r.u8()?;
            let line = LineAddr::unpack(r)?;
            Ok(match tag {
                0 => CoherenceMsg::GetS { line },
                1 => CoherenceMsg::GetM { line },
                2 => CoherenceMsg::PutM {
                    line,
                    data: LineData::unpack(r)?,
                },
                3 => CoherenceMsg::FwdGetS {
                    line,
                    requestor: r.len64()?,
                    breakdown: LatencyBreakdown::unpack(r)?,
                },
                4 => CoherenceMsg::FwdGetM {
                    line,
                    requestor: r.len64()?,
                    breakdown: LatencyBreakdown::unpack(r)?,
                },
                5 => CoherenceMsg::Inv {
                    line,
                    requestor: r.len64()?,
                },
                6 => CoherenceMsg::PutAck { line },
                7 => CoherenceMsg::Data {
                    line,
                    data: LineData::unpack(r)?,
                    grant: Grant::unpack(r)?,
                    acks: u32::unpack(r)?,
                    breakdown: LatencyBreakdown::unpack(r)?,
                },
                8 => CoherenceMsg::DataOwner {
                    line,
                    data: LineData::unpack(r)?,
                    grant: Grant::unpack(r)?,
                    breakdown: LatencyBreakdown::unpack(r)?,
                },
                9 => CoherenceMsg::InvAck { line },
                10 => CoherenceMsg::WBData {
                    line,
                    data: LineData::unpack(r)?,
                },
                11 => CoherenceMsg::Unblock { line },
                _ => return Err(SnapError::Corrupt("invalid CoherenceMsg discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn vnet_assignment() {
        assert_eq!(CoherenceMsg::GetS { line: l(1) }.vnet(), VNet::Req);
        assert_eq!(
            CoherenceMsg::Inv {
                line: l(1),
                requestor: 0
            }
            .vnet(),
            VNet::Fwd
        );
        assert_eq!(CoherenceMsg::Unblock { line: l(1) }.vnet(), VNet::Resp);
    }

    #[test]
    fn data_messages_are_three_flits() {
        let d = CoherenceMsg::Data {
            line: l(2),
            data: [0; 16],
            grant: Grant::E,
            acks: 0,
            breakdown: LatencyBreakdown::new(),
        };
        assert_eq!(d.flits(), 3);
        assert_eq!(CoherenceMsg::GetS { line: l(2) }.flits(), 1);
        assert_eq!(
            CoherenceMsg::PutM {
                line: l(2),
                data: [0; 16]
            }
            .flits(),
            3
        );
    }

    #[test]
    fn line_extraction() {
        assert_eq!(CoherenceMsg::PutAck { line: l(9) }.line(), l(9));
        assert_eq!(CoherenceMsg::InvAck { line: l(3) }.line(), l(3));
    }
}
