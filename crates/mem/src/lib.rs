#![warn(missing_docs)]
//! # duet-mem
//!
//! The memory substrate of the Duet reproduction: a cycle-level model of the
//! OpenPiton P-Mesh cache hierarchy that Dolly builds on (Sec. IV of the
//! paper):
//!
//! * [`l1::L1Cache`] — small write-through L1D in front of each core,
//! * [`priv_cache::PrivCache`] — the private, write-back, MESI L2. The same
//!   component is reused as the **Proxy Cache** in `duet-core` and, ticked
//!   on the eFPGA clock, as the **slow cache** baseline of Sec. V-C,
//! * [`directory::L3Shard`] — one distributed L3 slice + blocking directory
//!   per tile, running directory-based MESI over three NoC virtual networks,
//! * [`tlb`] — page tables and the per-Memory-Hub TLB of Sec. II-D.
//!
//! The caches are *functional*: they carry real line data, so protocol bugs
//! become data corruption that the test suite catches, not just timing
//! noise.
//!
//! # Example: a load miss resolved by a directory shard
//!
//! ```
//! use duet_mem::priv_cache::{CacheConfig, HomeMap, PrivCache};
//! use duet_mem::types::{MemReq, Width};
//! use duet_sim::{Clock, Time};
//!
//! let clock = Clock::ghz1();
//! let mut l2 = PrivCache::new(CacheConfig::dolly_l2(clock), 0, HomeMap::new(vec![1]));
//! l2.cpu_request(MemReq::load(1, 0x40, Width::B8));
//! l2.tick(Time::from_ps(1000));
//! let (dst, msg) = l2.pop_outgoing(Time::from_ps(10_000)).expect("miss goes to home");
//! assert_eq!(dst, 1);
//! assert!(matches!(msg, duet_mem::msg::CoherenceMsg::GetS { .. }));
//! ```

pub mod array;
pub mod directory;
pub mod l1;
pub mod msg;
pub mod priv_cache;
pub mod testkit;
pub mod tlb;
pub mod types;

pub use directory::{DirConfig, DirStats, L3Shard};
pub use l1::{L1Cache, L1Config, L1Stats};
pub use msg::{CoherenceMsg, Grant};
pub use priv_cache::{CacheConfig, CacheStats, HomeMap, InvalReason, LineState, PrivCache};
pub use tlb::{PagePerms, PageTable, Ppn, Tlb, Translation, Vpn};
pub use types::{Addr, AmoOp, LineAddr, LineData, MemOp, MemReq, MemResp, Width, LINE_BYTES};
