//! The L1 data cache sitting between a core and its private L2.
//!
//! Modelled after OpenPiton's L1D: small (8 KB), write-through, inclusive in
//! the L2's coherence domain. The L1 never holds a line its L2 doesn't; the
//! tile glue drains [`crate::priv_cache::PrivCache::take_back_invalidations`]
//! into [`L1Cache::invalidate`] every cycle to preserve inclusion.
//!
//! Timing: an L1 hit is satisfied in `hit_cycles` (1 by default); misses and
//! all stores/AMOs are forwarded to the L2. Stores update a present line in
//! place (write-through, write-around on miss).

use crate::array::CacheArray;
use crate::types::{read_scalar, write_scalar, LineAddr, LineData, Width};

/// Configuration of an L1 data cache.
#[derive(Clone, Copy, Debug)]
pub struct L1Config {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in core cycles.
    pub hit_cycles: u32,
}

impl L1Config {
    /// Dolly-like L1D: 8 KB, 4-way, 16 B lines, single-cycle hits.
    pub fn dolly_l1d() -> Self {
        L1Config {
            sets: 128,
            ways: 4,
            hit_cycles: 1,
        }
    }
}

/// Event counters for an L1 cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1Stats {
    /// Load hits.
    pub hits: u64,
    /// Load misses.
    pub misses: u64,
    /// Stores written through.
    pub stores: u64,
    /// Back-invalidations applied.
    pub invalidations: u64,
}

/// A write-through L1 data cache. See module docs.
#[derive(Clone, Debug)]
pub struct L1Cache {
    cfg: L1Config,
    array: CacheArray<()>,
    stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty L1.
    pub fn new(cfg: L1Config) -> Self {
        L1Cache {
            cfg,
            array: CacheArray::new(cfg.sets, cfg.ways),
            stats: L1Stats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &L1Config {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }

    /// Attempts to satisfy a scalar load. Returns the value on a hit.
    pub fn load(&mut self, addr: u64, width: Width) -> Option<u64> {
        let line = LineAddr::containing(addr);
        match self.array.get(line) {
            Some((_, data)) => {
                self.stats.hits += 1;
                Some(read_scalar(data, LineAddr::offset(addr), width))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a line filled by the L2.
    pub fn fill(&mut self, line: LineAddr, data: LineData) {
        self.array.insert(line, data, ());
    }

    /// Write-through store: updates the line if present (write-around
    /// otherwise). The store is always also sent to the L2 by the caller.
    pub fn store(&mut self, addr: u64, width: Width, value: u64) {
        self.stats.stores += 1;
        let line = LineAddr::containing(addr);
        if let Some((_, data)) = self.array.get_mut(line) {
            write_scalar(data, LineAddr::offset(addr), width, value);
        }
    }

    /// Removes a line (back-invalidation from the L2).
    pub fn invalidate(&mut self, line: LineAddr) {
        if self.array.remove(line).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Removes every line.
    pub fn invalidate_all(&mut self) {
        let n = self.array.drain().len() as u64;
        self.stats.invalidations += n;
    }

    /// Whether the line is resident (test aid).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.array.peek(line).is_some()
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{L1Cache, L1Stats};

    impl Pack for L1Stats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.hits);
            w.u64(self.misses);
            w.u64(self.stores);
            w.u64(self.invalidations);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(L1Stats {
                hits: r.u64()?,
                misses: r.u64()?,
                stores: r.u64()?,
                invalidations: r.u64()?,
            })
        }
    }

    impl Snap for L1Cache {
        fn save(&self, w: &mut SnapWriter) {
            self.array.save(w);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.array.load(r)?;
            self.stats = L1Stats::unpack(r)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut l1 = L1Cache::new(L1Config::dolly_l1d());
        assert_eq!(l1.load(0x100, Width::B8), None);
        let mut d = [0u8; 16];
        write_scalar(&mut d, 0, Width::B8, 77);
        l1.fill(LineAddr::containing(0x100), d);
        assert_eq!(l1.load(0x100, Width::B8), Some(77));
        assert_eq!(l1.stats().hits, 1);
        assert_eq!(l1.stats().misses, 1);
    }

    #[test]
    fn store_updates_present_line() {
        let mut l1 = L1Cache::new(L1Config::dolly_l1d());
        l1.fill(LineAddr::containing(0x200), [0u8; 16]);
        l1.store(0x208, Width::B4, 0xAB);
        assert_eq!(l1.load(0x208, Width::B4), Some(0xAB));
    }

    #[test]
    fn store_miss_is_write_around() {
        let mut l1 = L1Cache::new(L1Config::dolly_l1d());
        l1.store(0x300, Width::B8, 5);
        assert!(!l1.contains(LineAddr::containing(0x300)));
    }

    #[test]
    fn invalidation_removes_line() {
        let mut l1 = L1Cache::new(L1Config::dolly_l1d());
        l1.fill(LineAddr::containing(0x100), [1u8; 16]);
        l1.invalidate(LineAddr::containing(0x100));
        assert_eq!(l1.load(0x100, Width::B8), None);
        assert_eq!(l1.stats().invalidations, 1);
        // Invalidating an absent line is a no-op.
        l1.invalidate(LineAddr::containing(0x500));
        assert_eq!(l1.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut l1 = L1Cache::new(L1Config::dolly_l1d());
        for i in 0..10u64 {
            l1.fill(LineAddr(i), [0u8; 16]);
        }
        l1.invalidate_all();
        for i in 0..10u64 {
            assert!(!l1.contains(LineAddr(i)));
        }
    }
}
