//! A small protocol harness wiring private caches and directory shards over
//! a real [`duet_noc::Mesh`].
//!
//! Used by this crate's protocol tests, the cross-crate property tests in
//! `tests/`, and anywhere a bare coherent memory system (no cores, no eFPGA)
//! is useful. `duet-system` builds the full Dolly tile structure; this
//! harness is deliberately minimal: node `i` hosts cache `i` for
//! `i < caches`, and every node hosts a directory shard (distributed L3).

use duet_noc::{Mesh, MeshConfig, Message};
use duet_sim::{Clock, Time};

use crate::directory::{DirConfig, L3Shard};
use crate::msg::CoherenceMsg;
use crate::priv_cache::{CacheConfig, HomeMap, PrivCache};
use crate::types::{LineAddr, LineData, MemReq, MemResp};

/// A mesh of private caches and directory shards (no cores).
pub struct ProtocolHarness {
    /// The network.
    pub mesh: Mesh<CoherenceMsg>,
    /// Private caches; cache `i` sits on node `i`.
    pub caches: Vec<PrivCache>,
    /// One L3/directory shard per node.
    pub shards: Vec<L3Shard>,
    clock: Clock,
    now: Time,
}

impl ProtocolHarness {
    /// Builds a harness with `n_caches` private caches on a `width x height`
    /// mesh (every node also hosts an L3 shard).
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` exceeds the node count.
    pub fn new(width: usize, height: usize, n_caches: usize, cache_cfg: CacheConfig) -> Self {
        let clock = cache_cfg.clock;
        let mesh_cfg = MeshConfig::new(width, height, clock);
        let nodes = mesh_cfg.nodes();
        assert!(n_caches <= nodes, "more caches than mesh nodes");
        let home = HomeMap::new((0..nodes).collect());
        let caches = (0..n_caches)
            .map(|i| PrivCache::new(cache_cfg, i, home.clone()))
            .collect();
        let shards = (0..nodes)
            .map(|i| L3Shard::new(DirConfig::dolly_l3(clock), i))
            .collect();
        ProtocolHarness {
            mesh: Mesh::new(mesh_cfg),
            caches,
            shards,
            clock,
            now: Time::ZERO,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The home map used by the caches.
    pub fn home(&self) -> HomeMap {
        HomeMap::new((0..self.mesh.config().nodes()).collect())
    }

    /// Writes a line into the memory image at its home shard.
    pub fn poke_line(&mut self, line: LineAddr, data: LineData) {
        let home = self.home().home_of(line);
        self.shards[home].poke_line(line, data);
    }

    /// Reads a line from the memory image (home shard) — not coherent if a
    /// cache holds the line dirty; see [`peek_coherent`].
    ///
    /// [`peek_coherent`]: ProtocolHarness::peek_coherent
    pub fn peek_line(&self, line: LineAddr) -> LineData {
        let home = self.home().home_of(line);
        self.shards[home].peek_line(line)
    }

    /// Reads the globally visible value of a line: the owner's copy if one
    /// exists, else the memory image.
    pub fn peek_coherent(&self, line: LineAddr) -> LineData {
        let home = self.home().home_of(line);
        if let Some(owner) = self.shards[home].owner_of(line) {
            if owner < self.caches.len() {
                if let Some(d) = self.caches[owner].peek_line(line) {
                    return d;
                }
            }
        }
        self.shards[home].peek_line(line)
    }

    /// Issues a CPU-side request to cache `c`.
    pub fn request(&mut self, c: usize, req: MemReq) {
        self.caches[c].cpu_request(req);
    }

    /// Advances one system-clock cycle, moving messages between components.
    pub fn step(&mut self) -> Vec<(usize, MemResp)> {
        self.now = self.clock.next_edge_after(self.now);
        let now = self.now;

        // Drain cache outgoing into the mesh; eject mesh traffic into
        // caches and shards; tick everything.
        for c in 0..self.caches.len() {
            while self.mesh.can_inject(c, duet_noc::VNet::Req)
                && self.mesh.can_inject(c, duet_noc::VNet::Fwd)
                && self.mesh.can_inject(c, duet_noc::VNet::Resp)
            {
                let Some((dst, msg)) = self.caches[c].pop_outgoing(now) else {
                    break;
                };
                let vnet = msg.vnet();
                let flits = msg.flits();
                self.mesh
                    .inject(now, Message::new(c, dst, vnet, flits, msg))
                    .expect("vnet space checked");
            }
        }
        for s in 0..self.shards.len() {
            loop {
                let node = self.shards[s].node();
                let ok = duet_noc::VNet::ALL
                    .iter()
                    .all(|&v| self.mesh.can_inject(node, v));
                if !ok {
                    break;
                }
                let Some((dst, msg)) = self.shards[s].pop_outgoing(now) else {
                    break;
                };
                let vnet = msg.vnet();
                let flits = msg.flits();
                self.mesh
                    .inject(now, Message::new(node, dst, vnet, flits, msg))
                    .expect("vnet space checked");
            }
        }

        self.mesh.tick(now);

        // Ejection: directory-bound vs cache-bound messages are routed by
        // message type.
        let nodes = self.mesh.config().nodes();
        for node in 0..nodes {
            for &vnet in &duet_noc::VNet::ALL {
                while let Some(m) = self.mesh.eject(node, vnet) {
                    let flight = now.saturating_sub(m.injected_at);
                    match &m.payload {
                        CoherenceMsg::GetS { .. }
                        | CoherenceMsg::GetM { .. }
                        | CoherenceMsg::PutM { .. }
                        | CoherenceMsg::WBData { .. }
                        | CoherenceMsg::Unblock { .. } => {
                            self.shards[node].handle_msg_with_flight(now, m.src, m.payload, flight);
                        }
                        _ => {
                            assert!(node < self.caches.len(), "cache message to shard-only node");
                            self.caches[node].handle_msg(now, m.src, m.payload, flight);
                        }
                    }
                }
            }
        }

        for c in &mut self.caches {
            c.tick(now);
            // No L1s in this harness; discard back-invalidations.
            let _ = c.take_back_invalidations();
        }
        for s in &mut self.shards {
            s.tick(now);
        }

        let mut resps = Vec::new();
        for (i, c) in self.caches.iter_mut().enumerate() {
            while let Some(r) = c.pop_cpu_resp(now) {
                resps.push((i, r));
            }
        }
        resps
    }

    /// Steps until cache `c` produces a response (panics after `max` cycles).
    pub fn run_until_resp(&mut self, c: usize, max: u64) -> (Time, MemResp) {
        for _ in 0..max {
            for (i, r) in self.step() {
                if i == c {
                    return (self.now, r);
                }
            }
        }
        panic!("no response from cache {c} within {max} cycles");
    }

    /// Steps until the whole system is quiescent (no buffered work
    /// anywhere). Returns the number of cycles taken.
    ///
    /// # Panics
    ///
    /// Panics if the system does not quiesce within `max` cycles.
    pub fn quiesce(&mut self, max: u64) -> u64 {
        for i in 0..max {
            let _ = self.step();
            let idle = self.caches.iter().all(|c| c.is_idle())
                && self.shards.iter().all(|s| s.is_idle())
                && self.mesh.is_idle();
            if idle {
                return i;
            }
        }
        panic!("system did not quiesce within {max} cycles");
    }

    /// Protocol invariant: at most one cache holds a line in E/M, and if one
    /// does, no other cache holds it at all (single-writer/multi-reader).
    pub fn check_swmr(&self, line: LineAddr) {
        use crate::priv_cache::LineState;
        let holders: Vec<(usize, LineState)> = self
            .caches
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.line_state(line).map(|s| (i, s)))
            .collect();
        let owners = holders
            .iter()
            .filter(|(_, s)| matches!(s, LineState::E | LineState::M))
            .count();
        assert!(owners <= 1, "multiple owners of {line:?}: {holders:?}");
        if owners == 1 {
            assert_eq!(
                holders.len(),
                1,
                "owner coexists with sharers on {line:?}: {holders:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{read_scalar, AmoOp, Width};

    fn harness(n: usize) -> ProtocolHarness {
        ProtocolHarness::new(2, 2, n, CacheConfig::dolly_l2(Clock::ghz1()))
    }

    #[test]
    fn end_to_end_load() {
        let mut h = harness(1);
        let mut d = [0u8; 16];
        crate::types::write_scalar(&mut d, 0, Width::B8, 1234);
        h.poke_line(LineAddr::containing(0x400), d);
        h.request(0, MemReq::load(1, 0x400, Width::B8));
        let (_, r) = h.run_until_resp(0, 500);
        assert_eq!(r.rdata, 1234);
        h.quiesce(100);
    }

    #[test]
    fn store_then_load_same_cache() {
        let mut h = harness(1);
        h.request(0, MemReq::store(1, 0x800, Width::B8, 99));
        h.run_until_resp(0, 500);
        h.request(0, MemReq::load(2, 0x800, Width::B8));
        let (_, r) = h.run_until_resp(0, 100);
        assert_eq!(r.rdata, 99, "store hit after fill");
    }

    #[test]
    fn producer_consumer_two_caches() {
        let mut h = harness(2);
        // Cache 0 writes; cache 1 reads the same line (FwdGetS path).
        h.request(0, MemReq::store(1, 0x1000, Width::B8, 0xBEEF));
        h.run_until_resp(0, 500);
        h.request(1, MemReq::load(2, 0x1000, Width::B8));
        let (_, r) = h.run_until_resp(1, 500);
        assert_eq!(r.rdata, 0xBEEF, "reader sees writer's value via coherence");
        h.quiesce(200);
        h.check_swmr(LineAddr::containing(0x1000));
        // Memory image updated by the copy-back.
        let line = h.peek_line(LineAddr::containing(0x1000));
        assert_eq!(read_scalar(&line, 0, Width::B8), 0xBEEF);
    }

    #[test]
    fn write_write_migration() {
        let mut h = harness(2);
        h.request(0, MemReq::store(1, 0x2000, Width::B8, 1));
        h.run_until_resp(0, 500);
        // Cache 1 writes the same line: FwdGetM migrates ownership.
        h.request(1, MemReq::store(2, 0x2000, Width::B8, 2));
        h.run_until_resp(1, 500);
        h.quiesce(200);
        let line = h.peek_coherent(LineAddr::containing(0x2000));
        assert_eq!(read_scalar(&line, 0, Width::B8), 2);
        h.check_swmr(LineAddr::containing(0x2000));
        assert_eq!(h.caches[0].line_state(LineAddr::containing(0x2000)), None);
    }

    #[test]
    fn read_read_then_write_invalidates_sharers() {
        let mut h = harness(3);
        h.poke_line(LineAddr::containing(0x3000), [7u8; 16]);
        // Two readers.
        h.request(0, MemReq::load(1, 0x3000, Width::B8));
        h.run_until_resp(0, 500);
        h.request(1, MemReq::load(2, 0x3000, Width::B8));
        h.run_until_resp(1, 500);
        h.quiesce(300);
        // Writer invalidates both.
        h.request(2, MemReq::store(3, 0x3000, Width::B8, 42));
        h.run_until_resp(2, 500);
        h.quiesce(300);
        assert_eq!(h.caches[0].line_state(LineAddr::containing(0x3000)), None);
        assert_eq!(h.caches[1].line_state(LineAddr::containing(0x3000)), None);
        h.check_swmr(LineAddr::containing(0x3000));
        let line = h.peek_coherent(LineAddr::containing(0x3000));
        assert_eq!(read_scalar(&line, 0, Width::B8), 42);
    }

    #[test]
    fn contended_atomic_counter() {
        // Four caches each atomically increment the same counter N times;
        // the final value must be exact — the litmus test for GetM/FwdGetM
        // serialization.
        let mut h = harness(4);
        let addr = 0x4000u64;
        let per_cache = 10u64;
        let mut remaining = [per_cache; 4];
        let mut inflight = [false; 4];
        let mut done = 0;
        let mut steps = 0u64;
        while done < 4 {
            for c in 0..4 {
                if !inflight[c] && remaining[c] > 0 {
                    h.request(
                        c,
                        MemReq::amo(100 + c as u64, AmoOp::Add, addr, Width::B8, 1, 0),
                    );
                    inflight[c] = true;
                }
            }
            for (i, _r) in h.step() {
                inflight[i] = false;
                remaining[i] -= 1;
                if remaining[i] == 0 {
                    done += 1;
                }
            }
            steps += 1;
            assert!(steps < 100_000, "livelock in contended AMO test");
        }
        h.quiesce(1000);
        let line = h.peek_coherent(LineAddr::containing(addr));
        assert_eq!(read_scalar(&line, 0, Width::B8), 4 * per_cache);
        h.check_swmr(LineAddr::containing(addr));
    }

    #[test]
    fn capacity_evictions_preserve_data() {
        // Write more conflicting lines than one set holds, then read them
        // all back: writebacks must land in memory correctly.
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            ..CacheConfig::dolly_l2(Clock::ghz1())
        };
        let mut h = ProtocolHarness::new(2, 2, 1, cfg);
        // 8 lines mapping to 2 sets: forces evictions.
        for i in 0..8u64 {
            h.request(0, MemReq::store(i, 0x9000 + i * 32, Width::B8, 1000 + i));
            h.run_until_resp(0, 2000);
        }
        h.quiesce(2000);
        for i in 0..8u64 {
            h.request(0, MemReq::load(100 + i, 0x9000 + i * 32, Width::B8));
            let (_, r) = h.run_until_resp(0, 2000);
            assert_eq!(r.rdata, 1000 + i, "line {i} lost in eviction");
        }
    }

    #[test]
    fn latency_breakdown_sums_sanely() {
        let mut h = harness(2);
        h.request(0, MemReq::store(1, 0x5000, Width::B8, 5));
        h.run_until_resp(0, 500);
        h.quiesce(300);
        // Remote dirty read: breakdown should include NoC and fast-cache time.
        h.request(1, MemReq::load(2, 0x5000, Width::B8));
        let (_, r) = h.run_until_resp(1, 500);
        assert!(r.breakdown.noc > Time::ZERO, "noc time recorded");
        assert!(r.breakdown.cache_fast > Time::ZERO, "cache time recorded");
        assert_eq!(r.breakdown.cache_slow, Time::ZERO, "no slow domain here");
        assert_eq!(r.breakdown.cdc, Time::ZERO, "no CDC here");
    }
}
