//! A tiny blocking HTTP client for the service API — used by the
//! integration tests and the load generator. One request per connection,
//! mirroring the server's `Connection: close` discipline.
//!
//! The retrying entry points ([`get_retry`], [`post_json_retry`]) wrap
//! the one-shot [`request`] with **bounded retries**: connect/transport
//! errors and 429/503 responses back off exponentially with
//! deterministic jitter (a pure function of the policy seed and the
//! attempt number — two clients with different seeds desynchronize, the
//! same client replays identically), and a server-sent `Retry-After`
//! header overrides the computed backoff. Any other status is returned
//! immediately: a 4xx is the caller's bug, not the weather.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body parsed as JSON.
    pub fn json(&self) -> Result<crate::json::Json, crate::json::JsonError> {
        crate::json::parse(&self.body)
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header as whole seconds, if present and valid.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")
            .and_then(|v| v.trim().parse().ok())
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head_text = std::str::from_utf8(&raw[..split])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 response head"))?;
    let mut lines = head_text.lines();
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut resp_headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            resp_headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(Response {
        status,
        headers: resp_headers,
        body: raw[split + 4..].to_vec(),
    })
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[], b"")
}

/// `POST path` with a JSON body and optional tenant.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    tenant: Option<&str>,
    body: &[u8],
) -> io::Result<Response> {
    let mut headers: Vec<(&str, &str)> = vec![("content-type", "application/json")];
    if let Some(t) = tenant {
        headers.push(("x-duet-tenant", t));
    }
    request(addr, "POST", path, &headers, body)
}

/// Bounded-retry behavior for transient failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 50,
            max_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), in milliseconds:
    /// `min(max, base · 2^attempt)` plus up to 50% deterministic jitter.
    /// A pure function of `(seed, attempt)` — replayable, and distinct
    /// seeds desynchronize a thundering herd.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_ms);
        let mut z = self
            .seed
            .wrapping_add((attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = if exp == 0 {
            0
        } else {
            (z ^ (z >> 31)) % (exp / 2 + 1)
        };
        exp + jitter
    }
}

/// Whether a response status is worth retrying.
fn transient_status(status: u16) -> bool {
    status == 429 || status == 503
}

/// Sends a request with bounded retries per `policy`. Retries fire on
/// transport errors and on 429/503 (honoring `Retry-After` when the
/// server sends one); every other response returns immediately. The
/// final attempt's outcome is returned as-is — including a still-429
/// response — so callers can distinguish "gave up" from "failed".
pub fn request_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    policy: &RetryPolicy,
) -> io::Result<Response> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        match request(addr, method, path, headers, body) {
            Ok(resp) if !transient_status(resp.status) => return Ok(resp),
            Ok(resp) => {
                if attempt + 1 == attempts {
                    return Ok(resp);
                }
                // Server-directed pacing wins over our own schedule.
                let ms = match resp.retry_after_secs() {
                    Some(secs) => secs.saturating_mul(1_000).min(policy.max_ms.max(1_000)),
                    None => policy.backoff_ms(attempt),
                };
                std::thread::sleep(Duration::from_millis(ms));
            }
            Err(e) => {
                if attempt + 1 == attempts {
                    return Err(e);
                }
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt)));
            }
        }
    }
    // Unreachable: the loop always returns on its final attempt.
    Err(last_err.unwrap_or_else(|| io::Error::other("retries exhausted")))
}

/// `GET path` with bounded retries.
pub fn get_retry(addr: SocketAddr, path: &str, policy: &RetryPolicy) -> io::Result<Response> {
    request_retry(addr, "GET", path, &[], b"", policy)
}

/// `POST path` (JSON body, optional tenant) with bounded retries.
pub fn post_json_retry(
    addr: SocketAddr,
    path: &str,
    tenant: Option<&str>,
    body: &[u8],
    policy: &RetryPolicy,
) -> io::Result<Response> {
    let mut headers: Vec<(&str, &str)> = vec![("content-type", "application/json")];
    if let Some(t) = tenant {
        headers.push(("x-duet-tenant", t));
    }
    request_retry(addr, "POST", path, &headers, body, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_ms: 50,
            max_ms: 400,
            seed: 42,
        };
        for attempt in 0..6 {
            let a = p.backoff_ms(attempt);
            let b = p.backoff_ms(attempt);
            assert_eq!(a, b, "same (seed, attempt) → same backoff");
            let exp = (50u64 << attempt).min(400);
            assert!(a >= exp && a <= exp + exp / 2, "{a} out of range for {exp}");
        }
        let other = RetryPolicy { seed: 43, ..p };
        assert!(
            (0..6).any(|i| p.backoff_ms(i) != other.backoff_ms(i)),
            "different seeds must desynchronize"
        );
    }

    #[test]
    fn transient_statuses() {
        assert!(transient_status(429));
        assert!(transient_status(503));
        assert!(!transient_status(200));
        assert!(!transient_status(400));
        assert!(!transient_status(408));
    }
}
