//! A tiny blocking HTTP client for the service API — used by the
//! integration tests and the load generator. One request per connection,
//! mirroring the server's `Connection: close` discipline.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body parsed as JSON.
    pub fn json(&self) -> Result<crate::json::Json, crate::json::JsonError> {
        crate::json::parse(&self.body)
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head_text = std::str::from_utf8(&raw[..split])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 response head"))?;
    let status_line = head_text.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok(Response {
        status,
        body: raw[split + 4..].to_vec(),
    })
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[], b"")
}

/// `POST path` with a JSON body and optional tenant.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    tenant: Option<&str>,
    body: &[u8],
) -> io::Result<Response> {
    let mut headers: Vec<(&str, &str)> = vec![("content-type", "application/json")];
    if let Some(t) = tenant {
        headers.push(("x-duet-tenant", t));
    }
    request(addr, "POST", path, &headers, body)
}
