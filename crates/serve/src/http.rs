//! Minimal HTTP/1.1 plumbing over `std::net` — just enough protocol for
//! the service API: one request per connection, `Content-Length` bodies,
//! `Connection: close` responses. No keep-alive, no chunked encoding, no
//! TLS; the server sits behind trusted transport (localhost or a fronting
//! proxy) by design.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest request head (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest request body accepted.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs (no percent-decoding: the API uses
    /// plain tokens only).
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a query flag is set truthily (`?verify=1`, `?wait=true`).
    pub fn query_flag(&self, key: &str) -> bool {
        matches!(self.query_get(key), Some("1" | "true" | "yes"))
    }

    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// before sending anything (a health-checker poking the port).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until the blank line; request heads are tiny and
    // this keeps the parser free of buffering/overread bookkeeping.
    loop {
        match stream.read(&mut byte)? {
            0 => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
            }
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    let text = std::str::from_utf8(&head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 request head"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing path"))?;
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name, value));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Writes a complete response and flushes. Always closes: the reply
/// carries `Connection: close` and the caller drops the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(stream, status, reason, content_type, &[], body)
}

/// [`write_response`] plus extra `(name, value)` headers — how the
/// server attaches `Retry-After` to 429/503 refusals.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Status reason phrases for the codes the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_with_query_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /v1/runs?wait=1&verify=1 HTTP/1.1\r\n\
                  Host: test\r\n\
                  X-Duet-Tenant: alice\r\n\
                  Content-Length: 4\r\n\r\nbody",
            )
            .unwrap();
            s.flush().unwrap();
            // Hold the connection open until the server side parses.
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/runs");
        assert!(req.query_flag("wait"));
        assert!(req.query_flag("verify"));
        assert_eq!(req.header("x-duet-tenant"), Some("alice"));
        assert_eq!(req.body, b"body");
        write_response(&mut stream, 200, "OK", "application/json", b"{}").unwrap();
        drop(stream);
        client.join().unwrap();
    }
}
