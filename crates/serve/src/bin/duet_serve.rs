//! `duet-serve` — the multi-tenant simulation service.
//!
//! ```text
//! duet-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!            [--max-queued N] [--max-concurrent N] [--max-sim-us N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound, then serves
//! until killed.

use std::time::Duration;

use duet_serve::server::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: duet-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20                 [--max-queued N] [--max-concurrent N] [--max-sim-us N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8787".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--workers" => cfg.workers = parse(&val("--workers")),
            "--queue-cap" => cfg.queue_cap = parse(&val("--queue-cap")),
            "--max-queued" => cfg.quota.max_queued = parse(&val("--max-queued")),
            "--max-concurrent" => cfg.quota.max_concurrent = parse(&val("--max-concurrent")),
            "--max-sim-us" => cfg.quota.max_sim_us = parse(&val("--max-sim-us")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number: {s}");
        usage()
    })
}
