//! `duet-serve` — the multi-tenant simulation service.
//!
//! ```text
//! duet-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!            [--max-queued N] [--max-concurrent N] [--max-sim-us N]
//!            [--store DIR] [--fsync always|never]
//!            [--cache-max-bytes N] [--io-timeout-secs N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound, then serves
//! until killed — or, after a `POST /v1/drain`, finishes every queued
//! and running job, flushes the store, and **exits 0** (the graceful
//! path a rolling deploy takes; `kill -9` is what the crash-recovery
//! tier is for).
//!
//! With `--store DIR`, results are persisted to an append-only,
//! CRC-verified segment log in `DIR` and recovered on the next start;
//! the startup recovery summary goes to stderr and the full report to
//! `GET /v1/recovery`.

use std::time::Duration;

use duet_serve::server::{ServeConfig, Server};
use duet_serve::store::FsyncPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: duet-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20                 [--max-queued N] [--max-concurrent N] [--max-sim-us N]\n\
         \x20                 [--store DIR] [--fsync always|never]\n\
         \x20                 [--cache-max-bytes N] [--io-timeout-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8787".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--workers" => cfg.workers = parse(&val("--workers")),
            "--queue-cap" => cfg.queue_cap = parse(&val("--queue-cap")),
            "--max-queued" => cfg.quota.max_queued = parse(&val("--max-queued")),
            "--max-concurrent" => cfg.quota.max_concurrent = parse(&val("--max-concurrent")),
            "--max-sim-us" => cfg.quota.max_sim_us = parse(&val("--max-sim-us")),
            "--store" => cfg.store_dir = Some(val("--store").into()),
            "--fsync" => {
                let v = val("--fsync");
                cfg.fsync = FsyncPolicy::parse(&v).unwrap_or_else(|| {
                    eprintln!("--fsync must be 'always' or 'never', got '{v}'");
                    usage()
                });
            }
            "--cache-max-bytes" => cfg.cache_max_bytes = parse(&val("--cache-max-bytes")),
            "--io-timeout-secs" => {
                cfg.io_timeout = Duration::from_secs(parse(&val("--io-timeout-secs")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    // Serve until drained (POST /v1/drain), then exit cleanly. A process
    // kill at any point before that is handled by startup recovery.
    server.serve_until_drained();
    eprintln!("drained; exiting");
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number: {s}");
        usage()
    })
}
