//! The service itself: listener, routing, and the cache/verify protocol.
//!
//! # API
//!
//! | Route | What it does |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /v1/health` | readiness: 200 while serving, 503 once draining |
//! | `GET /v1/stats` | cache + store + queue counters, degradation flags |
//! | `GET /v1/recovery` | the startup recovery report (requires `--store`) |
//! | `POST /v1/runs` | submit a scenario spec; `?wait=1` blocks for the result, `?verify=1` re-runs cache hits and demands byte-identity |
//! | `GET /v1/runs/<id>` | job status, progress, spec echo, result/error |
//! | `GET /v1/cache/<key>` | raw cached payload by content address |
//! | `POST /v1/drain` | begin graceful drain: finish in-flight jobs, refuse new ones |
//!
//! Tenancy comes from the `X-Duet-Tenant` header (default `"anon"`).
//! Cache-hit responses splice the stored payload bytes verbatim into the
//! envelope, so two hits on the same key are byte-identical — the
//! property the service tests pin down.
//!
//! Refusals carry structured bodies and, when a retry can help, a
//! `Retry-After` header; accepted sockets get read/write timeouts so a
//! slowloris peer costs one connection thread for a bounded time (408).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cache::{CacheConfig, ResultCache};
use crate::hostio::RealIo;
use crate::http::{read_request, reason, write_response_with, Request};
use crate::json::{obj, parse, Json};
use crate::queue::{JobStatus, JobView, Quota, ServiceState};
use crate::scenario;
use crate::spec::ScenarioSpec;
use crate::store::{DiskStore, FsyncPolicy, StoreConfig};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing simulations. `0` is allowed (jobs queue
    /// but never run) — useful for tests that pin down admission
    /// behavior without racing the execution path.
    pub workers: usize,
    /// Global queue capacity.
    pub queue_cap: usize,
    /// Per-tenant admission limits.
    pub quota: Quota,
    /// How long `?wait=1` blocks before giving up on a job.
    pub wait_timeout: Duration,
    /// Read/write timeout on accepted sockets (slowloris bound). A peer
    /// that stalls past it gets 408 and the connection is closed.
    pub io_timeout: Duration,
    /// Memory-tier cache byte budget.
    pub cache_max_bytes: u64,
    /// Durable tier directory; `None` runs memory-only.
    pub store_dir: Option<PathBuf>,
    /// Durability policy for the store tier.
    pub fsync: FsyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            quota: Quota::default(),
            wait_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(10),
            cache_max_bytes: CacheConfig::default().max_bytes,
            store_dir: None,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`shutdown`](Server::shutdown).
pub struct Server {
    state: Arc<ServiceState>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    /// With `store_dir` set, the durable tier is opened (and recovered)
    /// first; its recovery summary goes to stderr and `GET /v1/recovery`.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let store = match &cfg.store_dir {
            Some(dir) => {
                let mut store_cfg = StoreConfig::new(dir.clone());
                store_cfg.fsync = cfg.fsync;
                let store = DiskStore::open(store_cfg, Box::new(RealIo::new()))?;
                eprintln!("{}", store.recovery_report().summary());
                Some(Arc::new(store))
            }
            None => None,
        };
        let cache = ResultCache::with_config(CacheConfig {
            max_bytes: cfg.cache_max_bytes,
            store,
        });
        let state = Arc::new(ServiceState::with_cache(cfg.quota, cfg.queue_cap, cache));
        let stop = Arc::new(AtomicBool::new(false));
        let worker_threads = (0..cfg.workers)
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("duet-serve-worker{i}"))
                    .spawn(move || state.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        let accept_thread = {
            let state = state.clone();
            let stop = stop.clone();
            let wait_timeout = cfg.wait_timeout;
            let io_timeout = cfg.io_timeout;
            std::thread::Builder::new()
                .name("duet-serve-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let state = state.clone();
                        std::thread::spawn(move || {
                            let _ = handle_connection(&state, stream, wait_timeout, io_timeout);
                        });
                    }
                })
                .expect("spawn accept loop")
        };
        Ok(Server {
            state,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (test hook: cache poisoning, counters).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops accepting, drains workers, and joins every service thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.state.shutdown();
        // The accept loop blocks in `accept`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until a `POST /v1/drain` (or a direct `begin_drain`)
    /// completes — every queued and running job finished — then flushes
    /// the store and shuts down. The graceful-exit path of the binary.
    pub fn serve_until_drained(self) {
        // Long poll: wake on every finished job, leave when drained.
        loop {
            if self.state.wait_drained(Duration::from_secs(3600)) {
                break;
            }
        }
        if let Some(store) = self.state.cache.store() {
            store.flush();
        }
        self.shutdown();
    }
}

/// A routed reply: status, JSON body, extra response headers.
type Reply = (u16, Vec<u8>, Vec<(String, String)>);

fn reply(status: u16, body: Vec<u8>) -> Reply {
    (status, body, Vec::new())
}

fn handle_connection(
    state: &Arc<ServiceState>,
    mut stream: TcpStream,
    wait_timeout: Duration,
    io_timeout: Duration,
) -> io::Result<()> {
    // Slowloris bound: a peer that trickles its request head (or stalls
    // reading our response) gets cut off at the timeout, not never.
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let req = match read_request(&mut stream) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            let body = error_body("timeout", "request not completed within the io timeout");
            return write_response_with(
                &mut stream,
                408,
                reason(408),
                "application/json",
                &[],
                &body,
            );
        }
        Err(e) => {
            let body = error_body("bad_request", &e.to_string());
            return write_response_with(
                &mut stream,
                400,
                reason(400),
                "application/json",
                &[],
                &body,
            );
        }
    };
    let (status, body, headers) = route(state, &req, wait_timeout);
    write_response_with(
        &mut stream,
        status,
        reason(status),
        "application/json",
        &headers,
        &body,
    )
}

fn error_body(kind: &str, message: &str) -> Vec<u8> {
    obj([(
        "error",
        obj([
            ("kind", Json::Str(kind.to_string())),
            ("message", Json::Str(message.to_string())),
        ]),
    )])
    .to_bytes()
}

/// Splices pre-serialized payload bytes into an envelope without
/// re-parsing them — the splice is what keeps cache hits byte-identical.
fn envelope(fields: &[(&str, String)], result_key: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 128);
    out.push(b'{');
    for (k, v) in fields {
        out.extend_from_slice(Json::Str((*k).to_string()).to_json().as_bytes());
        out.push(b':');
        out.extend_from_slice(v.as_bytes());
        out.push(b',');
    }
    out.extend_from_slice(Json::Str(result_key.to_string()).to_json().as_bytes());
    out.push(b':');
    out.extend_from_slice(payload);
    out.push(b'}');
    out
}

fn route(state: &Arc<ServiceState>, req: &Request, wait_timeout: Duration) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => reply(200, obj([("ok", Json::Bool(true))]).to_bytes()),
        ("GET", "/v1/health") => health(state),
        ("GET", "/v1/stats") => reply(200, stats_body(state)),
        ("GET", "/v1/recovery") => recovery(state),
        ("POST", "/v1/runs") => post_run(state, req, wait_timeout),
        ("POST", "/v1/drain") => {
            state.begin_drain();
            reply(
                202,
                obj([("status", Json::Str("draining".into()))]).to_bytes(),
            )
        }
        ("GET", path) if path.starts_with("/v1/runs/") => {
            get_run(state, &path["/v1/runs/".len()..])
        }
        ("GET", path) if path.starts_with("/v1/cache/") => {
            get_cache(state, &path["/v1/cache/".len()..])
        }
        ("GET" | "POST", _) => reply(
            404,
            error_body("not_found", &format!("no route {}", req.path)),
        ),
        _ => reply(405, error_body("method_not_allowed", &req.method)),
    }
}

/// Readiness: 200 while accepting work, 503 (with `Retry-After`) once a
/// drain has begun — so a fronting balancer pulls the instance before
/// its jobs finish. Storage degradation is reported but does **not**
/// fail readiness: a memory-only service still serves correctly.
fn health(state: &Arc<ServiceState>) -> Reply {
    let draining = state.is_draining();
    let degraded = state
        .cache
        .store()
        .map(|s| s.is_degraded())
        .unwrap_or(false);
    let body = obj([
        ("ready", Json::Bool(!draining)),
        ("draining", Json::Bool(draining)),
        ("degraded_storage", Json::Bool(degraded)),
    ])
    .to_bytes();
    if draining {
        (
            503,
            body,
            vec![("retry-after".to_string(), "5".to_string())],
        )
    } else {
        reply(200, body)
    }
}

/// The startup recovery report, verbatim. 404 without a store tier.
fn recovery(state: &Arc<ServiceState>) -> Reply {
    match state.cache.store() {
        Some(store) => reply(200, store.recovery_report().to_json().to_bytes()),
        None => reply(404, error_body("no_store", "service is memory-only")),
    }
}

fn stats_body(state: &Arc<ServiceState>) -> Vec<u8> {
    let c = state.cache.stats();
    let (queued, running, done, failed) = state.job_counts();
    let store_section = match state.cache.store() {
        Some(store) => {
            let s = store.stats();
            obj([
                ("enabled", Json::Bool(true)),
                ("degraded", Json::Bool(s.degraded)),
                ("indexed_entries", Json::U64(s.indexed_entries)),
                ("appended_records", Json::U64(s.appended_records)),
                ("appended_bytes", Json::U64(s.appended_bytes)),
                ("append_errors", Json::U64(s.append_errors)),
                ("disk_reads", Json::U64(s.disk_reads)),
                ("disk_read_corrupt", Json::U64(s.disk_read_corrupt)),
                ("recovered_records", Json::U64(s.recovered_records)),
                ("quarantined_records", Json::U64(s.quarantined_records)),
            ])
        }
        None => obj([("enabled", Json::Bool(false))]),
    };
    let degraded = state
        .cache
        .store()
        .map(|s| s.is_degraded())
        .unwrap_or(false);
    obj([
        (
            "cache",
            obj([
                ("hits", Json::U64(c.hits)),
                ("misses", Json::U64(c.misses)),
                ("inserts", Json::U64(c.inserts)),
                ("entries", Json::U64(c.entries)),
                ("mem_bytes", Json::U64(c.mem_bytes)),
                ("evictions", Json::U64(c.evictions)),
                ("disk_hits", Json::U64(c.disk_hits)),
                ("verify_mismatches", Json::U64(c.verify_mismatches)),
            ]),
        ),
        ("store", store_section),
        (
            "jobs",
            obj([
                ("queued", Json::U64(queued)),
                ("running", Json::U64(running)),
                ("done", Json::U64(done)),
                ("failed", Json::U64(failed)),
            ]),
        ),
        ("draining", Json::Bool(state.is_draining())),
        ("degraded_storage", Json::Bool(degraded)),
    ])
    .to_bytes()
}

fn post_run(state: &Arc<ServiceState>, req: &Request, wait_timeout: Duration) -> Reply {
    let body = match parse(&req.body) {
        Ok(v) => v,
        Err(e) => return reply(400, error_body("bad_json", &e.to_string())),
    };
    let spec = match ScenarioSpec::from_json(&body) {
        Ok(s) => s,
        Err(e) => return reply(400, error_body("bad_spec", &e.0)),
    };
    let tenant = req.header("x-duet-tenant").unwrap_or("anon").to_string();
    let key = spec.cache_key();
    let key_hex = format!("\"{:016x}\"", key);

    if let Some(cached) = state.cache.lookup(key) {
        if req.query_flag("verify") {
            return verify_hit(state, &spec, key, &key_hex, &cached);
        }
        let body = envelope(
            &[
                ("status", "\"done\"".to_string()),
                ("cache", "\"hit\"".to_string()),
                ("key", key_hex),
            ],
            "result",
            &cached,
        );
        return reply(200, body);
    }

    let id = match state.submit(&tenant, spec) {
        Ok(id) => id,
        Err(e) => {
            let body = obj([("error", e.to_json())]).to_bytes();
            let headers = match e.retry_after_secs() {
                Some(secs) => vec![("retry-after".to_string(), secs.to_string())],
                None => Vec::new(),
            };
            return (e.http_status(), body, headers);
        }
    };
    if !req.query_flag("wait") {
        let body = obj([
            ("status", Json::Str("queued".into())),
            ("id", Json::U64(id)),
            ("cache", Json::Str("miss".into())),
            ("key", Json::Str(format!("{key:016x}"))),
        ])
        .to_bytes();
        return reply(202, body);
    }
    match state.wait_done(id, wait_timeout) {
        Some(view) => match view.status {
            JobStatus::Done => {
                let payload = view.payload.expect("done job has payload");
                let body = envelope(
                    &[
                        ("status", "\"done\"".to_string()),
                        ("cache", "\"miss\"".to_string()),
                        ("key", key_hex),
                        ("id", id.to_string()),
                    ],
                    "result",
                    &payload,
                );
                reply(200, body)
            }
            JobStatus::Failed => {
                let error = view.error.unwrap_or_else(|| "{}".to_string());
                let body = envelope(
                    &[
                        ("status", "\"failed\"".to_string()),
                        ("cache", "\"miss\"".to_string()),
                        ("key", key_hex),
                        ("id", id.to_string()),
                    ],
                    "error",
                    error.as_bytes(),
                );
                reply(200, body)
            }
            _ => reply(
                200,
                obj([
                    ("status", Json::Str("timeout".into())),
                    ("id", Json::U64(id)),
                ])
                .to_bytes(),
            ),
        },
        None => reply(500, error_body("lost_job", "job record disappeared")),
    }
}

/// `?verify=1` on a cache hit: re-run the spec through the production
/// execution path and demand the payload be byte-identical to the stored
/// entry. A mismatch means either the cache was corrupted or the
/// simulator broke bit-determinism — both worth a loud, structured 409;
/// the entry is evicted so the next run repopulates it honestly.
fn verify_hit(
    state: &Arc<ServiceState>,
    spec: &ScenarioSpec,
    key: u64,
    key_hex: &str,
    cached: &[u8],
) -> Reply {
    let progress = AtomicU64::new(0);
    let fresh = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scenario::execute(spec, |ps| progress.store(ps, Ordering::Relaxed))
    }));
    let fresh_payload = match fresh {
        Ok(Ok(out)) => scenario::result_payload(spec, &out),
        Ok(Err(run_err)) => {
            return reply(
                409,
                obj([
                    ("status", Json::Str("verify_failed".into())),
                    ("key", Json::Str(format!("{key:016x}"))),
                    ("error", scenario::error_json(&run_err)),
                ])
                .to_bytes(),
            )
        }
        Err(_) => return reply(500, error_body("panic", "verification run panicked")),
    };
    if fresh_payload == cached {
        let body = envelope(
            &[
                ("status", "\"done\"".to_string()),
                ("cache", "\"hit\"".to_string()),
                ("verified", "true".to_string()),
                ("key", key_hex.to_string()),
            ],
            "result",
            cached,
        );
        return reply(200, body);
    }
    state.cache.note_verify_mismatch();
    state.cache.evict(key);
    let body = obj([
        ("status", Json::Str("verify_mismatch".into())),
        ("key", Json::Str(format!("{key:016x}"))),
        ("cached_len", Json::U64(cached.len() as u64)),
        ("fresh_len", Json::U64(fresh_payload.len() as u64)),
        (
            "message",
            Json::Str(
                "cached payload differs from a fresh deterministic re-run; entry evicted".into(),
            ),
        ),
    ])
    .to_bytes();
    reply(409, body)
}

fn get_run(state: &Arc<ServiceState>, id_str: &str) -> Reply {
    let Ok(id) = id_str.parse::<u64>() else {
        return reply(400, error_body("bad_id", id_str));
    };
    let Some(view) = state.job_view(id) else {
        return reply(404, error_body("unknown_job", id_str));
    };
    reply(200, job_body(&view))
}

fn job_body(view: &JobView) -> Vec<u8> {
    let mut fields: Vec<(&str, String)> = vec![
        ("id", view.id.to_string()),
        ("tenant", Json::Str(view.tenant.clone()).to_json()),
        (
            "status",
            Json::Str(view.status.label().to_string()).to_json(),
        ),
        ("key", format!("\"{:016x}\"", view.key)),
        (
            "progress",
            obj([
                ("sim_ps", Json::U64(view.sim_ps)),
                ("target_ps", Json::U64(view.target_ps)),
            ])
            .to_json(),
        ),
        ("spec", view.spec.to_json().to_json()),
    ];
    match view.status {
        JobStatus::Done => {
            let payload = view.payload.clone().expect("done job has payload");
            envelope(&fields, "result", &payload)
        }
        JobStatus::Failed => {
            let error = view.error.clone().unwrap_or_else(|| "{}".to_string());
            envelope(&fields, "error", error.as_bytes())
        }
        _ => {
            // No result yet: close the envelope after the last field.
            fields.push(("cache", Json::Str("miss".into()).to_json()));
            let mut out = Vec::new();
            out.push(b'{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                out.extend_from_slice(Json::Str((*k).to_string()).to_json().as_bytes());
                out.push(b':');
                out.extend_from_slice(v.as_bytes());
            }
            out.push(b'}');
            out
        }
    }
}

fn get_cache(state: &Arc<ServiceState>, key_str: &str) -> Reply {
    let Ok(key) = u64::from_str_radix(key_str, 16) else {
        return reply(400, error_body("bad_key", key_str));
    };
    match state.cache.lookup(key) {
        Some(payload) => reply(200, payload.to_vec()),
        None => reply(404, error_body("unknown_key", key_str)),
    }
}
