//! Building and executing one scenario: spec → `System` → run loop →
//! deterministic result payload (or a structured [`RunError`]).

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{RunError, RunStats, System};
use duet_trace::TraceConfig;
use duet_workloads::{popcount, tangent, BenchVariant};

use crate::json::{obj, Json};
use crate::spec::{ScenarioSpec, WorkloadSpec};

/// Shared window the stream-stores cores hammer.
const STREAM_WINDOW: u64 = 0x2_0000;
/// Window size in bytes (8 cache lines — enough to keep the directory
/// busy, small enough that every core collides constantly).
const STREAM_SPAN: u64 = 512;

/// How a finished run scores its own output.
enum Check {
    Popcount(popcount::PopcountCheck),
    Tangent(tangent::TangentCheck),
    /// Last store wins deterministically; any nonzero word proves the
    /// window was written through the coherence protocol.
    Stream,
}

impl Check {
    fn check(&self, sys: &System) -> bool {
        match self {
            Check::Popcount(c) => c.check(sys),
            Check::Tangent(c) => c.check(sys),
            Check::Stream => {
                (0..STREAM_SPAN / 64).all(|l| sys.peek_u64(STREAM_WINDOW + l * 64) != 0)
            }
        }
    }
}

/// Builds the ready-to-run system for a spec. The `SystemConfig` under the
/// hood is exactly [`ScenarioSpec::system_config`] — the config the cache
/// key hashes — via the workload `prepare` constructors.
fn build(spec: &ScenarioSpec) -> (System, Check) {
    match &spec.workload {
        WorkloadSpec::Popcount { n, seed } => {
            let (sys, check) = popcount::prepare(spec.variant, *n, *seed, spec.faults.clone());
            (sys, Check::Popcount(check))
        }
        WorkloadSpec::Tangent { n, seed } => {
            let (sys, check) = tangent::prepare(spec.variant, *n, *seed, spec.faults.clone());
            (sys, Check::Tangent(check))
        }
        WorkloadSpec::StreamStores { processors, stores } => {
            let mut cfg = BenchVariant::ProcOnly.system_config(*processors as usize, 0, 0.0);
            cfg.faults = spec.faults.clone();
            let mut sys = System::new(cfg).expect("valid config");
            let mut a = Asm::new();
            a.label("main");
            let (base, i, val) = (regs::S[0], regs::S[1], regs::S[2]);
            a.li(base, STREAM_WINDOW as i64);
            a.li(i, 0);
            a.li(val, 0);
            a.label("loop");
            // addr = base + (i*8 mod STREAM_SPAN): every core walks the
            // same 8 lines, so stores constantly steal ownership.
            a.slli(regs::T[0], i, 3);
            a.andi(regs::T[0], regs::T[0], (STREAM_SPAN - 1) as i64);
            a.add(regs::T[0], regs::T[0], base);
            a.addi(val, val, 1);
            a.sd(val, regs::T[0], 0);
            a.addi(i, i, 1);
            a.li(regs::T[1], *stores as i64);
            a.blt(i, regs::T[1], "loop");
            a.fence();
            a.halt();
            let prog = Arc::new(a.assemble().expect("stream_stores assembles"));
            for c in 0..*processors as usize {
                sys.load_program(c, prog.clone(), "main");
            }
            (sys, Check::Stream)
        }
    }
}

/// Everything a completed run produces.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Simulated end time (after quiesce), picoseconds.
    pub sim_ps: u64,
    /// Whether the output matched the workload's reference.
    pub correct: bool,
    /// Aggregate run statistics.
    pub stats: RunStats,
    /// Deterministic metrics (sorted; host-dependent counters filtered).
    pub metrics: Vec<(String, u64)>,
    /// Scoreboard report when the spec asked for a trace.
    pub scoreboard: Option<String>,
}

/// Metrics that are a function of the spec alone: drops the process-wide
/// throughput atomics (shared across concurrent runs in this process),
/// `run.executed_edges` (host edge-skip accounting), and
/// `link.*.rejected_pushes` (counts *attempts*, not data movement). The
/// parallel-determinism suite asserts everything kept here is
/// bit-identical across thread counts, shard counts, and edge-skip modes.
fn cacheable_metrics(sys: &System) -> Vec<(String, u64)> {
    sys.metrics_registry()
        .iter()
        .filter(|(k, _)| {
            !(k.starts_with("process.")
                || *k == "run.executed_edges"
                || (k.starts_with("link.") && k.ends_with(".rejected_pushes")))
        })
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Runs a spec to completion, reporting simulated progress (picoseconds)
/// through `progress` roughly once per deadline/64 of simulated time.
///
/// # Errors
///
/// Propagates [`RunError`] from the run loop: a hung run (e.g. an
/// `accel_hang` fault with no degrade policy) surfaces as
/// [`RunError::Deadlock`] when the spec's `max_sim_us` deadline expires —
/// bounded simulated time means bounded host time, so the worker thread
/// always comes back.
pub fn execute(spec: &ScenarioSpec, mut progress: impl FnMut(u64)) -> Result<RunOutcome, RunError> {
    let (mut sys, check) = build(spec);
    if spec.trace {
        sys.enable_tracing(&TraceConfig::default());
    }
    let deadline = Time::from_us(spec.max_sim_us);
    let quantum = (deadline.as_ps() / 64).max(1);
    while !sys.all_halted() {
        let target = Time::from_ps(sys.now().as_ps().saturating_add(quantum));
        if target >= deadline {
            sys.run_until_halt(deadline)?;
            break;
        }
        sys.run_until(deadline, |s| s.all_halted() || s.now() >= target)?;
        progress(sys.now().as_ps());
    }
    let quiesce_deadline = Time::from_ps(deadline.as_ps().saturating_mul(2));
    let end = sys.quiesce(quiesce_deadline)?;
    progress(end.as_ps());
    Ok(RunOutcome {
        sim_ps: end.as_ps(),
        correct: check.check(&sys),
        stats: sys.stats(),
        metrics: cacheable_metrics(&sys),
        scoreboard: sys.trace_scoreboard().map(|s| s.report()),
    })
}

/// Serializes a completed run as the canonical result payload — the exact
/// bytes the cache stores and every later hit returns. Field order is
/// fixed and the metrics section is sorted (the registry iterates in
/// order), so two deterministic runs of the same spec produce identical
/// bytes; `?verify=1` re-runs and compares against these.
pub fn result_payload(spec: &ScenarioSpec, out: &RunOutcome) -> Vec<u8> {
    let mut fields: Vec<(String, Json)> = vec![
        ("spec".to_string(), spec.to_json()),
        ("correct".to_string(), Json::Bool(out.correct)),
        ("sim_ps".to_string(), Json::U64(out.sim_ps)),
        (
            "stats".to_string(),
            obj([
                ("fast_edges", Json::U64(out.stats.fast_edges)),
                ("slow_edges", Json::U64(out.stats.slow_edges)),
                ("exceptions", Json::U64(out.stats.exceptions)),
                ("page_faults", Json::U64(out.stats.page_faults)),
            ]),
        ),
        (
            "metrics".to_string(),
            Json::Obj(
                out.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::U64(*v)))
                    .collect(),
            ),
        ),
    ];
    if let Some(report) = &out.scoreboard {
        fields.push(("scoreboard".to_string(), Json::Str(report.clone())));
    }
    Json::Obj(fields).to_bytes()
}

/// Maps a [`RunError`] to the structured error object the API returns.
/// The stall snapshot's component list and notes ride along so a client
/// sees *where* the run wedged, not just that it did.
pub fn error_json(err: &RunError) -> Json {
    let (kind, detail, snapshot) = match err {
        RunError::Deadlock {
            deadline_ps,
            snapshot,
        } => (
            "deadlock",
            obj([("deadline_ps", Json::U64(*deadline_ps))]),
            snapshot,
        ),
        RunError::ProtocolViolation {
            violation,
            snapshot,
        } => (
            "protocol_violation",
            obj([("violation", Json::Str(violation.to_string()))]),
            snapshot,
        ),
    };
    let components = snapshot
        .components
        .iter()
        .map(|c| {
            obj([
                ("name", Json::Str(c.name.clone())),
                ("active", Json::Bool(c.active)),
                ("queued", Json::U64(c.queued as u64)),
                (
                    "next_event_ps",
                    c.next_event_ps.map(Json::U64).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    obj([
        ("kind", Json::Str(kind.to_string())),
        ("detail", detail),
        ("message", Json::Str(err.to_string())),
        ("at_ps", Json::U64(snapshot.at_ps)),
        ("components", Json::Arr(components)),
        (
            "notes",
            Json::Arr(
                snapshot
                    .notes
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(body: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&json::parse(body.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn popcount_executes_and_payload_is_reproducible() {
        let s = spec(r#"{"workload":"popcount","n":4,"seed":7}"#);
        let a = execute(&s, |_| {}).unwrap();
        assert!(a.correct);
        let b = execute(&s, |_| {}).unwrap();
        assert_eq!(result_payload(&s, &a), result_payload(&s, &b));
    }

    #[test]
    fn stream_stores_hits_every_line() {
        let s = spec(
            r#"{"workload":"stream_stores","variant":"proc-only","processors":2,"stores":128}"#,
        );
        let out = execute(&s, |_| {}).unwrap();
        assert!(out.correct);
        assert!(out.sim_ps > 0);
    }

    #[test]
    fn hung_accelerator_returns_structured_deadlock() {
        let s = spec(
            r#"{"workload":"popcount","n":4,"seed":7,
                "faults":"fault accel_hang from_us=0\n","max_sim_us":500}"#,
        );
        let err = execute(&s, |_| {}).unwrap_err();
        let j = error_json(&err);
        assert_eq!(j.get("kind").unwrap().as_str(), Some("deadlock"));
        assert!(j.get("at_ps").unwrap().as_u64().is_some());
    }

    #[test]
    fn progress_reports_monotonic_sim_time() {
        let s = spec(r#"{"workload":"tangent","n":3,"seed":2,"max_sim_us":100000}"#);
        let mut seen = Vec::new();
        execute(&s, |ps| seen.push(ps)).unwrap();
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn traced_runs_carry_a_scoreboard_and_distinct_payloads() {
        let plain = spec(r#"{"workload":"popcount","n":3,"seed":1}"#);
        let traced = spec(r#"{"workload":"popcount","n":3,"seed":1,"trace":true}"#);
        let a = execute(&plain, |_| {}).unwrap();
        let b = execute(&traced, |_| {}).unwrap();
        assert!(a.scoreboard.is_none());
        assert!(b.scoreboard.is_some());
        // Same simulation, different payloads — hence different cache keys.
        assert_eq!(a.sim_ps, b.sim_ps);
        assert_ne!(plain.cache_key(), traced.cache_key());
    }
}
