//! Scenario specifications: what a client asks the service to simulate,
//! and the canonical byte encoding that names the result in the cache.
//!
//! # Cache identity
//!
//! [`ScenarioSpec::canonical_bytes`] is the single source of result
//! identity. It reuses [`SystemConfig::canonical_encode`] — the same
//! encoding the snapshot header hash is built from — so the service cache
//! and the checkpoint format can never disagree about what configuration a
//! run used. On top of the derived system configuration the spec encodes
//! the workload program and its parameters, plus the trace flag (traced
//! payloads carry a scoreboard section, so they are distinct cache
//! entries).
//!
//! Deliberately **excluded** from the key:
//!
//! - `max_sim_us` — a deadline. A completed deterministic run produces the
//!   same payload under any deadline it fits inside, and failed runs are
//!   never cached.
//! - the tenant — results are content-addressed, not owner-addressed;
//!   quotas meter *work*, and cache hits cost no work.
//! - `sim_threads` / `mesh_shards` — host parallelism knobs, already
//!   excluded by `SystemConfig::canonical_encode`.

use std::fmt;

use duet_sim::{SnapHasher, SnapWriter};
use duet_system::SystemConfig;
use duet_verify::FaultPlan;
use duet_workloads::BenchVariant;

use crate::json::Json;

/// Hard ceiling on problem sizes accepted over the wire, so a single
/// request cannot monopolize a worker for hours.
pub const MAX_N: u64 = 64;
/// Default simulated-time deadline when a spec omits `max_sim_us`.
pub const DEFAULT_MAX_SIM_US: u64 = 200_000;

/// Which program to run.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Popcount over `n` 512-bit vectors (fine-grained offload).
    Popcount {
        /// Vector count (1..=[`MAX_N`]).
        n: u64,
        /// Data seed.
        seed: u64,
    },
    /// Fixed-point tangent over `n` angles (arithmetic offload).
    Tangent {
        /// Angle count (1..=[`MAX_N`]).
        n: u64,
        /// Data seed.
        seed: u64,
    },
    /// All cores hammer stores at one shared window (coherence stress;
    /// proc-only).
    StreamStores {
        /// Core count (1..=8).
        processors: u64,
        /// Stores per core (1..=4096).
        stores: u64,
    },
}

impl WorkloadSpec {
    /// Stable wire / cache code for the workload program.
    fn code(&self) -> u64 {
        match self {
            WorkloadSpec::Popcount { .. } => 0,
            WorkloadSpec::Tangent { .. } => 1,
            WorkloadSpec::StreamStores { .. } => 2,
        }
    }

    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Popcount { .. } => "popcount",
            WorkloadSpec::Tangent { .. } => "tangent",
            WorkloadSpec::StreamStores { .. } => "stream_stores",
        }
    }
}

/// A complete simulation request.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The program.
    pub workload: WorkloadSpec,
    /// System variant (`proc-only` / `duet` / `fpsoc`).
    pub variant: BenchVariant,
    /// Deterministic fault schedule (parsed from the plan's text format).
    pub faults: FaultPlan,
    /// Capture a trace and include the scoreboard report in the payload.
    pub trace: bool,
    /// Simulated-time deadline in microseconds.
    pub max_sim_us: u64,
}

/// A spec validation / decode failure, returned to clients as HTTP 400.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn field_u64(v: &Json, key: &str, default: u64) -> Result<u64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| SpecError(format!("'{key}' must be a non-negative integer"))),
    }
}

fn bounded(name: &str, v: u64, lo: u64, hi: u64) -> Result<u64, SpecError> {
    if (lo..=hi).contains(&v) {
        Ok(v)
    } else {
        Err(SpecError(format!(
            "'{name}' must be in {lo}..={hi}, got {v}"
        )))
    }
}

impl ScenarioSpec {
    /// Decodes and validates a spec from the request body.
    ///
    /// Expected shape (all fields except `workload` optional):
    ///
    /// ```json
    /// {
    ///   "workload": "popcount",
    ///   "n": 8, "seed": 42,
    ///   "variant": "duet",
    ///   "faults": "seed = 1\nfault accel_hang from_us=50 until_us=60\n",
    ///   "trace": false,
    ///   "max_sim_us": 200000
    /// }
    /// ```
    pub fn from_json(v: &Json) -> Result<ScenarioSpec, SpecError> {
        let name = v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError("missing 'workload' (string)".into()))?;
        let workload = match name {
            "popcount" => WorkloadSpec::Popcount {
                n: bounded("n", field_u64(v, "n", 8)?, 1, MAX_N)?,
                seed: field_u64(v, "seed", 1)?,
            },
            "tangent" => WorkloadSpec::Tangent {
                n: bounded("n", field_u64(v, "n", 8)?, 1, MAX_N)?,
                seed: field_u64(v, "seed", 1)?,
            },
            "stream_stores" => WorkloadSpec::StreamStores {
                processors: bounded("processors", field_u64(v, "processors", 2)?, 1, 8)?,
                stores: bounded("stores", field_u64(v, "stores", 256)?, 1, 4096)?,
            },
            other => {
                return Err(SpecError(format!(
                    "unknown workload '{other}' (expected popcount, tangent, or stream_stores)"
                )))
            }
        };
        let variant = match v.get("variant").and_then(Json::as_str).unwrap_or("duet") {
            "proc-only" | "proc_only" => BenchVariant::ProcOnly,
            "duet" => BenchVariant::Duet,
            "fpsoc" => BenchVariant::Fpsoc,
            other => {
                return Err(SpecError(format!(
                    "unknown variant '{other}' (expected proc-only, duet, or fpsoc)"
                )))
            }
        };
        if matches!(workload, WorkloadSpec::StreamStores { .. })
            && variant != BenchVariant::ProcOnly
        {
            return Err(SpecError(
                "stream_stores runs on variant 'proc-only' only".into(),
            ));
        }
        let faults = match v.get("faults") {
            None => FaultPlan::empty(),
            Some(Json::Str(text)) => {
                FaultPlan::parse(text).map_err(|e| SpecError(format!("invalid fault plan: {e}")))?
            }
            Some(_) => {
                return Err(SpecError(
                    "'faults' must be a string in the fault-plan text format".into(),
                ))
            }
        };
        let trace = match v.get("trace") {
            None => false,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| SpecError("'trace' must be a boolean".into()))?,
        };
        let max_sim_us = bounded(
            "max_sim_us",
            field_u64(v, "max_sim_us", DEFAULT_MAX_SIM_US)?,
            1,
            10_000_000,
        )?;
        Ok(ScenarioSpec {
            workload,
            variant,
            faults,
            trace,
            max_sim_us,
        })
    }

    /// Echoes the spec back as JSON. The fault plan is rendered through its
    /// lossless text formatter, so `from_json(to_json(spec)) == spec`.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![(
            "workload".to_string(),
            Json::Str(self.workload.name().to_string()),
        )];
        match &self.workload {
            WorkloadSpec::Popcount { n, seed } | WorkloadSpec::Tangent { n, seed } => {
                fields.push(("n".to_string(), Json::U64(*n)));
                fields.push(("seed".to_string(), Json::U64(*seed)));
            }
            WorkloadSpec::StreamStores { processors, stores } => {
                fields.push(("processors".to_string(), Json::U64(*processors)));
                fields.push(("stores".to_string(), Json::U64(*stores)));
            }
        }
        fields.push((
            "variant".to_string(),
            Json::Str(self.variant.label().to_string()),
        ));
        if !self.faults.is_empty() || self.faults.seed != 0 {
            fields.push(("faults".to_string(), Json::Str(self.faults.render())));
        }
        fields.push(("trace".to_string(), Json::Bool(self.trace)));
        fields.push(("max_sim_us".to_string(), Json::U64(self.max_sim_us)));
        Json::Obj(fields)
    }

    /// The `SystemConfig` this spec runs under, fault plan folded in.
    /// `crate::scenario::build` constructs the system from exactly this
    /// config, so the cache key and the executed machine agree.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = match &self.workload {
            WorkloadSpec::Popcount { .. } => {
                self.variant
                    .system_config(1, 1, duet_workloads::POPCOUNT_MHZ)
            }
            WorkloadSpec::Tangent { .. } => {
                self.variant
                    .system_config(1, 0, duet_workloads::TANGENT_MHZ)
            }
            WorkloadSpec::StreamStores { processors, .. } => {
                SystemConfig::proc_only(*processors as usize)
            }
        };
        cfg.faults = self.faults.clone();
        cfg
    }

    /// Canonical byte encoding of result identity (see the module docs for
    /// what is included and what is deliberately left out).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(1); // spec encoding version
        w.u64(self.workload.code());
        match &self.workload {
            WorkloadSpec::Popcount { n, seed } | WorkloadSpec::Tangent { n, seed } => {
                w.u64(*n);
                w.u64(*seed);
            }
            WorkloadSpec::StreamStores { processors, stores } => {
                w.u64(*processors);
                w.u64(*stores);
            }
        }
        self.system_config().canonical_encode(&mut w);
        w.u8(u8::from(self.trace));
        w.finish()
    }

    /// Content-addressed cache key: hash of [`canonical_bytes`].
    ///
    /// [`canonical_bytes`]: ScenarioSpec::canonical_bytes
    pub fn cache_key(&self) -> u64 {
        let mut h = SnapHasher::new();
        h.bytes(&self.canonical_bytes());
        h.finish()
    }

    /// The cache key formatted the way the HTTP API spells it.
    pub fn cache_key_hex(&self) -> String {
        format!("{:016x}", self.cache_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(body: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&json::parse(body.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn decode_applies_defaults_and_validates() {
        let s = spec(r#"{"workload":"popcount"}"#);
        assert_eq!(s.workload, WorkloadSpec::Popcount { n: 8, seed: 1 });
        assert_eq!(s.variant, BenchVariant::Duet);
        assert!(!s.trace);
        assert_eq!(s.max_sim_us, DEFAULT_MAX_SIM_US);

        for bad in [
            r#"{}"#,
            r#"{"workload":"sort"}"#,
            r#"{"workload":"popcount","n":0}"#,
            r#"{"workload":"popcount","n":65}"#,
            r#"{"workload":"stream_stores","variant":"duet"}"#,
            r#"{"workload":"popcount","faults":"fault bogus from_us=1"}"#,
            r#"{"workload":"popcount","trace":1}"#,
        ] {
            let v = json::parse(bad.as_bytes()).unwrap();
            assert!(ScenarioSpec::from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn json_echo_round_trips_including_fault_plan() {
        let s = spec(
            r#"{"workload":"tangent","n":5,"seed":9,"variant":"fpsoc",
                "faults":"seed = 3\nfault noc_delay node=2 from_us=10 until_us=20\n",
                "trace":true,"max_sim_us":1000}"#,
        );
        let echoed = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(echoed, s);
    }

    #[test]
    fn cache_key_separates_everything_that_matters() {
        let base = spec(r#"{"workload":"popcount","n":8,"seed":1}"#);
        let keys: Vec<u64> = [
            r#"{"workload":"popcount","n":8,"seed":1}"#,
            r#"{"workload":"popcount","n":9,"seed":1}"#,
            r#"{"workload":"popcount","n":8,"seed":2}"#,
            r#"{"workload":"tangent","n":8,"seed":1}"#,
            r#"{"workload":"popcount","n":8,"seed":1,"variant":"fpsoc"}"#,
            r#"{"workload":"popcount","n":8,"seed":1,"trace":true}"#,
            r#"{"workload":"popcount","n":8,"seed":1,
                "faults":"fault accel_hang from_us=1 until_us=2\n"}"#,
        ]
        .iter()
        .map(|b| spec(b).cache_key())
        .collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "specs {i} and {j} collided");
                }
            }
        }
        assert_eq!(keys[0], base.cache_key(), "key must be stable");
    }

    #[test]
    fn cache_key_ignores_deadline() {
        let a = spec(r#"{"workload":"popcount","max_sim_us":1000}"#);
        let b = spec(r#"{"workload":"popcount","max_sim_us":2000}"#);
        assert_eq!(a.cache_key(), b.cache_key());
    }
}
