//! Dependency-free JSON: a small value tree, a recursive-descent parser,
//! and a serializer whose byte output is deterministic.
//!
//! Objects keep **insertion order** (a `Vec` of pairs, not a map), so the
//! same value tree always serializes to the same bytes — the property the
//! content-addressed result cache leans on: cached payloads are compared
//! and returned byte-for-byte.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
/// Scenario specs are ~3 levels deep; the bound exists so hostile input
/// cannot overflow the parser's stack.
const MAX_DEPTH: usize = 64;

/// A JSON value. Numbers keep three variants so `u64` metric counters
/// survive round-trips without precision loss through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (the common case: counters, ids, times).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (accepts `U64` and exact non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a `String` (compact, no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().into_bytes()
    }
}

/// Builder shorthand for objects: `obj([("a", Json::U64(1))])`.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(n) => {
            if n.is_finite() {
                // `{}` is Rust's shortest round-trip float formatting —
                // deterministic for a given bit pattern.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 multibyte sequences from the input.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        if start + width > self.input.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.input[start..start + width])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let doc = br#"{"a": 1, "b": [true, null, -3, 2.5], "s": "x\n\"y\"", "nest": {"k": 18446744073709551615}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(
            v.get("nest").unwrap().get("k").unwrap().as_u64(),
            Some(u64::MAX)
        );
        // Serialize → reparse → identical tree.
        let bytes = v.to_bytes();
        assert_eq!(parse(&bytes).unwrap(), v);
    }

    #[test]
    fn serialization_is_deterministic_and_order_preserving() {
        let v = obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.to_json(), v.clone().to_json());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"nul",
            b"1 2",
            b"\"\\q\"",
            b"\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
        // Depth bomb stops at the bound instead of overflowing the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(br#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\u{1f600}"));
        let raw = "héllo😀".to_string();
        let enc = Json::Str(raw.clone()).to_json();
        assert_eq!(parse(enc.as_bytes()).unwrap().as_str(), Some(raw.as_str()));
    }
}
