//! Bounded job queue, worker pool, and per-tenant quotas.
//!
//! Submissions land in a FIFO guarded by one mutex; worker threads claim
//! the oldest job whose tenant is under its concurrency quota, execute it
//! **outside** the lock (panics caught, run errors structured), then
//! publish the payload into the result cache. A hung simulation cannot
//! wedge a worker: the run loop's deadline converts it into a
//! [`RunError::Deadlock`](duet_system::RunError) after a bounded amount
//! of simulated — and therefore host — time.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::cache::ResultCache;
use crate::json::{obj, Json};
use crate::scenario;
use crate::spec::ScenarioSpec;

/// Per-tenant admission limits. Every tenant gets the same quota; the
/// accounting is per tenant name, so one noisy tenant cannot starve the
/// others out of the queue or the worker pool.
#[derive(Clone, Copy, Debug)]
pub struct Quota {
    /// Jobs a tenant may have waiting in the queue.
    pub max_queued: usize,
    /// Jobs a tenant may have running at once.
    pub max_concurrent: usize,
    /// Largest `max_sim_us` a tenant may request.
    pub max_sim_us: u64,
}

impl Default for Quota {
    fn default() -> Self {
        Quota {
            max_queued: 8,
            max_concurrent: 2,
            max_sim_us: 2_000_000,
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant already has `max_queued` jobs waiting (HTTP 429).
    TenantQueueFull {
        /// The offending tenant.
        tenant: String,
        /// The limit that was hit.
        limit: usize,
    },
    /// The spec's deadline exceeds the tenant's simulated-time quota
    /// (HTTP 429).
    SimTimeQuota {
        /// Requested deadline (µs).
        requested_us: u64,
        /// The limit that was hit (µs).
        limit_us: u64,
    },
    /// The global queue is at capacity (HTTP 503).
    QueueFull,
    /// The service is draining: finishing in-flight work, admitting
    /// nothing new (HTTP 503).
    Draining,
    /// The service is shutting down (HTTP 503).
    ShuttingDown,
}

impl SubmitError {
    /// The HTTP status this refusal maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            SubmitError::TenantQueueFull { .. } | SubmitError::SimTimeQuota { .. } => 429,
            SubmitError::QueueFull | SubmitError::Draining | SubmitError::ShuttingDown => 503,
        }
    }

    /// `Retry-After` guidance in whole seconds, when retrying makes
    /// sense. Queue pressure clears quickly; a draining process does
    /// not come back, so the hint is "long enough for the replacement".
    /// A sim-time quota violation is a spec problem — retrying the same
    /// spec can never succeed, so no hint is sent.
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            SubmitError::TenantQueueFull { .. } | SubmitError::QueueFull => Some(1),
            SubmitError::Draining | SubmitError::ShuttingDown => Some(5),
            SubmitError::SimTimeQuota { .. } => None,
        }
    }

    /// The structured error object for the response body.
    pub fn to_json(&self) -> Json {
        match self {
            SubmitError::TenantQueueFull { tenant, limit } => obj([
                ("kind", Json::Str("quota_queued".into())),
                ("tenant", Json::Str(tenant.clone())),
                ("limit", Json::U64(*limit as u64)),
            ]),
            SubmitError::SimTimeQuota {
                requested_us,
                limit_us,
            } => obj([
                ("kind", Json::Str("quota_sim_time".into())),
                ("requested_us", Json::U64(*requested_us)),
                ("limit_us", Json::U64(*limit_us)),
            ]),
            SubmitError::QueueFull => obj([("kind", Json::Str("queue_full".into()))]),
            SubmitError::Draining => obj([("kind", Json::Str("draining".into()))]),
            SubmitError::ShuttingDown => obj([("kind", Json::Str("shutting_down".into()))]),
        }
    }
}

/// Job lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// On a worker now.
    Running,
    /// Finished; payload available (and cached).
    Done,
    /// Finished with a structured error.
    Failed,
}

impl JobStatus {
    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

struct JobRecord {
    tenant: String,
    spec: ScenarioSpec,
    key: u64,
    status: JobStatus,
    payload: Option<Arc<Vec<u8>>>,
    /// Serialized error object (JSON bytes) for failed jobs.
    error: Option<String>,
    /// Simulated progress in picoseconds, updated lock-free by the worker.
    progress: Arc<AtomicU64>,
    target_ps: u64,
}

/// A point-in-time snapshot of one job, safe to render outside the lock.
#[derive(Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Content-address of the spec.
    pub key: u64,
    /// The spec (echoed back to clients).
    pub spec: ScenarioSpec,
    /// Result payload when done.
    pub payload: Option<Arc<Vec<u8>>>,
    /// Structured error (JSON text) when failed.
    pub error: Option<String>,
    /// Simulated progress (ps).
    pub sim_ps: u64,
    /// Simulated deadline (ps).
    pub target_ps: u64,
}

#[derive(Default)]
struct TenantCounters {
    queued: usize,
    running: usize,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    tenants: HashMap<String, TenantCounters>,
    next_id: u64,
    shutdown: bool,
    /// Draining: stop admitting, finish what is queued/running, then let
    /// workers exit. Unlike `shutdown`, queued jobs still run to
    /// completion.
    draining: bool,
    done: u64,
    failed: u64,
}

impl Inner {
    fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .count()
    }

    fn drained(&self) -> bool {
        self.draining && self.queue.is_empty() && self.running_count() == 0
    }
}

/// Everything the HTTP layer and the workers share.
pub struct ServiceState {
    /// Admission limits (applied per tenant).
    pub quota: Quota,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// Global queue capacity.
    queue_cap: usize,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Finished jobs kept around for `GET /v1/runs/<id>`; older ones are
/// pruned so a long-lived server does not accumulate records forever.
const FINISHED_RETAIN: usize = 1024;

impl ServiceState {
    /// A fresh service with the given quota and queue capacity, and a
    /// default (memory-only, default-budget) cache.
    pub fn new(quota: Quota, queue_cap: usize) -> Self {
        ServiceState::with_cache(quota, queue_cap, ResultCache::new())
    }

    /// A fresh service over an explicitly configured cache (byte budget
    /// and/or durable tier).
    pub fn with_cache(quota: Quota, queue_cap: usize, cache: ResultCache) -> Self {
        ServiceState {
            quota,
            cache,
            queue_cap,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                tenants: HashMap::new(),
                next_id: 1,
                shutdown: false,
                draining: false,
                done: 0,
                failed: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Admits a job, enforcing quotas, and wakes a worker. Returns the
    /// job id.
    pub fn submit(&self, tenant: &str, spec: ScenarioSpec) -> Result<u64, SubmitError> {
        if spec.max_sim_us > self.quota.max_sim_us {
            return Err(SubmitError::SimTimeQuota {
                requested_us: spec.max_sim_us,
                limit_us: self.quota.max_sim_us,
            });
        }
        let key = spec.cache_key();
        let target_ps = spec.max_sim_us.saturating_mul(1_000_000);
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        let counters = inner.tenants.entry(tenant.to_string()).or_default();
        if counters.queued >= self.quota.max_queued {
            return Err(SubmitError::TenantQueueFull {
                tenant: tenant.to_string(),
                limit: self.quota.max_queued,
            });
        }
        counters.queued += 1;
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            JobRecord {
                tenant: tenant.to_string(),
                spec,
                key,
                status: JobStatus::Queued,
                payload: None,
                error: None,
                progress: Arc::new(AtomicU64::new(0)),
                target_ps,
            },
        );
        inner.queue.push_back(id);
        Self::prune_finished(&mut inner);
        drop(inner);
        self.work_cv.notify_one();
        Ok(id)
    }

    fn prune_finished(inner: &mut Inner) {
        let finished = inner
            .jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Done | JobStatus::Failed))
            .count();
        if finished <= FINISHED_RETAIN {
            return;
        }
        let mut ids: Vec<u64> = inner
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.status, JobStatus::Done | JobStatus::Failed))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        for id in ids.into_iter().take(finished - FINISHED_RETAIN) {
            inner.jobs.remove(&id);
        }
    }

    fn view_locked(id: u64, j: &JobRecord) -> JobView {
        JobView {
            id,
            tenant: j.tenant.clone(),
            status: j.status,
            key: j.key,
            spec: j.spec.clone(),
            payload: j.payload.clone(),
            error: j.error.clone(),
            sim_ps: j.progress.load(Ordering::Relaxed),
            target_ps: j.target_ps,
        }
    }

    /// Snapshot of one job.
    pub fn job_view(&self, id: u64) -> Option<JobView> {
        let inner = self.inner.lock().expect("queue lock");
        inner.jobs.get(&id).map(|j| Self::view_locked(id, j))
    }

    /// Blocks until the job finishes (or the timeout passes) and returns
    /// its final snapshot.
    pub fn wait_done(&self, id: u64, timeout: Duration) -> Option<JobView> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(j) if matches!(j.status, JobStatus::Done | JobStatus::Failed) => {
                    return Some(Self::view_locked(id, j));
                }
                Some(_) => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return inner.jobs.get(&id).map(|j| Self::view_locked(id, j));
            }
            let (guard, _) = self
                .done_cv
                .wait_timeout(inner, deadline - now)
                .expect("queue lock");
            inner = guard;
        }
    }

    /// `(queued, running, done, failed)` counts for `GET /v1/stats`.
    pub fn job_counts(&self) -> (u64, u64, u64, u64) {
        let inner = self.inner.lock().expect("queue lock");
        let queued = inner.queue.len() as u64;
        let running = inner
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .count() as u64;
        (queued, running, inner.done, inner.failed)
    }

    /// Signals workers to exit once the queue drains of claimable work.
    pub fn shutdown(&self) {
        self.inner.lock().expect("queue lock").shutdown = true;
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Starts a graceful drain: new submissions get 503 `draining`,
    /// queued and running jobs finish normally, and workers exit once
    /// nothing claimable remains.
    pub fn begin_drain(&self) {
        self.inner.lock().expect("queue lock").draining = true;
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("queue lock").draining
    }

    /// Blocks until a started drain completes (queue empty, nothing
    /// running) or the timeout passes. Returns whether it completed.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.drained() {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .done_cv
                .wait_timeout(inner, deadline - now)
                .expect("queue lock");
            inner = guard;
        }
    }

    /// Claims the oldest queued job whose tenant has concurrency headroom.
    /// Returns `None` once shutdown is signalled.
    fn claim(&self) -> Option<(u64, ScenarioSpec, Arc<AtomicU64>)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.shutdown {
                return None;
            }
            // A draining service runs everything already queued, then
            // releases its workers.
            if inner.draining && inner.queue.is_empty() {
                return None;
            }
            let max_concurrent = self.quota.max_concurrent;
            let pick = inner.queue.iter().position(|id| {
                inner
                    .jobs
                    .get(id)
                    .map(|j| {
                        inner
                            .tenants
                            .get(&j.tenant)
                            .map(|c| c.running < max_concurrent)
                            .unwrap_or(true)
                    })
                    .unwrap_or(false)
            });
            if let Some(pos) = pick {
                let id = inner.queue.remove(pos).expect("position valid");
                let job = inner.jobs.get_mut(&id).expect("claimed job exists");
                job.status = JobStatus::Running;
                let spec = job.spec.clone();
                let progress = job.progress.clone();
                let tenant = job.tenant.clone();
                let counters = inner.tenants.entry(tenant).or_default();
                counters.queued = counters.queued.saturating_sub(1);
                counters.running += 1;
                return Some((id, spec, progress));
            }
            inner = self.work_cv.wait(inner).expect("queue lock");
        }
    }

    fn finish(&self, id: u64, outcome: Result<Arc<Vec<u8>>, String>) {
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(job) = inner.jobs.get_mut(&id) {
            let tenant = job.tenant.clone();
            match outcome {
                Ok(payload) => {
                    job.status = JobStatus::Done;
                    job.payload = Some(payload);
                    inner.done += 1;
                }
                Err(error) => {
                    job.status = JobStatus::Failed;
                    job.error = Some(error);
                    inner.failed += 1;
                }
            }
            if let Some(c) = inner.tenants.get_mut(&tenant) {
                c.running = c.running.saturating_sub(1);
            }
        }
        drop(inner);
        // A job finishing may unblock a tenant that was at its concurrency
        // cap, so every parked worker rescans the queue.
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Runs one job synchronously on the calling thread: execute, cache,
    /// publish. Public so the `?verify=1` path and tests can share the
    /// exact production execution path.
    pub fn run_job(&self, id: u64, spec: &ScenarioSpec, progress: &AtomicU64) {
        let key = spec.cache_key();
        let result = catch_unwind(AssertUnwindSafe(|| {
            scenario::execute(spec, |ps| progress.store(ps, Ordering::Relaxed))
        }));
        let outcome = match result {
            Ok(Ok(out)) => {
                let payload = scenario::result_payload(spec, &out);
                Ok(self.cache.insert(key, payload))
            }
            Ok(Err(run_err)) => Err(scenario::error_json(&run_err).to_json()),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("worker panicked");
                Err(obj([
                    ("kind", Json::Str("panic".into())),
                    ("message", Json::Str(msg.to_string())),
                ])
                .to_json())
            }
        };
        self.finish(id, outcome);
    }

    /// The worker thread body: claim, run, repeat until shutdown.
    pub fn worker_loop(self: &Arc<Self>) {
        while let Some((id, spec, progress)) = self.claim() {
            self.run_job(id, &spec, &progress);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(body: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&json::parse(body.as_bytes()).unwrap()).unwrap()
    }

    fn tiny() -> ScenarioSpec {
        spec(r#"{"workload":"popcount","n":2,"seed":3}"#)
    }

    #[test]
    fn quota_rejections_map_to_http_statuses() {
        let state = ServiceState::new(
            Quota {
                max_queued: 1,
                max_concurrent: 1,
                max_sim_us: 1_000,
            },
            64,
        );
        // No workers running: the first submit parks in the queue.
        let s = spec(r#"{"workload":"popcount","n":2,"seed":3,"max_sim_us":500}"#);
        state.submit("alice", s.clone()).unwrap();
        let err = state.submit("alice", s.clone()).unwrap_err();
        assert_eq!(err.http_status(), 429);
        assert!(matches!(err, SubmitError::TenantQueueFull { .. }));
        // A different tenant still gets in.
        state.submit("bob", s).unwrap();
        // Sim-time quota.
        let big = spec(r#"{"workload":"popcount","n":2,"seed":3,"max_sim_us":2000}"#);
        let err = state.submit("alice", big).unwrap_err();
        assert!(matches!(err, SubmitError::SimTimeQuota { .. }));
        assert_eq!(err.http_status(), 429);
    }

    #[test]
    fn global_queue_capacity_is_enforced() {
        let state = ServiceState::new(Quota::default(), 2);
        state.submit("a", tiny()).unwrap();
        state.submit("b", tiny()).unwrap();
        assert_eq!(
            state.submit("c", tiny()).unwrap_err(),
            SubmitError::QueueFull
        );
    }

    #[test]
    fn workers_drain_the_queue_and_populate_the_cache() {
        let state = Arc::new(ServiceState::new(Quota::default(), 64));
        let s = tiny();
        let key = s.cache_key();
        let id = state.submit("alice", s).unwrap();
        let worker = {
            let state = state.clone();
            std::thread::spawn(move || state.worker_loop())
        };
        let view = state
            .wait_done(id, Duration::from_secs(120))
            .expect("job exists");
        assert_eq!(view.status, JobStatus::Done);
        assert!(view.payload.is_some());
        assert!(state.cache.lookup(key).is_some());
        state.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn drain_finishes_queued_work_and_releases_workers() {
        let state = Arc::new(ServiceState::new(Quota::default(), 64));
        let id1 = state.submit("alice", tiny()).unwrap();
        let id2 = state.submit("bob", tiny()).unwrap();
        state.begin_drain();
        // Draining refuses new work with the dedicated error kind.
        let err = state.submit("carol", tiny()).unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        assert_eq!(err.http_status(), 503);
        assert_eq!(err.retry_after_secs(), Some(5));
        assert_eq!(
            err.to_json().get("kind").unwrap().as_str(),
            Some("draining")
        );
        // Workers started after the drain still run the queued jobs.
        let worker = {
            let state = state.clone();
            std::thread::spawn(move || state.worker_loop())
        };
        assert!(state.wait_drained(Duration::from_secs(120)));
        worker.join().unwrap();
        for id in [id1, id2] {
            let view = state.job_view(id).expect("job retained");
            assert_eq!(view.status, JobStatus::Done, "queued job ran to done");
        }
    }

    #[test]
    fn failed_jobs_leave_the_pool_accepting_work() {
        let state = Arc::new(ServiceState::new(Quota::default(), 64));
        let hang = spec(
            r#"{"workload":"popcount","n":2,"seed":3,
                "faults":"fault accel_hang from_us=0\n","max_sim_us":500}"#,
        );
        let id = state.submit("alice", hang).unwrap();
        let worker = {
            let state = state.clone();
            std::thread::spawn(move || state.worker_loop())
        };
        let view = state.wait_done(id, Duration::from_secs(120)).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        let err = json::parse(view.error.as_ref().unwrap().as_bytes()).unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("deadlock"));
        // Same worker thread picks up and completes a healthy job.
        let id2 = state.submit("alice", tiny()).unwrap();
        let view2 = state.wait_done(id2, Duration::from_secs(120)).unwrap();
        assert_eq!(view2.status, JobStatus::Done);
        state.shutdown();
        worker.join().unwrap();
    }
}
