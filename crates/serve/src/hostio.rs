//! Injectable host I/O for the on-disk store tier.
//!
//! Every byte the [`store`](crate::store) reads or writes goes through
//! the [`HostIo`] trait, so the recovery and degradation paths can be
//! driven deterministically in-process:
//!
//! * [`RealIo`] — the production implementation over `std::fs`.
//! * [`MemIo`] — an in-memory filesystem for hermetic unit tests; its
//!   file contents are directly inspectable and corruptible, which is
//!   how the torn-tail and flipped-CRC recovery tests stage their
//!   damage.
//! * [`FaultyIo`] — a deterministic fault layer over any inner `HostIo`,
//!   seeded like `duet-verify`'s `FaultPlan`: short writes, `EINTR`,
//!   full-disk `ENOSPC`, fsync failures, and read bit-flips, each a pure
//!   function of the seed and the operation counter.
//!
//! The trait is deliberately narrow — append-only writes, whole-file and
//! ranged reads, truncate, sync — because that is the entire I/O surface
//! an append-only segment log needs.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The store's window onto the host filesystem. Implementations must be
/// safe to drive from one thread at a time (the store serializes access
/// behind its own lock).
pub trait HostIo: Send {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) of regular files directly inside `dir`.
    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads `len` bytes at `offset`. Short files are an error.
    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Appends to `path` (creating it if missing), returning how many
    /// bytes were written — **may be fewer than `buf.len()`** (a short
    /// write) or fail with `ErrorKind::Interrupted`; callers loop.
    fn append(&mut self, path: &Path, buf: &[u8]) -> io::Result<usize>;
    /// Flushes `path`'s written data to durable storage.
    fn sync(&mut self, path: &Path) -> io::Result<()>;
    /// Truncates `path` to `len` bytes.
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;
    /// Current length of `path` in bytes.
    fn file_len(&mut self, path: &Path) -> io::Result<u64>;
}

/// Production I/O over `std::fs`. The most recent append handle is
/// cached so a hot append path does not reopen the segment file per
/// record. Only one handle is kept — the store appends to a single
/// active segment at a time, and caching per path would accumulate one
/// open fd per retired segment as rotation walks forward.
#[derive(Default)]
pub struct RealIo {
    appender: Option<(PathBuf, File)>,
}

impl RealIo {
    /// A fresh instance with no open handles.
    pub fn new() -> Self {
        RealIo::default()
    }

    fn appender(&mut self, path: &Path) -> io::Result<&mut File> {
        if self.appender.as_ref().map(|(p, _)| p.as_path()) != Some(path) {
            let f = OpenOptions::new().create(true).append(true).open(path)?;
            self.appender = Some((path.to_path_buf(), f));
        }
        Ok(&mut self.appender.as_mut().expect("set above").1)
    }
}

impl HostIo for RealIo {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&mut self, path: &Path, buf: &[u8]) -> io::Result<usize> {
        self.appender(path)?.write(buf)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.appender(path)?.sync_all()
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        // Drop any cached append handle first: append-mode writes ignore
        // the cursor, but a stale handle on some platforms keeps the old
        // length cached.
        if self.appender.as_ref().is_some_and(|(p, _)| p == path) {
            self.appender = None;
        }
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// An in-memory filesystem: `path → bytes`. Deterministic, hermetic, and
/// open to direct inspection/corruption by tests.
#[derive(Default)]
pub struct MemIo {
    files: HashMap<PathBuf, Vec<u8>>,
    dirs: Vec<PathBuf>,
}

impl MemIo {
    /// An empty filesystem.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// Direct access to a file's bytes (test staging: flip bits, truncate
    /// by hand, plant garbage).
    pub fn file_mut(&mut self, path: &Path) -> Option<&mut Vec<u8>> {
        self.files.get_mut(path)
    }

    /// Direct read access to a file's bytes.
    pub fn file(&self, path: &Path) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// Plants a file wholesale.
    pub fn put_file(&mut self, path: &Path, bytes: Vec<u8>) {
        self.files.insert(path.to_path_buf(), bytes);
    }
}

impl HostIo for MemIo {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        if !self.dirs.iter().any(|d| d == dir) {
            self.dirs.push(dir.to_path_buf());
        }
        Ok(())
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = self
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect();
        names.sort();
        Ok(names)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let bytes = self
            .files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "offset too large"))?;
        if start + len > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of file",
            ));
        }
        Ok(bytes[start..start + len].to_vec())
    }

    fn append(&mut self, path: &Path, buf: &[u8]) -> io::Result<usize> {
        self.files
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn sync(&mut self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let bytes = self
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        bytes.truncate(len as usize);
        Ok(())
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        self.files
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
}

/// A cloneable handle onto one shared [`MemIo`]: every clone sees the
/// same files. This is how restart tests work — open a store over one
/// handle, drop the store (the "crash"), stage corruption through
/// another handle, and reopen over the same bytes.
#[derive(Clone, Default)]
pub struct SharedMemIo {
    shared: std::sync::Arc<std::sync::Mutex<MemIo>>,
}

impl SharedMemIo {
    /// An empty shared filesystem.
    pub fn new() -> Self {
        SharedMemIo::default()
    }

    /// Runs `f` with direct access to the backing [`MemIo`] (stage
    /// corruption, inspect bytes).
    pub fn with<R>(&self, f: impl FnOnce(&mut MemIo) -> R) -> R {
        f(&mut self.shared.lock().expect("shared mem io lock"))
    }
}

impl HostIo for SharedMemIo {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        self.with(|m| m.create_dir_all(dir))
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        self.with(|m| m.list_dir(dir))
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.with(|m| m.read_file(path))
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.with(|m| m.read_range(path, offset, len))
    }

    fn append(&mut self, path: &Path, buf: &[u8]) -> io::Result<usize> {
        self.with(|m| m.append(path, buf))
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.with(|m| m.sync(path))
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        self.with(|m| m.truncate(path, len))
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        self.with(|m| m.file_len(path))
    }
}

/// Which host-I/O faults to inject and how often. Every field is a pure
/// schedule — there is no wall-clock or OS entropy anywhere — so a given
/// `(plan, operation sequence)` always produces the same failures, the
/// same short-write lengths, and the same flipped bits.
#[derive(Clone, Debug, Default)]
pub struct IoFaultPlan {
    /// Seed mixed into every per-operation decision (short-write split
    /// points, flipped-bit positions).
    pub seed: u64,
    /// Every Nth append call writes only part of the buffer (0 = never).
    pub short_write_every: u64,
    /// Every Nth append call fails with `ErrorKind::Interrupted` before
    /// writing anything (0 = never).
    pub eintr_every: u64,
    /// Appends fail with `ErrorKind::StorageFull` once this many bytes
    /// have been written through this layer (`None` = unlimited disk).
    pub disk_capacity: Option<u64>,
    /// `sync` calls fail after this many successes (`None` = never).
    pub fail_sync_after: Option<u64>,
    /// Every Nth ranged read has one bit flipped in its result (0 =
    /// never). Whole-file recovery reads are left intact so the fault
    /// targets the serving path, not startup.
    pub flip_read_bit_every: u64,
    /// The Nth whole-file read (1-based) fails with an injected I/O
    /// error (`None` = never). Recovery reads segments in sorted order,
    /// so this targets one specific segment during startup replay.
    pub fail_read_file_on: Option<u64>,
}

/// A deterministic fault layer over any [`HostIo`].
pub struct FaultyIo<I: HostIo> {
    inner: I,
    plan: IoFaultPlan,
    appends: u64,
    syncs: u64,
    reads: u64,
    file_reads: u64,
    bytes_written: u64,
}

impl<I: HostIo> FaultyIo<I> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: I, plan: IoFaultPlan) -> Self {
        FaultyIo {
            inner,
            plan,
            appends: 0,
            syncs: 0,
            reads: 0,
            file_reads: 0,
            bytes_written: 0,
        }
    }

    /// The wrapped implementation (test inspection).
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }

    /// SplitMix-style mix of the seed and an operation counter.
    fn mix(&self, op: u64) -> u64 {
        let mut z = self
            .plan
            .seed
            .wrapping_add(op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<I: HostIo> HostIo for FaultyIo<I> {
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list_dir(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.file_reads += 1;
        if self.plan.fail_read_file_on == Some(self.file_reads) {
            return Err(io::Error::other("injected whole-file read failure"));
        }
        self.inner.read_file(path)
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.reads += 1;
        let mut bytes = self.inner.read_range(path, offset, len)?;
        let every = self.plan.flip_read_bit_every;
        if every != 0 && self.reads.is_multiple_of(every) && !bytes.is_empty() {
            let r = self.mix(self.reads);
            let byte = (r as usize / 8) % bytes.len();
            bytes[byte] ^= 1 << (r % 8);
        }
        Ok(bytes)
    }

    fn append(&mut self, path: &Path, buf: &[u8]) -> io::Result<usize> {
        self.appends += 1;
        let eintr = self.plan.eintr_every;
        if eintr != 0 && self.appends.is_multiple_of(eintr) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut len = buf.len();
        let short = self.plan.short_write_every;
        if short != 0 && self.appends.is_multiple_of(short) && len > 1 {
            // Deterministic split point somewhere inside the buffer.
            len = 1 + (self.mix(self.appends) as usize % (len - 1));
        }
        if let Some(cap) = self.plan.disk_capacity {
            let room = cap.saturating_sub(self.bytes_written);
            if room == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected disk full",
                ));
            }
            len = len.min(room as usize);
        }
        let n = self.inner.append(path, &buf[..len])?;
        self.bytes_written += n as u64;
        Ok(n)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        if let Some(after) = self.plan.fail_sync_after {
            if self.syncs >= after {
                return Err(io::Error::other("injected fsync failure"));
            }
        }
        self.syncs += 1;
        self.inner.sync(path)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_round_trips_and_lists() {
        let mut io = MemIo::new();
        let dir = Path::new("/store");
        io.create_dir_all(dir).unwrap();
        let p = dir.join("seg-000001.dlog");
        assert_eq!(io.append(&p, b"hello").unwrap(), 5);
        io.append(&p, b" world").unwrap();
        assert_eq!(io.read_file(&p).unwrap(), b"hello world");
        assert_eq!(io.read_range(&p, 6, 5).unwrap(), b"world");
        assert!(io.read_range(&p, 8, 5).is_err());
        assert_eq!(io.list_dir(dir).unwrap(), vec!["seg-000001.dlog"]);
        io.truncate(&p, 5).unwrap();
        assert_eq!(io.file_len(&p).unwrap(), 5);
    }

    #[test]
    fn faulty_io_is_deterministic() {
        let run = |seed| {
            let plan = IoFaultPlan {
                seed,
                short_write_every: 2,
                eintr_every: 5,
                ..IoFaultPlan::default()
            };
            let mut io = FaultyIo::new(MemIo::new(), plan);
            let p = PathBuf::from("/s/a");
            let mut log = Vec::new();
            for _ in 0..10 {
                match io.append(&p, b"0123456789abcdef") {
                    Ok(n) => log.push(n as i64),
                    Err(_) => log.push(-1),
                }
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "seed must matter for split points");
        assert!(run(7).contains(&-1), "EINTR schedule fires");
    }

    #[test]
    fn faulty_io_disk_capacity_hits_storage_full() {
        let plan = IoFaultPlan {
            disk_capacity: Some(10),
            ..IoFaultPlan::default()
        };
        let mut io = FaultyIo::new(MemIo::new(), plan);
        let p = PathBuf::from("/s/a");
        assert_eq!(io.append(&p, b"0123456789abcdef").unwrap(), 10);
        let err = io.append(&p, b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn faulty_io_sync_fails_after_budget() {
        let plan = IoFaultPlan {
            fail_sync_after: Some(1),
            ..IoFaultPlan::default()
        };
        let mut io = FaultyIo::new(MemIo::new(), plan);
        let p = PathBuf::from("/s/a");
        io.append(&p, b"x").unwrap();
        assert!(io.sync(&p).is_ok());
        assert!(io.sync(&p).is_err());
    }

    #[test]
    fn faulty_io_fails_only_the_scheduled_whole_file_read() {
        let plan = IoFaultPlan {
            fail_read_file_on: Some(2),
            ..IoFaultPlan::default()
        };
        let mut io = FaultyIo::new(MemIo::new(), plan);
        let p = PathBuf::from("/s/a");
        io.append(&p, b"bytes").unwrap();
        assert!(io.read_file(&p).is_ok());
        assert!(io.read_file(&p).is_err(), "second read is the faulted one");
        assert!(io.read_file(&p).is_ok(), "fault is transient");
    }

    #[test]
    fn real_io_keeps_one_append_handle_across_segment_switches() {
        let dir = std::env::temp_dir().join(format!("duet-hostio-appender-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut io = RealIo::new();
        io.create_dir_all(&dir).unwrap();
        let a = dir.join("seg-000001.dlog");
        let b = dir.join("seg-000002.dlog");
        // Alternate paths the way rotation + flush would; the single
        // cached handle must follow the active path without corrupting
        // either file.
        io.append(&a, b"aaa").unwrap();
        io.append(&b, b"bbb").unwrap();
        io.append(&a, b"AAA").unwrap();
        io.sync(&a).unwrap();
        assert!(
            io.appender.as_ref().is_some_and(|(p, _)| p == &a),
            "only the most recent path's handle is cached"
        );
        assert_eq!(io.read_file(&a).unwrap(), b"aaaAAA");
        assert_eq!(io.read_file(&b).unwrap(), b"bbb");
        io.truncate(&a, 3).unwrap();
        assert!(io.appender.is_none(), "truncate drops the cached handle");
        assert_eq!(io.read_file(&a).unwrap(), b"aaa");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_io_read_bit_flip_changes_exactly_one_bit() {
        let plan = IoFaultPlan {
            seed: 3,
            flip_read_bit_every: 1,
            ..IoFaultPlan::default()
        };
        let mut io = FaultyIo::new(MemIo::new(), plan);
        let p = PathBuf::from("/s/a");
        io.append(&p, b"abcdefgh").unwrap();
        let clean = io.read_file(&p).unwrap();
        let flipped = io.read_range(&p, 0, 8).unwrap();
        let differing: u32 = clean
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1);
    }
}
