//! The content-addressed result cache.
//!
//! Keyed by [`ScenarioSpec::cache_key`](crate::spec::ScenarioSpec::cache_key)
//! (a hash of the spec's canonical bytes) and storing the **exact payload
//! bytes** the first execution produced. Because the simulator is
//! bit-deterministic, those bytes are a pure function of the key — a hit
//! returns them without simulating anything, and `?verify=1` can re-run
//! the spec and demand byte-identity as a standing determinism check.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters exposed on `GET /v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// `?verify=1` re-runs whose payload did not match the stored bytes.
    pub verify_mismatches: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Thread-safe map from cache key to immutable payload bytes.
#[derive(Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    verify_mismatches: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a key, counting a hit or miss.
    pub fn lookup(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let got = self.entries.lock().expect("cache lock").get(&key).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a payload. First write wins: concurrent workers that raced
    /// on the same spec computed identical bytes (determinism), so keeping
    /// the incumbent is safe and preserves pointer identity for holders.
    pub fn insert(&self, key: u64, payload: Vec<u8>) -> Arc<Vec<u8>> {
        let mut map = self.entries.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            Arc::new(payload)
        });
        entry.clone()
    }

    /// Drops an entry (used when verification catches a mismatch).
    pub fn evict(&self, key: u64) -> bool {
        self.entries
            .lock()
            .expect("cache lock")
            .remove(&key)
            .is_some()
    }

    /// Records a verification mismatch.
    pub fn note_verify_mismatch(&self) {
        self.verify_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Test hook: corrupts a stored entry in place by flipping one byte,
    /// simulating a poisoned cache. Returns false if the key is absent.
    pub fn poison(&self, key: u64) -> bool {
        let mut map = self.entries.lock().expect("cache lock");
        match map.get_mut(&key) {
            Some(entry) => {
                let mut bytes = (**entry).clone();
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0x01;
                }
                *entry = Arc::new(bytes);
                true
            }
            None => false,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            verify_mismatches: self.verify_mismatches.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_and_stats() {
        let c = ResultCache::new();
        assert!(c.lookup(1).is_none());
        c.insert(1, b"abc".to_vec());
        assert_eq!(c.lookup(1).unwrap().as_slice(), b"abc");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn first_insert_wins() {
        let c = ResultCache::new();
        c.insert(7, b"first".to_vec());
        let kept = c.insert(7, b"second".to_vec());
        assert_eq!(kept.as_slice(), b"first");
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn poison_flips_a_byte_and_evict_removes() {
        let c = ResultCache::new();
        assert!(!c.poison(9));
        c.insert(9, b"payload".to_vec());
        assert!(c.poison(9));
        assert_ne!(c.lookup(9).unwrap().as_slice(), b"payload");
        assert!(c.evict(9));
        assert!(c.lookup(9).is_none());
    }
}
