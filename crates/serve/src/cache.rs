//! The content-addressed result cache.
//!
//! Keyed by [`ScenarioSpec::cache_key`](crate::spec::ScenarioSpec::cache_key)
//! (a hash of the spec's canonical bytes) and storing the **exact payload
//! bytes** the first execution produced. Because the simulator is
//! bit-deterministic, those bytes are a pure function of the key — a hit
//! returns them without simulating anything, and `?verify=1` can re-run
//! the spec and demand byte-identity as a standing determinism check.
//!
//! Two tiers:
//!
//! * a **memory tier** — bounded by a configurable byte budget with
//!   deterministic LRU eviction (strict recency order kept by a
//!   sequence counter; same accesses → same evictions on any host);
//! * an optional **disk tier** — the crash-consistent segment log in
//!   [`store`](crate::store). Inserts are written through; memory
//!   misses fall back to a CRC-verified disk read and promote the entry
//!   back into memory. LRU eviction only drops the memory copy — the
//!   durable record stays; eviction *for cause* (a `?verify=1`
//!   mismatch) writes a tombstone so the poisoned entry stays dead
//!   across restarts.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::store::DiskStore;

/// Counters exposed on `GET /v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (either tier).
    pub hits: u64,
    /// Lookups that found nothing in any tier.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// `?verify=1` re-runs whose payload did not match the stored bytes.
    pub verify_mismatches: u64,
    /// Entries currently resident in the memory tier.
    pub entries: u64,
    /// Payload bytes currently resident in the memory tier.
    pub mem_bytes: u64,
    /// Entries LRU-evicted from the memory tier to stay under budget.
    pub evictions: u64,
    /// Memory-tier misses served by the disk tier.
    pub disk_hits: u64,
}

/// Cache sizing and tiering.
pub struct CacheConfig {
    /// Memory-tier payload byte budget. The most recently touched entry
    /// is never evicted, so a single oversized payload still caches.
    pub max_bytes: u64,
    /// Durable tier, if the service was started with `--store`.
    pub store: Option<Arc<DiskStore>>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_bytes: 256 * 1024 * 1024,
            store: None,
        }
    }
}

/// The memory tier: entries plus a strict LRU order. `seq` is a logical
/// clock bumped on every touch; `by_seq` maps each live sequence number
/// back to its key, so the least recently used entry is always the
/// first map entry — no wall clock, no hash-order dependence.
#[derive(Default)]
struct MemTier {
    entries: HashMap<u64, (Arc<Vec<u8>>, u64)>,
    by_seq: BTreeMap<u64, u64>,
    bytes: u64,
    next_seq: u64,
}

impl MemTier {
    fn touch(&mut self, key: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            let prev = std::mem::replace(&mut entry.1, seq);
            self.by_seq.remove(&prev);
            self.by_seq.insert(seq, key);
        }
    }

    fn insert(&mut self, key: u64, payload: Arc<Vec<u8>>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += payload.len() as u64;
        if let Some((old, old_seq)) = self.entries.insert(key, (payload, seq)) {
            self.bytes -= old.len() as u64;
            self.by_seq.remove(&old_seq);
        }
        self.by_seq.insert(seq, key);
    }

    fn remove(&mut self, key: u64) -> bool {
        match self.entries.remove(&key) {
            Some((payload, seq)) => {
                self.bytes -= payload.len() as u64;
                self.by_seq.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Evicts least-recently-used entries until under `budget`, never
    /// evicting the most recently touched one. Returns how many went.
    fn enforce_budget(&mut self, budget: u64) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget && self.entries.len() > 1 {
            let key = match self.by_seq.iter().next() {
                Some((_, &key)) => key,
                None => break,
            };
            self.remove(key);
            evicted += 1;
        }
        evicted
    }
}

/// Thread-safe two-tier map from cache key to immutable payload bytes.
pub struct ResultCache {
    mem: Mutex<MemTier>,
    max_bytes: u64,
    store: Option<Arc<DiskStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    verify_mismatches: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::with_config(CacheConfig::default())
    }
}

impl ResultCache {
    /// An empty, memory-only cache with the default byte budget.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// A cache with an explicit budget and optional durable tier.
    pub fn with_config(cfg: CacheConfig) -> Self {
        ResultCache {
            mem: Mutex::new(MemTier::default()),
            max_bytes: cfg.max_bytes,
            store: cfg.store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            verify_mismatches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// The durable tier, if configured.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Looks up a key: memory first, then the disk tier (promoting the
    /// entry back into memory on a disk hit). Counts a hit or miss.
    pub fn lookup(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        {
            let mut mem = self.mem.lock().expect("cache lock");
            if let Some((payload, _)) = mem.entries.get(&key) {
                let payload = payload.clone();
                mem.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(payload);
            }
        }
        // Disk read happens outside the memory lock: it is the slow path
        // and must not serialize memory-tier hits behind it.
        if let Some(store) = &self.store {
            if let Some(bytes) = store.get(key) {
                let payload = Arc::new(bytes);
                let evicted = {
                    let mut mem = self.mem.lock().expect("cache lock");
                    mem.insert(key, payload.clone());
                    mem.enforce_budget(self.max_bytes)
                };
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                // A concurrent evict-for-cause may have tombstoned the
                // key between our disk read and the insert above. Evict
                // writes its tombstone *before* touching the memory
                // tier, so if the key is still indexed here, any
                // in-flight evict has yet to do either and will remove
                // our promoted copy itself; if it is gone, we drop the
                // copy now. Either way the poisoned entry cannot keep
                // serving memory hits.
                if !store.contains(key) {
                    self.mem.lock().expect("cache lock").remove(key);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(payload);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a payload. First write wins: concurrent workers that raced
    /// on the same spec computed identical bytes (determinism), so keeping
    /// the incumbent is safe and preserves pointer identity for holders.
    /// Writes through to the disk tier (skipped while degraded).
    pub fn insert(&self, key: u64, payload: Vec<u8>) -> Arc<Vec<u8>> {
        let (entry, fresh, evicted) = {
            let mut mem = self.mem.lock().expect("cache lock");
            if let Some((existing, _)) = mem.entries.get(&key) {
                let existing = existing.clone();
                mem.touch(key);
                (existing, false, 0)
            } else {
                let payload = Arc::new(payload);
                mem.insert(key, payload.clone());
                let evicted = mem.enforce_budget(self.max_bytes);
                (payload, true, evicted)
            }
        };
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        if fresh {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            // Durable append outside the memory lock; a degraded store
            // absorbs this as a no-op.
            if let Some(store) = &self.store {
                store.append(key, &entry);
            }
        }
        entry
    }

    /// Drops an entry *for cause* (verification caught a mismatch). The
    /// disk tier gets a tombstone so the entry stays dead after restart.
    ///
    /// The tombstone lands **before** the memory copy is dropped: a
    /// concurrent [`lookup`](Self::lookup) promoting the key from disk
    /// re-checks the store index after its insert, and this ordering is
    /// what makes that re-check conclusive (see the comment there).
    pub fn evict(&self, key: u64) -> bool {
        if let Some(store) = &self.store {
            store.append_tombstone(key);
        }
        self.mem.lock().expect("cache lock").remove(key)
    }

    /// Records a verification mismatch.
    pub fn note_verify_mismatch(&self) {
        self.verify_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Test hook: corrupts a stored entry in place by flipping one byte,
    /// simulating a poisoned cache. Returns false if the key is absent.
    pub fn poison(&self, key: u64) -> bool {
        let mut mem = self.mem.lock().expect("cache lock");
        match mem.entries.get_mut(&key) {
            Some((entry, _)) => {
                let mut bytes = (**entry).clone();
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0x01;
                }
                *entry = Arc::new(bytes);
                true
            }
            None => false,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, mem_bytes) = {
            let mem = self.mem.lock().expect("cache lock");
            (mem.entries.len() as u64, mem.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            verify_mismatches: self.verify_mismatches.load(Ordering::Relaxed),
            entries,
            mem_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostio::SharedMemIo;
    use crate::store::{DiskStore, StoreConfig};

    fn bounded(max_bytes: u64) -> ResultCache {
        ResultCache::with_config(CacheConfig {
            max_bytes,
            store: None,
        })
    }

    fn disk_backed(fs: &SharedMemIo, max_bytes: u64) -> ResultCache {
        let store = DiskStore::open(StoreConfig::new("/cache"), Box::new(fs.clone())).unwrap();
        ResultCache::with_config(CacheConfig {
            max_bytes,
            store: Some(Arc::new(store)),
        })
    }

    #[test]
    fn lookup_insert_and_stats() {
        let c = ResultCache::new();
        assert!(c.lookup(1).is_none());
        c.insert(1, b"abc".to_vec());
        assert_eq!(c.lookup(1).unwrap().as_slice(), b"abc");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert_eq!(s.mem_bytes, 3);
    }

    #[test]
    fn first_insert_wins() {
        let c = ResultCache::new();
        c.insert(7, b"first".to_vec());
        let kept = c.insert(7, b"second".to_vec());
        assert_eq!(kept.as_slice(), b"first");
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn poison_flips_a_byte_and_evict_removes() {
        let c = ResultCache::new();
        assert!(!c.poison(9));
        c.insert(9, b"payload".to_vec());
        assert!(c.poison(9));
        assert_ne!(c.lookup(9).unwrap().as_slice(), b"payload");
        assert!(c.evict(9));
        assert!(c.lookup(9).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let c = bounded(10);
        c.insert(1, vec![0; 4]);
        c.insert(2, vec![0; 4]);
        c.lookup(1); // 2 is now least recently used
        c.insert(3, vec![0; 4]); // 12 bytes > 10: evict 2
        assert!(c.lookup(2).is_none());
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.mem_bytes, 8);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let run = || {
            let c = bounded(64);
            for k in 0..32 {
                c.insert(k, vec![k as u8; 8]);
                c.lookup(k / 2);
            }
            let mut live: Vec<u64> = (0..32).filter(|&k| c.poison(k)).collect();
            live.sort_unstable();
            live
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_single_entry_still_caches() {
        let c = bounded(4);
        c.insert(1, vec![0; 100]);
        assert!(c.lookup(1).is_some(), "newest entry is never evicted");
        c.insert(2, vec![0; 100]);
        assert!(c.lookup(1).is_none());
        assert!(c.lookup(2).is_some());
    }

    #[test]
    fn disk_tier_serves_memory_evictions() {
        let fs = SharedMemIo::new();
        let c = disk_backed(&fs, 10);
        c.insert(1, b"one-payload".to_vec()); // 11 bytes, over budget alone
        c.insert(2, b"two-payload".to_vec()); // evicts 1 from memory
        let got = c.lookup(1).expect("disk tier must backfill");
        assert_eq!(got.as_slice(), b"one-payload");
        assert_eq!(c.stats().disk_hits, 1);
        assert!(c.stats().hits >= 1);
    }

    #[test]
    fn evict_for_cause_tombstones_the_disk_tier() {
        let fs = SharedMemIo::new();
        {
            let c = disk_backed(&fs, 1 << 20);
            c.insert(5, b"poisoned".to_vec());
            c.evict(5);
        }
        let c = disk_backed(&fs, 1 << 20);
        assert!(c.lookup(5).is_none(), "tombstone survives restart");
    }

    #[test]
    fn evict_for_cause_beats_concurrent_disk_promotion() {
        // A lookup that misses memory reads the payload off disk and
        // promotes it back into the memory tier. If that promotion races
        // an evict-for-cause, the poisoned payload must not survive in
        // memory once evict() has returned and in-flight lookups have
        // drained — whichever side loses the interleaving cleans up.
        let fs = SharedMemIo::new();
        let c = Arc::new(disk_backed(&fs, 1 << 20));
        for round in 0..200u64 {
            let key = round;
            c.insert(key, b"poisoned-payload".to_vec());
            // Drop the memory copy so lookups take the promotion path.
            c.mem.lock().unwrap().remove(key);
            let looper = {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..32 {
                        c.lookup(key);
                    }
                })
            };
            c.evict(key);
            looper.join().unwrap();
            assert!(
                c.lookup(key).is_none(),
                "round {round}: poisoned entry resurrected after evict"
            );
        }
    }

    #[test]
    fn disk_tier_restart_round_trip() {
        let fs = SharedMemIo::new();
        {
            let c = disk_backed(&fs, 1 << 20);
            c.insert(1, b"alpha".to_vec());
            c.insert(2, b"beta".to_vec());
        }
        let c = disk_backed(&fs, 1 << 20);
        assert_eq!(c.lookup(1).unwrap().as_slice(), b"alpha");
        assert_eq!(c.lookup(2).unwrap().as_slice(), b"beta");
        assert_eq!(c.stats().disk_hits, 2);
    }
}
