#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # duet-serve
//!
//! A multi-tenant simulation service over the Duet full-system simulator:
//! an HTTP/JSON API (hand-rolled on `std::net` — the repo takes no
//! external dependencies) that accepts scenario specifications, executes
//! them on a bounded job queue with a worker pool, and memoizes results
//! in a **content-addressed cache**.
//!
//! The cache is the point. The simulator is bit-deterministic: a result
//! payload is a pure function of the scenario spec, so the spec's
//! canonical byte encoding (shared with the snapshot-header config hash)
//! names the result outright. A repeat submission returns the stored
//! bytes without simulating anything, and `?verify=1` inverts the bet —
//! re-run the spec and demand byte-identity — turning the service into a
//! standing determinism regression check.
//!
//! Failure is part of the API: a spec whose fault plan wedges the machine
//! (e.g. `accel_hang` with no degrade policy) comes back as a structured
//! deadlock report from the run loop's watchdog, and the worker moves on
//! to the next job.
//!
//! Module map:
//!
//! - [`json`] — dependency-free JSON with deterministic serialization
//! - [`spec`] — scenario specs, validation, canonical bytes, cache keys
//! - [`scenario`] — spec → `System` → run → payload / structured error
//! - [`cache`] — the content-addressed result cache (bounded memory
//!   tier + optional durable disk tier)
//! - [`hostio`] — injectable host I/O with a deterministic fault layer
//! - [`store`] — the crash-consistent append-only segment log
//! - [`queue`] — bounded queue, worker pool, per-tenant quotas, drain
//! - [`http`] — minimal HTTP/1.1 request/response plumbing
//! - [`server`] — routing and the cache/verify protocol
//! - [`client`] — a blocking client with bounded, deterministic retries

// The service layer refuses panics-as-control-flow: `unwrap` on `Option`/
// `Result` is warned crate-wide (lock poisoning uses `expect` with a
// message; worker panics are caught and become structured errors).

pub mod cache;
pub mod client;
pub mod hostio;
pub mod http;
pub mod json;
pub mod queue;
pub mod scenario;
pub mod server;
pub mod spec;
pub mod store;

pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use client::RetryPolicy;
pub use hostio::{FaultyIo, HostIo, IoFaultPlan, MemIo, RealIo, SharedMemIo};
pub use queue::{JobStatus, JobView, Quota, ServiceState, SubmitError};
pub use server::{ServeConfig, Server};
pub use spec::{ScenarioSpec, SpecError, WorkloadSpec};
pub use store::{DiskStore, FsyncPolicy, RecoveryReport, StoreConfig, StoreStats};
