//! The crash-consistent on-disk tier under the result cache: an
//! append-only segment log with CRC-verified records and self-healing
//! recovery.
//!
//! # Format
//!
//! A store directory holds numbered segment files (`seg-000001.dlog`,
//! `seg-000002.dlog`, ...). Each segment starts with the snapshot
//! layer's standard header framing under the store's own magic —
//! [`STORE_MAGIC`], [`STORE_VERSION`], and a layout hash so a reader
//! from a different record-format generation refuses loudly — followed
//! by back-to-back records:
//!
//! ```text
//! ┌──────┬─────────┬─────────────┬───────────────┬───────────┐
//! │ kind │ key u64 │ payload_len │ payload bytes │ crc64 u64 │
//! │  u8  │   LE    │   u64 LE    │               │    LE     │
//! └──────┴─────────┴─────────────┴───────────────┴───────────┘
//!        └────────── CRC covers kind..payload ──────────┘
//! ```
//!
//! `kind` 0 is a put, `kind` 1 a tombstone (payload empty) written when
//! an entry is evicted for cause (`?verify=1` mismatch), so a poisoned
//! result cannot resurrect at the next restart. Within and across
//! segments, the **last record for a key wins**.
//!
//! # Recovery
//!
//! [`DiskStore::open`] replays every segment, byte-verifying each CRC:
//!
//! * a record that ends past the end of its file is a **torn tail** —
//!   the file is truncated back to the last valid record and the write
//!   path resumes from there;
//! * a CRC mismatch on a fully-framed record is a **quarantined
//!   record** — skipped, counted, and scanning continues at the next
//!   record boundary (a middle-of-file bit flip costs one record, not
//!   the segment);
//! * an implausible length or kind byte means framing itself is gone —
//!   the rest of the segment is unrecoverable and is truncated off;
//! * a segment with a bad header (magic/version/layout hash) — or one
//!   whose bytes cannot be read at all — is **skipped whole** and
//!   **sealed**: the active segment advances past it (starting empty),
//!   so appends never land behind records that were not replayed and a
//!   later restart that *can* parse the segment cannot resurrect its
//!   stale values over newer writes.
//!
//! Every decision lands in a structured [`RecoveryReport`] (served at
//! `GET /v1/recovery`, summarized in `/v1/stats`), never a panic.
//!
//! # Degradation
//!
//! A failed append, sync, or rotation marks the store **degraded**: the
//! service keeps answering from the memory tier alone (flag in
//! `/v1/stats`), rather than failing requests. Reads that hit a
//! corrupted record quarantine the entry and report a miss.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use duet_sim::{SnapError, SnapHasher, SnapReader, SnapWriter};

use crate::hostio::HostIo;
use crate::json::{obj, Json};

/// Leading magic of every segment file.
pub const STORE_MAGIC: [u8; 8] = *b"DUETSTR\0";
/// Segment format version. Bump on any layout change.
pub const STORE_VERSION: u32 = 1;
/// Sanity ceiling on a record's payload length; anything larger during
/// recovery means the length field itself is corrupt.
pub const MAX_RECORD_PAYLOAD: u64 = 64 * 1024 * 1024;

/// Fixed bytes before the first record: magic + version + layout hash.
const HEADER_LEN: u64 = 8 + 4 + 8;
/// Bytes of record framing around the payload (kind + key + len + crc).
const RECORD_OVERHEAD: u64 = 1 + 8 + 8 + 8;

const KIND_PUT: u8 = 0;
const KIND_TOMBSTONE: u8 = 1;

/// Hash identifying the record layout, checked in every segment header
/// the way snapshots check the config hash.
pub fn layout_hash() -> u64 {
    let mut h = SnapHasher::new();
    h.bytes(b"duet-store-record-v1:kind,key,len,payload,crc64");
    h.finish()
}

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    static TABLE: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    });
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// When the store calls `fsync` on the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every append — a record acknowledged is a record durable.
    Always,
    /// Never (the OS flushes on its own schedule); crash-consistent but
    /// the unsynced tail may be lost. Recovery handles either way.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// Store construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the segment files.
    pub dir: PathBuf,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_max_bytes: u64,
}

impl StoreConfig {
    /// Defaults: fsync on every append, 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why part of a segment was not recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Damage {
    /// Record framing ran past the end of the file (crash mid-append).
    TornTail,
    /// A fully-framed record whose CRC did not match its bytes.
    CrcMismatch,
    /// A length field beyond [`MAX_RECORD_PAYLOAD`]; framing is lost.
    BadLength,
    /// An unknown record kind byte; framing is lost.
    BadKind,
}

impl Damage {
    fn label(self) -> &'static str {
        match self {
            Damage::TornTail => "torn_tail",
            Damage::CrcMismatch => "crc_mismatch",
            Damage::BadLength => "bad_length",
            Damage::BadKind => "bad_kind",
        }
    }
}

/// One recovery decision inside one segment.
#[derive(Clone, Debug)]
pub struct QuarantineNote {
    /// Byte offset of the offending record.
    pub offset: u64,
    /// What was wrong with it.
    pub damage: Damage,
}

/// What recovery found in one segment file.
#[derive(Clone, Debug)]
pub struct SegmentReport {
    /// File name inside the store directory.
    pub file: String,
    /// `recovered`, `empty`, or `skipped` (bad header).
    pub status: &'static str,
    /// Records whose CRC verified and that entered the index.
    pub records: u64,
    /// Per-record quarantine decisions.
    pub quarantined: Vec<QuarantineNote>,
    /// Bytes cut off the end of the file (torn tail / lost framing).
    pub truncated_bytes: u64,
    /// Header error text when `status == "skipped"`.
    pub header_error: Option<String>,
}

impl SegmentReport {
    fn to_json(&self) -> Json {
        obj([
            ("file", Json::Str(self.file.clone())),
            ("status", Json::Str(self.status.to_string())),
            ("records", Json::U64(self.records)),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|q| {
                            obj([
                                ("offset", Json::U64(q.offset)),
                                ("damage", Json::Str(q.damage.label().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("truncated_bytes", Json::U64(self.truncated_bytes)),
            (
                "header_error",
                self.header_error
                    .clone()
                    .map(Json::Str)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

/// The structured outcome of startup recovery: every segment's verdict
/// plus aggregate counts. Served verbatim at `GET /v1/recovery`.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Per-segment decisions in replay order.
    pub segments: Vec<SegmentReport>,
    /// Distinct keys live in the index after replay.
    pub live_entries: u64,
    /// CRC-verified records replayed (includes superseded duplicates).
    pub recovered_records: u64,
    /// Records dropped for CRC mismatch.
    pub quarantined_records: u64,
    /// Bytes truncated off torn tails.
    pub truncated_bytes: u64,
    /// Segments skipped whole for bad headers.
    pub skipped_segments: u64,
}

impl RecoveryReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        obj([
            (
                "segments",
                Json::Arr(self.segments.iter().map(|s| s.to_json()).collect()),
            ),
            ("live_entries", Json::U64(self.live_entries)),
            ("recovered_records", Json::U64(self.recovered_records)),
            ("quarantined_records", Json::U64(self.quarantined_records)),
            ("truncated_bytes", Json::U64(self.truncated_bytes)),
            ("skipped_segments", Json::U64(self.skipped_segments)),
        ])
    }

    /// One-line human summary for the startup log.
    pub fn summary(&self) -> String {
        format!(
            "store recovery: {} live entries from {} segments ({} records replayed, {} quarantined, {} torn-tail bytes truncated, {} segments skipped)",
            self.live_entries,
            self.segments.len(),
            self.recovered_records,
            self.quarantined_records,
            self.truncated_bytes,
            self.skipped_segments,
        )
    }
}

/// Counters for `/v1/stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Whether the disk tier has failed over to memory-only.
    pub degraded: bool,
    /// Records appended since startup.
    pub appended_records: u64,
    /// Bytes appended since startup.
    pub appended_bytes: u64,
    /// Appends that failed (each one degrades the store).
    pub append_errors: u64,
    /// Lookups served by reading a record back off disk.
    pub disk_reads: u64,
    /// Disk reads that failed CRC verification (entry quarantined).
    pub disk_read_corrupt: u64,
    /// Keys currently resolvable from disk.
    pub indexed_entries: u64,
    /// CRC-verified records replayed at startup.
    pub recovered_records: u64,
    /// Records quarantined at startup.
    pub quarantined_records: u64,
}

/// Where a key's latest record lives.
#[derive(Clone, Copy, Debug)]
struct RecordLoc {
    segment: u64,
    /// Offset of the record's first byte (the kind byte).
    offset: u64,
    payload_len: u64,
}

struct StoreInner {
    io: Box<dyn HostIo>,
    index: std::collections::HashMap<u64, RecordLoc>,
    /// Id of the segment currently accepting appends.
    active_id: u64,
    /// Byte length of the active segment.
    active_len: u64,
}

/// The durable tier: one instance per service, shared behind the cache.
pub struct DiskStore {
    cfg: StoreConfig,
    inner: Mutex<StoreInner>,
    report: RecoveryReport,
    degraded: AtomicBool,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    append_errors: AtomicU64,
    disk_reads: AtomicU64,
    disk_read_corrupt: AtomicU64,
}

fn segment_name(id: u64) -> String {
    format!("seg-{id:06}.dlog")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".dlog")?;
    id.parse().ok()
}

fn read_le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Serializes one record (framing + CRC trailer).
fn encode_record(kind: u8, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
    buf.push(kind);
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc64(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// What `scan_segment` decided about one segment's bytes. Pure function
/// of the bytes — no I/O — so the recovery rules are unit-testable in
/// isolation.
struct SegmentScan {
    /// `(kind, key, record_offset, payload_len)` of every valid record.
    records: Vec<(u8, u64, u64, u64)>,
    /// Offset the file should be truncated to (`< file len` when a torn
    /// or unframable tail was found).
    valid_len: u64,
    quarantined: Vec<QuarantineNote>,
    header_error: Option<String>,
}

fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan {
        records: Vec::new(),
        valid_len: bytes.len() as u64,
        quarantined: Vec::new(),
        header_error: None,
    };
    if bytes.is_empty() {
        // A file created but never written (or truncated to nothing):
        // valid, empty; the append path re-writes the header.
        scan.valid_len = 0;
        return scan;
    }
    match SnapReader::with_custom_header(bytes, STORE_MAGIC, STORE_VERSION, layout_hash()) {
        Ok(_) => {}
        Err(SnapError::Truncated) => {
            // Crash inside the header write: nothing after it can exist,
            // so reset the file to empty.
            scan.valid_len = 0;
            scan.quarantined.push(QuarantineNote {
                offset: 0,
                damage: Damage::TornTail,
            });
            return scan;
        }
        Err(e) => {
            scan.header_error = Some(e.to_string());
            return scan;
        }
    }
    let len = bytes.len() as u64;
    let mut o = HEADER_LEN;
    loop {
        if o == len {
            break;
        }
        let rem = len - o;
        if rem < RECORD_OVERHEAD {
            scan.quarantined.push(QuarantineNote {
                offset: o,
                damage: Damage::TornTail,
            });
            scan.valid_len = o;
            break;
        }
        let at = o as usize;
        let kind = bytes[at];
        if kind > KIND_TOMBSTONE {
            scan.quarantined.push(QuarantineNote {
                offset: o,
                damage: Damage::BadKind,
            });
            scan.valid_len = o;
            break;
        }
        let key = read_le_u64(&bytes[at + 1..]);
        let payload_len = read_le_u64(&bytes[at + 9..]);
        if payload_len > MAX_RECORD_PAYLOAD {
            scan.quarantined.push(QuarantineNote {
                offset: o,
                damage: Damage::BadLength,
            });
            scan.valid_len = o;
            break;
        }
        let total = RECORD_OVERHEAD + payload_len;
        if rem < total {
            scan.quarantined.push(QuarantineNote {
                offset: o,
                damage: Damage::TornTail,
            });
            scan.valid_len = o;
            break;
        }
        let body_end = at + (total - 8) as usize;
        let stored = read_le_u64(&bytes[body_end..]);
        if crc64(&bytes[at..body_end]) != stored {
            // Framing is intact (lengths were plausible), so quarantine
            // just this record and keep scanning.
            scan.quarantined.push(QuarantineNote {
                offset: o,
                damage: Damage::CrcMismatch,
            });
        } else {
            scan.records.push((kind, key, o, payload_len));
        }
        o += total;
    }
    scan
}

impl DiskStore {
    /// Opens (or creates) the store, replaying and repairing every
    /// segment. I/O errors during recovery skip the affected segment
    /// rather than failing the open; only an unusable directory is a
    /// hard error.
    pub fn open(cfg: StoreConfig, mut io: Box<dyn HostIo>) -> io::Result<DiskStore> {
        io.create_dir_all(&cfg.dir)?;
        let mut names: Vec<(u64, String)> = io
            .list_dir(&cfg.dir)?
            .into_iter()
            .filter_map(|n| parse_segment_name(&n).map(|id| (id, n)))
            .collect();
        names.sort();

        let mut report = RecoveryReport::default();
        let mut index = std::collections::HashMap::new();
        let mut active_id = 1u64;
        let mut active_len = 0u64;
        for (id, name) in &names {
            let path = cfg.dir.join(name);
            let bytes = match io.read_file(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.segments.push(SegmentReport {
                        file: name.clone(),
                        status: "skipped",
                        records: 0,
                        quarantined: Vec::new(),
                        truncated_bytes: 0,
                        header_error: Some(format!("read failed: {e}")),
                    });
                    report.skipped_segments += 1;
                    // Seal the unreadable segment: if appends landed in a
                    // lower-numbered segment and a later restart *could*
                    // read this one, its stale records would replay after
                    // them (replay is in segment-id order, last record
                    // wins) and resurrect overwritten or tombstoned
                    // values.
                    active_id = active_id.max(id + 1);
                    active_len = 0;
                    continue;
                }
            };
            let scan = scan_segment(&bytes);
            if let Some(err) = scan.header_error {
                report.segments.push(SegmentReport {
                    file: name.clone(),
                    status: "skipped",
                    records: 0,
                    quarantined: Vec::new(),
                    truncated_bytes: 0,
                    header_error: Some(err),
                });
                report.skipped_segments += 1;
                // Never append into a segment we cannot parse; make sure
                // the next active id clears it. The new active segment
                // was never scanned, so it starts empty — a stale
                // active_len here would make the first append skip the
                // header write and index records at shifted offsets.
                active_id = active_id.max(id + 1);
                active_len = 0;
                continue;
            }
            let truncated = bytes.len() as u64 - scan.valid_len;
            if truncated > 0 {
                // Physically cut the damaged tail so future appends land
                // on a valid record boundary. If the host refuses, seal
                // the segment by rolling past it.
                if io.truncate(&path, scan.valid_len).is_err() {
                    active_id = active_id.max(id + 1);
                    active_len = 0;
                }
            }
            for (kind, key, offset, payload_len) in &scan.records {
                match *kind {
                    KIND_PUT => {
                        index.insert(
                            *key,
                            RecordLoc {
                                segment: *id,
                                offset: *offset,
                                payload_len: *payload_len,
                            },
                        );
                    }
                    _ => {
                        index.remove(key);
                    }
                }
            }
            report.recovered_records += scan.records.len() as u64;
            report.quarantined_records += scan
                .quarantined
                .iter()
                .filter(|q| q.damage == Damage::CrcMismatch)
                .count() as u64;
            report.truncated_bytes += truncated;
            report.segments.push(SegmentReport {
                file: name.clone(),
                status: if scan.valid_len <= HEADER_LEN {
                    "empty"
                } else {
                    "recovered"
                },
                records: scan.records.len() as u64,
                quarantined: scan.quarantined,
                truncated_bytes: truncated,
                header_error: None,
            });
            if *id >= active_id {
                active_id = *id;
                active_len = scan.valid_len;
            }
        }
        report.live_entries = index.len() as u64;
        Ok(DiskStore {
            cfg,
            inner: Mutex::new(StoreInner {
                io,
                index,
                active_id,
                active_len,
            }),
            report,
            degraded: AtomicBool::new(false),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
            disk_read_corrupt: AtomicU64::new(0),
        })
    }

    /// The startup recovery report.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Whether the store has failed over to memory-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Counter snapshot for `/v1/stats`.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            degraded: self.is_degraded(),
            appended_records: self.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_read_corrupt: self.disk_read_corrupt.load(Ordering::Relaxed),
            indexed_entries: self.inner.lock().expect("store lock").index.len() as u64,
            recovered_records: self.report.recovered_records,
            quarantined_records: self.report.quarantined_records,
        }
    }

    /// Whether `key` is currently resolvable from disk. The cache's
    /// promotion path re-checks this after re-inserting a disk-read
    /// payload into memory, closing the race with a concurrent
    /// evict-for-cause tombstone.
    pub fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .contains_key(&key)
    }

    /// Keys currently resolvable from disk, sorted (deterministic — used
    /// by the restart-verification tests).
    pub fn keys(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("store lock");
        let mut keys: Vec<u64> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn mark_degraded(&self) {
        self.append_errors.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Appends a put record. On any I/O failure the store degrades
    /// (memory-only) instead of propagating the error to the request.
    pub fn append(&self, key: u64, payload: &[u8]) {
        self.append_record(KIND_PUT, key, payload);
    }

    /// Appends a tombstone so an evicted-for-cause entry stays dead
    /// across restarts.
    pub fn append_tombstone(&self, key: u64) {
        self.append_record(KIND_TOMBSTONE, key, b"");
    }

    fn append_record(&self, kind: u8, key: u64, payload: &[u8]) {
        if self.is_degraded() {
            // Appends are lost while degraded, but a tombstone must
            // still drop the key from the index, or the poisoned record
            // would keep being served from disk for the rest of this
            // process (the durable tombstone is forfeited along with
            // everything else durability promised).
            if kind == KIND_TOMBSTONE {
                self.inner.lock().expect("store lock").index.remove(&key);
            }
            return;
        }
        let record = encode_record(kind, key, payload);
        let mut inner = self.inner.lock().expect("store lock");
        match Self::write_record(&self.cfg, &mut inner, &record) {
            Ok(offset) => {
                self.appended_records.fetch_add(1, Ordering::Relaxed);
                self.appended_bytes
                    .fetch_add(record.len() as u64, Ordering::Relaxed);
                match kind {
                    KIND_PUT => {
                        let segment = inner.active_id;
                        inner.index.insert(
                            key,
                            RecordLoc {
                                segment,
                                offset,
                                payload_len: payload.len() as u64,
                            },
                        );
                    }
                    _ => {
                        inner.index.remove(&key);
                    }
                }
            }
            Err(_) => {
                // Same index rule as the degraded fast path above: a
                // tombstone whose record failed to persist still kills
                // the in-memory entry.
                if kind == KIND_TOMBSTONE {
                    inner.index.remove(&key);
                }
                self.mark_degraded();
            }
        }
    }

    /// Writes one record durably, handling header creation, rotation,
    /// short writes, and `EINTR`. Returns the record's offset.
    fn write_record(cfg: &StoreConfig, inner: &mut StoreInner, record: &[u8]) -> io::Result<u64> {
        // Rotate once the active segment is at capacity (header-only
        // segments never rotate, however large the record).
        if inner.active_len >= cfg.segment_max_bytes && inner.active_len > HEADER_LEN {
            inner.active_id += 1;
            inner.active_len = 0;
        }
        let path = cfg.dir.join(segment_name(inner.active_id));
        if inner.active_len == 0 {
            let header =
                SnapWriter::with_custom_header(STORE_MAGIC, STORE_VERSION, layout_hash()).finish();
            Self::write_all(inner.io.as_mut(), &path, &header)?;
            inner.active_len = header.len() as u64;
        }
        let offset = inner.active_len;
        if let Err(e) = Self::write_all(inner.io.as_mut(), &path, record) {
            // A partial record may now be on disk (a torn tail for the
            // next recovery). Try to cut it back; either way the store
            // is degraded by the caller.
            let _ = inner.io.truncate(&path, offset);
            return Err(e);
        }
        if cfg.fsync == FsyncPolicy::Always {
            inner.io.sync(&path)?;
        }
        inner.active_len += record.len() as u64;
        Ok(offset)
    }

    fn write_all(io: &mut dyn HostIo, path: &Path, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            match io.append(path, buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "append made no progress",
                    ))
                }
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads a key's payload back off disk, byte-verifying its CRC. A
    /// record that fails verification is quarantined (dropped from the
    /// index) and reported as a miss.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().expect("store lock");
        let loc = *inner.index.get(&key)?;
        let path = self.cfg.dir.join(segment_name(loc.segment));
        let total = (RECORD_OVERHEAD + loc.payload_len) as usize;
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let bytes = match inner.io.read_range(&path, loc.offset, total) {
            Ok(b) => b,
            Err(_) => {
                inner.index.remove(&key);
                self.disk_read_corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let body_end = total - 8;
        let stored = read_le_u64(&bytes[body_end..]);
        if crc64(&bytes[..body_end]) != stored {
            inner.index.remove(&key);
            self.disk_read_corrupt.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(bytes[17..body_end].to_vec())
    }

    /// Syncs the active segment (graceful drain calls this before exit).
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.active_len == 0 {
            return;
        }
        let path = self.cfg.dir.join(segment_name(inner.active_id));
        if inner.io.sync(&path).is_err() {
            self.mark_degraded();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostio::{FaultyIo, IoFaultPlan, MemIo, SharedMemIo};

    fn mem_store(dir: &str) -> DiskStore {
        DiskStore::open(StoreConfig::new(dir), Box::new(MemIo::new())).unwrap()
    }

    #[test]
    fn crc64_matches_reference_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn append_get_roundtrip_and_tombstone() {
        let s = mem_store("/s");
        s.append(1, b"alpha");
        s.append(2, b"beta");
        assert_eq!(s.get(1).unwrap(), b"alpha");
        assert_eq!(s.get(2).unwrap(), b"beta");
        assert_eq!(s.keys(), vec![1, 2]);
        s.append_tombstone(1);
        assert!(s.get(1).is_none());
        assert_eq!(s.keys(), vec![2]);
        assert!(!s.is_degraded());
    }

    #[test]
    fn last_record_for_a_key_wins() {
        let s = mem_store("/s");
        s.append(7, b"old");
        s.append(7, b"new");
        assert_eq!(s.get(7).unwrap(), b"new");
    }

    #[test]
    fn scan_segment_flags_each_damage_kind() {
        // Build a valid two-record segment by hand.
        let mut bytes =
            SnapWriter::with_custom_header(STORE_MAGIC, STORE_VERSION, layout_hash()).finish();
        let r1_at = bytes.len();
        bytes.extend_from_slice(&encode_record(KIND_PUT, 1, b"one"));
        let r2_at = bytes.len();
        bytes.extend_from_slice(&encode_record(KIND_PUT, 2, b"two"));

        let clean = scan_segment(&bytes);
        assert_eq!(clean.records.len(), 2);
        assert_eq!(clean.valid_len, bytes.len() as u64);
        assert!(clean.quarantined.is_empty());

        // Torn tail: cut mid-way through record 2.
        let torn = scan_segment(&bytes[..r2_at + 5]);
        assert_eq!(torn.records.len(), 1);
        assert_eq!(torn.valid_len, r2_at as u64);
        assert_eq!(torn.quarantined[0].damage, Damage::TornTail);

        // Flipped payload byte in record 1: quarantined, record 2 kept.
        let mut flipped = bytes.clone();
        flipped[r1_at + 18] ^= 0x40;
        let scan = scan_segment(&flipped);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].1, 2);
        assert_eq!(scan.quarantined[0].damage, Damage::CrcMismatch);
        assert_eq!(scan.valid_len, bytes.len() as u64, "no truncation");

        // Corrupt length field: rest of segment unframable.
        let mut badlen = bytes.clone();
        badlen[r1_at + 9..r1_at + 17].copy_from_slice(&u64::MAX.to_le_bytes());
        let scan = scan_segment(&badlen);
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, r1_at as u64);
        assert_eq!(scan.quarantined[0].damage, Damage::BadLength);

        // Bad header magic: segment skipped whole.
        let mut badmagic = bytes.clone();
        badmagic[0] ^= 0xFF;
        assert!(scan_segment(&badmagic).header_error.is_some());

        // Empty file is valid and empty.
        let empty = scan_segment(&[]);
        assert!(empty.records.is_empty() && empty.header_error.is_none());
    }

    #[test]
    fn reopen_recovers_entries_byte_identically() {
        let fs = SharedMemIo::new();
        {
            let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
            s.append(10, b"payload-ten");
            s.append(11, b"payload-eleven");
            s.append_tombstone(11);
        } // dropped without any shutdown protocol — a "crash"
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
        let report = s.recovery_report();
        assert_eq!(report.live_entries, 1);
        assert_eq!(report.recovered_records, 3, "two puts + one tombstone");
        assert_eq!(report.quarantined_records, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(s.get(10).unwrap(), b"payload-ten");
        assert!(s.get(11).is_none(), "tombstone survives restart");
    }

    #[test]
    fn reopen_truncates_torn_tail_and_keeps_earlier_records() {
        let fs = SharedMemIo::new();
        {
            let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
            s.append(1, b"kept");
            s.append(2, b"torn-away");
        }
        // Tear the tail: chop 4 bytes off the last record.
        let path = Path::new("/s").join(segment_name(1));
        fs.with(|m| {
            let f = m.file_mut(&path).unwrap();
            let n = f.len();
            f.truncate(n - 4);
        });
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
        assert_eq!(s.get(1).unwrap(), b"kept");
        assert!(s.get(2).is_none());
        let report = s.recovery_report();
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.segments[0].quarantined[0].damage, Damage::TornTail);
        // The torn bytes were physically removed, so appends resume on a
        // valid boundary and a third open sees all three records clean.
        s.append(3, b"after-repair");
        drop(s);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
        assert_eq!(s.get(1).unwrap(), b"kept");
        assert_eq!(s.get(3).unwrap(), b"after-repair");
        assert_eq!(s.recovery_report().truncated_bytes, 0);
    }

    #[test]
    fn reopen_skips_bad_header_segment_without_crashing() {
        let fs = SharedMemIo::new();
        {
            let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
            s.append(1, b"one");
        }
        let path = Path::new("/s").join(segment_name(1));
        fs.with(|m| m.file_mut(&path).unwrap()[0] ^= 0xFF);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs.clone())).unwrap();
        assert_eq!(s.recovery_report().skipped_segments, 1);
        assert!(s.get(1).is_none());
        // New appends must not land in the unreadable segment.
        s.append(2, b"two");
        drop(s);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(fs)).unwrap();
        assert_eq!(s.get(2).unwrap(), b"two");
    }

    #[test]
    fn sealing_the_newest_segment_resets_active_len() {
        // Two damaged segments at once: the second-newest loses its tail
        // (recovery truncates it below the rotation threshold) and the
        // newest loses its header (recovery seals it). The new active
        // segment must start empty — a stale active_len would make the
        // first post-recovery append skip the header write and index the
        // record at a shifted offset, silently losing every new write at
        // the next restart.
        let fs = SharedMemIo::new();
        let mut cfg = StoreConfig::new("/s");
        cfg.segment_max_bytes = 128;
        {
            let s = DiskStore::open(cfg.clone(), Box::new(fs.clone())).unwrap();
            for k in 0..8 {
                s.append(k, &[k as u8; 40]); // two records per segment
            }
        }
        fs.with(|m| {
            let f = m.file_mut(&Path::new("/s").join(segment_name(3))).unwrap();
            let n = f.len();
            f.truncate(n - 4);
            m.file_mut(&Path::new("/s").join(segment_name(4))).unwrap()[0] ^= 0xFF;
        });
        let s = DiskStore::open(cfg.clone(), Box::new(fs.clone())).unwrap();
        assert_eq!(s.recovery_report().skipped_segments, 1);
        s.append(100, b"post-recovery");
        assert_eq!(s.get(100).unwrap(), b"post-recovery");
        drop(s);
        let s = DiskStore::open(cfg, Box::new(fs)).unwrap();
        assert_eq!(
            s.get(100).unwrap(),
            b"post-recovery",
            "post-recovery writes must survive the next restart"
        );
        assert_eq!(s.get(0).unwrap(), vec![0u8; 40], "undamaged segment kept");
        assert_eq!(
            s.get(4).unwrap(),
            vec![4u8; 40],
            "record before the tear kept"
        );
        assert!(s.get(6).is_none(), "sealed segment's records are gone");
    }

    #[test]
    fn read_failed_segment_is_sealed_so_stale_records_cannot_resurrect() {
        let fs = SharedMemIo::new();
        let mut cfg = StoreConfig::new("/s");
        cfg.segment_max_bytes = 128;
        {
            let s = DiskStore::open(cfg.clone(), Box::new(fs.clone())).unwrap();
            s.append(7, &[1u8; 40]);
            s.append(8, &[2u8; 40]); // fills segment 1
            s.append(7, &[3u8; 40]); // rotates; key 7's newer value is in segment 2
        }
        // Segment 2's read fails transiently at this open: it must be
        // sealed, not left as the append target — otherwise the write
        // below would land behind its un-replayed records and the stale
        // value would win the replay at the next restart.
        let plan = IoFaultPlan {
            fail_read_file_on: Some(2),
            ..IoFaultPlan::default()
        };
        let s = DiskStore::open(cfg.clone(), Box::new(FaultyIo::new(fs.clone(), plan))).unwrap();
        assert_eq!(s.recovery_report().skipped_segments, 1);
        s.append(7, b"newest");
        drop(s);
        let s = DiskStore::open(cfg, Box::new(fs)).unwrap();
        assert_eq!(
            s.get(7).unwrap(),
            b"newest",
            "replay order is segment-id order; the post-recovery write must win"
        );
        assert_eq!(s.get(8).unwrap(), vec![2u8; 40]);
    }

    #[test]
    fn tombstone_while_degraded_still_kills_the_index_entry() {
        let plan = IoFaultPlan {
            disk_capacity: Some(256),
            ..IoFaultPlan::default()
        };
        let s = DiskStore::open(
            StoreConfig::new("/s"),
            Box::new(FaultyIo::new(MemIo::new(), plan)),
        )
        .unwrap();
        s.append(1, &[0xAB; 64]);
        assert_eq!(s.get(1).unwrap(), vec![0xAB; 64]);
        s.append(2, &[0xCD; 200]); // blows the budget
        assert!(s.is_degraded());
        s.append_tombstone(1);
        assert!(
            s.get(1).is_none(),
            "a degraded store must not keep serving a tombstoned entry"
        );
    }

    #[test]
    fn full_disk_degrades_instead_of_erroring() {
        let plan = IoFaultPlan {
            disk_capacity: Some(64),
            ..IoFaultPlan::default()
        };
        let io = FaultyIo::new(MemIo::new(), plan);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(io)).unwrap();
        s.append(1, &[0xAB; 16]);
        s.append(2, &[0xCD; 64]); // blows the 64-byte budget
        assert!(s.is_degraded());
        assert!(s.stats().append_errors >= 1);
        // Degraded stores drop appends silently; no panic, no error.
        s.append(3, b"after");
        assert!(s.get(3).is_none());
    }

    #[test]
    fn failed_fsync_degrades() {
        let plan = IoFaultPlan {
            fail_sync_after: Some(1),
            ..IoFaultPlan::default()
        };
        let io = FaultyIo::new(MemIo::new(), plan);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(io)).unwrap();
        s.append(1, b"first"); // sync #1 succeeds
        assert!(!s.is_degraded());
        s.append(2, b"second"); // sync #2 fails
        assert!(s.is_degraded());
    }

    #[test]
    fn short_writes_and_eintr_are_absorbed() {
        let plan = IoFaultPlan {
            seed: 11,
            short_write_every: 2,
            eintr_every: 3,
            ..IoFaultPlan::default()
        };
        let io = FaultyIo::new(MemIo::new(), plan);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(io)).unwrap();
        for k in 0..20 {
            s.append(k, format!("payload-{k}").as_bytes());
        }
        assert!(!s.is_degraded(), "retry loop must absorb benign faults");
        for k in 0..20 {
            assert_eq!(s.get(k).unwrap(), format!("payload-{k}").as_bytes());
        }
    }

    #[test]
    fn segment_rotation_keeps_all_entries_reachable() {
        let mut cfg = StoreConfig::new("/s");
        cfg.segment_max_bytes = 128; // force frequent rotation
        let s = DiskStore::open(cfg, Box::new(MemIo::new())).unwrap();
        for k in 0..32 {
            s.append(k, &[k as u8; 40]);
        }
        for k in 0..32 {
            assert_eq!(s.get(k).unwrap(), vec![k as u8; 40]);
        }
        assert_eq!(s.stats().indexed_entries, 32);
    }

    #[test]
    fn read_bit_flip_quarantines_the_entry() {
        let plan = IoFaultPlan {
            seed: 5,
            flip_read_bit_every: 1,
            ..IoFaultPlan::default()
        };
        let io = FaultyIo::new(MemIo::new(), plan);
        let s = DiskStore::open(StoreConfig::new("/s"), Box::new(io)).unwrap();
        s.append(9, b"fragile");
        assert!(s.get(9).is_none(), "flipped read must fail CRC");
        assert_eq!(s.stats().disk_read_corrupt, 1);
        assert_eq!(s.stats().indexed_entries, 0, "entry quarantined");
    }
}
