//! The unified NoC payload of a Duet system: coherence traffic plus the
//! on-chip MMIO messages that let processors reach the Duet Adapter
//! ("The NoC ... supports additional message types besides the coherence
//! messages, enabling on-chip MMIOs required by Dolly", Sec. IV).

use duet_mem::msg::CoherenceMsg;
use duet_mem::types::{MemReq, MemResp};
use duet_noc::{NodeId, VNet};

/// Interrupt causes raised by a Duet Adapter toward a processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrqCause {
    /// A Memory Hub TLB missed; the kernel must refill it via MMIO
    /// (Sec. II-D). Carries the faulting virtual address and whether the
    /// access was a write.
    PageFault {
        /// Faulting virtual address.
        vaddr: u64,
        /// Store/AMO access.
        is_write: bool,
        /// Index of the faulting Memory Hub within its adapter.
        hub: usize,
    },
    /// The exception handler tripped (timeout or parity); the hubs were
    /// deactivated and an error code latched (Sec. II-B).
    Exception {
        /// Latched error code.
        code: u64,
    },
}

/// Everything that travels on a Duet system's mesh.
#[derive(Clone, Debug)]
pub enum DuetMsg {
    /// Directory-MESI coherence traffic.
    Coherence(CoherenceMsg),
    /// An MMIO request from a processor tile to a device (Duet Adapter).
    MmioReq {
        /// Request (address selects the register; see
        /// [`crate::control_hub::mmio_map`]).
        req: MemReq,
        /// Node to send the response to.
        reply_to: NodeId,
    },
    /// The device's response to an MMIO request.
    MmioResp {
        /// Response (id echoes the request).
        resp: MemResp,
    },
    /// An interrupt from an adapter to a processor tile.
    Interrupt {
        /// Cause.
        cause: IrqCause,
        /// Node of the raising adapter.
        from: NodeId,
    },
}

impl DuetMsg {
    /// Virtual network assignment. MMIO requests ride the request network,
    /// responses and interrupts the response network, so they can never
    /// deadlock against coherence forward progress.
    pub fn vnet(&self) -> VNet {
        match self {
            DuetMsg::Coherence(c) => c.vnet(),
            DuetMsg::MmioReq { .. } => VNet::Req,
            DuetMsg::MmioResp { .. } | DuetMsg::Interrupt { .. } => VNet::Resp,
        }
    }

    /// Size in flits (header + payload).
    pub fn flits(&self) -> u32 {
        match self {
            DuetMsg::Coherence(c) => c.flits(),
            DuetMsg::MmioReq { .. } => 2,
            DuetMsg::MmioResp { .. } => 2,
            DuetMsg::Interrupt { .. } => 1,
        }
    }
}

mod pack_impls {
    use duet_mem::msg::CoherenceMsg;
    use duet_mem::types::{MemReq, MemResp};
    use duet_sim::{Pack, SnapError, SnapReader, SnapWriter};

    use super::{DuetMsg, IrqCause};

    impl Pack for IrqCause {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                IrqCause::PageFault {
                    vaddr,
                    is_write,
                    hub,
                } => {
                    w.u8(0);
                    w.u64(*vaddr);
                    is_write.pack(w);
                    w.len64(*hub);
                }
                IrqCause::Exception { code } => {
                    w.u8(1);
                    w.u64(*code);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => IrqCause::PageFault {
                    vaddr: r.u64()?,
                    is_write: bool::unpack(r)?,
                    hub: r.len64()?,
                },
                1 => IrqCause::Exception { code: r.u64()? },
                _ => return Err(SnapError::Corrupt("invalid IrqCause discriminant")),
            })
        }
    }

    impl Pack for DuetMsg {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                DuetMsg::Coherence(c) => {
                    w.u8(0);
                    c.pack(w);
                }
                DuetMsg::MmioReq { req, reply_to } => {
                    w.u8(1);
                    req.pack(w);
                    w.len64(*reply_to);
                }
                DuetMsg::MmioResp { resp } => {
                    w.u8(2);
                    resp.pack(w);
                }
                DuetMsg::Interrupt { cause, from } => {
                    w.u8(3);
                    cause.pack(w);
                    w.len64(*from);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => DuetMsg::Coherence(CoherenceMsg::unpack(r)?),
                1 => DuetMsg::MmioReq {
                    req: MemReq::unpack(r)?,
                    reply_to: r.len64()?,
                },
                2 => DuetMsg::MmioResp {
                    resp: MemResp::unpack(r)?,
                },
                3 => DuetMsg::Interrupt {
                    cause: IrqCause::unpack(r)?,
                    from: r.len64()?,
                },
                _ => return Err(SnapError::Corrupt("invalid DuetMsg discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_mem::types::Width;

    #[test]
    fn vnet_and_flit_assignment() {
        let req = DuetMsg::MmioReq {
            req: MemReq::load(1, 0x4000_0000, Width::B8),
            reply_to: 0,
        };
        assert_eq!(req.vnet(), VNet::Req);
        assert_eq!(req.flits(), 2);
        let irq = DuetMsg::Interrupt {
            cause: IrqCause::Exception { code: 7 },
            from: 3,
        };
        assert_eq!(irq.vnet(), VNet::Resp);
        let coh = DuetMsg::Coherence(CoherenceMsg::GetS {
            line: duet_mem::types::LineAddr(4),
        });
        assert_eq!(coh.vnet(), VNet::Req);
        assert_eq!(coh.flits(), 1);
    }
}
