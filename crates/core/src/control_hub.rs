//! The **Control Hub** (Sec. II-E/II-F): FPGA Manager + Soft Register
//! Interface with Shadow Registers.
//!
//! * The **FPGA Manager** programs the eFPGA (bitstream streaming with an
//!   integrity check), generates the eFPGA clock (software-programmable
//!   divider/PLL model), holds the timeout limit, and latches error codes.
//! * The **Soft Register Interface** exposes 32 soft registers over MMIO.
//!   Each register is configured in one of five modes:
//!   [`RegMode::Normal`] (every access round-trips into the fabric),
//!   [`RegMode::ShadowPlain`], [`RegMode::FpgaBound`] (write FIFO),
//!   [`RegMode::CpuBound`] (blocking read FIFO), and [`RegMode::Token`]
//!   (dataless, non-blocking `try_join` FIFO).
//! * **I/O ordering** (Fig. 6c): accesses are processed head-of-line, so a
//!   shadowed access never overtakes an earlier normal access.
//! * When deactivated, the interface "returns bogus data to all processor
//!   accesses so that the system is not halted" — reads complete with
//!   [`BOGUS`].

use std::collections::{BTreeMap, VecDeque};

use duet_fpga::ports::{RegDown, RegUp};
use duet_mem::types::{MemOp, MemReq, MemResp};
use duet_noc::NodeId;
use duet_sim::{merge_min, Clock, ClockDomain, Component, Link, LinkReport, Time};
use duet_trace::{EventKind, Tracer};

use crate::msg::{DuetMsg, IrqCause};

/// Number of soft registers per adapter.
pub const REG_COUNT: usize = 32;

/// Value returned for accesses the hub cannot serve (deactivated interface
/// or timeout).
pub const BOGUS: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// Control-hub error codes.
pub mod error_codes {
    /// A soft-register access timed out (the accelerator never answered).
    pub const TIMEOUT: u64 = 0x10;
    /// Bitstream integrity check failed.
    pub const BITSTREAM_CORRUPT: u64 = 0x11;
    /// The adapter watchdog fenced a non-progressing accelerator; the
    /// interface is deactivated until software clears the error.
    pub const ACCEL_FENCED: u64 = 0x12;
}

/// MMIO offsets within an adapter's device region.
pub mod mmio_map {
    /// Soft registers: `SOFT_REG_BASE + 8 * r`.
    pub const SOFT_REG_BASE: u64 = 0x0000;
    /// Write `(reg << 8) | mode` to configure a register's mode.
    pub const REG_MODE: u64 = 0x0200;
    /// eFPGA clock frequency in MHz (write to reprogram, read current).
    pub const FPGA_CLOCK_MHZ: u64 = 0x0208;
    /// Write the expected checksum to begin programming.
    pub const BITSTREAM_BEGIN: u64 = 0x0210;
    /// Write the word count (arms the programming engine).
    pub const BITSTREAM_LEN: u64 = 0x0218;
    /// Stream bitstream words here.
    pub const BITSTREAM_DATA: u64 = 0x0220;
    /// Read: 0 idle, 1 programming, 2 done, 3 error.
    pub const BITSTREAM_STATUS: u64 = 0x0228;
    /// Control-hub error code (read).
    pub const ERROR_CODE: u64 = 0x0230;
    /// Write to clear errors and reactivate the soft-register interface.
    pub const CLEAR_ERROR: u64 = 0x0238;
    /// Soft-register timeout limit, in fast-clock cycles.
    pub const TIMEOUT_LIMIT: u64 = 0x0240;
    /// Write to pulse the accelerator reset.
    pub const ACCEL_RESET: u64 = 0x0248;
    /// Write to set the interface active state (1 active, 0 deactivated).
    pub const INTERFACE_ACTIVE: u64 = 0x0250;
    /// Per-hub regions: `HUB_BASE + hub * HUB_STRIDE + offset`.
    pub const HUB_BASE: u64 = 0x0400;
    /// Stride between hub regions.
    pub const HUB_STRIDE: u64 = 0x100;
    /// Hub: VPN latch for a TLB refill.
    pub const HUB_TLB_VPN: u64 = 0x00;
    /// Hub: write `ppn | perms` to insert the latched mapping
    /// (bit 63 = writable, bit 62 = readable).
    pub const HUB_TLB_PPN: u64 = 0x08;
    /// Hub: feature switches (bit0 active, bit1 fwd_inv, bit2 tlb,
    /// bit3 atomics).
    pub const HUB_SWITCHES: u64 = 0x10;
    /// Hub: error code (read).
    pub const HUB_ERROR: u64 = 0x18;
    /// Hub: kill the accelerator's faulting access.
    pub const HUB_KILL: u64 = 0x20;
    /// Hub: clear error + reactivate.
    pub const HUB_CLEAR: u64 = 0x28;
    /// Total size of the device region.
    pub const REGION_SIZE: u64 = 0x1000;
}

/// Operating mode of one soft register (Sec. II-F).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RegMode {
    /// Non-shadowed: every access round-trips into the eFPGA (strict,
    /// non-bufferable semantics — e.g. the CPU/eFPGA barrier idiom).
    #[default]
    Normal = 0,
    /// Plain shadow: writes ack from the fast domain and forward; reads
    /// return the fast-domain copy (kept in sync by fabric pushes).
    ShadowPlain = 1,
    /// FPGA-bound FIFO: writes enqueue toward the fabric, acked as soon as
    /// FIFO space admits them.
    FpgaBound = 2,
    /// CPU-bound FIFO: reads block until the fabric pushes (or time out).
    CpuBound = 3,
    /// CPU-bound token FIFO: dataless, non-blocking; a read consumes a
    /// token (returns 1) or returns 0 for "empty".
    Token = 4,
}

impl RegMode {
    /// Decodes a mode from its MMIO encoding.
    pub fn from_u64(v: u64) -> Option<RegMode> {
        Some(match v {
            0 => RegMode::Normal,
            1 => RegMode::ShadowPlain,
            2 => RegMode::FpgaBound,
            3 => RegMode::CpuBound,
            4 => RegMode::Token,
            _ => return None,
        })
    }
}

/// Bitstream programming engine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgStatus {
    /// No programming in progress.
    Idle = 0,
    /// Words are being streamed.
    Programming = 1,
    /// Completed with a passing integrity check.
    Done = 2,
    /// Integrity check failed.
    Error = 3,
}

/// Control-hub configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControlHubConfig {
    /// Fast (system) clock.
    pub clock: Clock,
    /// Async-FIFO synchronizer stages.
    pub sync_stages: u32,
    /// Depth of the hub→fabric (down) FIFO — the FPGA-bound FIFO capacity.
    pub down_depth: usize,
    /// Depth of the fabric→hub (up) FIFO.
    pub up_depth: usize,
    /// Default soft-register timeout, fast-clock cycles.
    pub timeout_cycles: u64,
    /// MMIO response latency, fast-clock cycles.
    pub resp_cycles: u32,
}

impl ControlHubConfig {
    /// Dolly-like defaults.
    pub fn dolly(clock: Clock) -> Self {
        ControlHubConfig {
            clock,
            sync_stages: 2,
            down_depth: 8,
            up_depth: 8,
            // Generous default: long-running kernels legitimately hold a
            // blocking CPU-bound read for milliseconds; benchmarks that
            // exercise the timeout set their own limit via MMIO.
            timeout_cycles: 50_000_000,
            resp_cycles: 2,
        }
    }
}

/// Event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControlHubStats {
    /// MMIO accesses processed.
    pub mmio_ops: u64,
    /// Accesses served from the fast domain (shadow hits).
    pub shadow_fast: u64,
    /// Accesses that crossed into the fabric (normal mode).
    pub normal_crossings: u64,
    /// Timeouts.
    pub timeouts: u64,
}

#[derive(Clone, Copy, Debug)]
enum WaitSt {
    /// Waiting for a fabric reply to a normal-register transaction.
    NormalTxn {
        txn: u64,
        id: u64,
        reply_to: NodeId,
        started: Time,
    },
    /// Blocking CPU-bound FIFO read.
    CpuBound {
        reg: u8,
        id: u64,
        reply_to: NodeId,
        started: Time,
    },
    /// Waiting for down-FIFO space to accept a shadowed write.
    DownSpace {
        ev: RegDown,
        id: u64,
        reply_to: NodeId,
    },
    /// Waiting for down-FIFO space, then for the fabric's reply (normal
    /// access issued while the FIFO was full).
    DownSpaceThenTxn {
        ev: RegDown,
        txn: u64,
        id: u64,
        reply_to: NodeId,
    },
}

/// The Control Hub. See module docs.
#[derive(Clone)]
pub struct ControlHub {
    cfg: ControlHubConfig,
    node: NodeId,
    modes: [RegMode; REG_COUNT],
    plain: [u64; REG_COUNT],
    cpu_fifo: Vec<VecDeque<u64>>,
    tokens: [u64; REG_COUNT],
    /// Hub→fabric CDC link (the FPGA-bound soft-register FIFO).
    down: Link<RegDown>,
    /// Fabric→hub CDC link.
    up: Link<RegUp>,
    mmio_in: VecDeque<(MemReq, NodeId)>,
    waiting: Option<WaitSt>,
    txn_results: BTreeMap<u64, u64>,
    txn_next: u64,
    /// Outgoing NoC link `(dst, msg)` with per-response ready times.
    out: Link<(NodeId, DuetMsg)>,
    active: bool,
    error_code: u64,
    timeout_cycles: u64,
    // FPGA manager state.
    fpga_clock_mhz: f64,
    pending_clock_mhz: Option<f64>,
    prog_status: ProgStatus,
    prog_expected_checksum: u64,
    prog_remaining: u64,
    prog_acc: u64,
    reset_pulse: bool,
    tlb_vpn_latch: [u64; 8],
    stats: ControlHubStats,
    irqs: VecDeque<IrqCause>,
    /// Trace handle (events: soft-register CDC crossings, both directions).
    tracer: Tracer,
}

impl ControlHub {
    /// Creates a control hub on NoC node `node`, with the eFPGA initially
    /// clocked at `fpga_clock`.
    pub fn new(cfg: ControlHubConfig, node: NodeId, fpga_clock: Clock) -> Self {
        ControlHub {
            cfg,
            node,
            modes: [RegMode::Normal; REG_COUNT],
            plain: [0; REG_COUNT],
            cpu_fifo: (0..REG_COUNT).map(|_| VecDeque::new()).collect(),
            tokens: [0; REG_COUNT],
            down: Link::cdc(cfg.down_depth, cfg.sync_stages, cfg.clock, fpga_clock),
            up: Link::cdc(cfg.up_depth, cfg.sync_stages, fpga_clock, cfg.clock),
            mmio_in: VecDeque::new(),
            waiting: None,
            txn_results: BTreeMap::new(),
            txn_next: 1,
            out: Link::pipe(),
            active: true,
            error_code: 0,
            timeout_cycles: cfg.timeout_cycles,
            fpga_clock_mhz: fpga_clock.freq_mhz(),
            pending_clock_mhz: None,
            prog_status: ProgStatus::Idle,
            prog_expected_checksum: 0,
            prog_remaining: 0,
            prog_acc: 0,
            reset_pulse: false,
            tlb_vpn_latch: [0; 8],
            stats: ControlHubStats::default(),
            irqs: VecDeque::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the trace handle.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Pushes a downstream register event into the fabric-bound CDC FIFO,
    /// tracing the crossing. Space must already be checked.
    fn push_down(&mut self, now: Time, ev: RegDown) {
        let (a, b) = match ev {
            RegDown::ShadowWrite { reg, value } => (u64::from(reg), value),
            RegDown::ReadReq { txn, reg } => (u64::from(reg), txn),
            RegDown::WriteReq { reg, value, .. } => (u64::from(reg), value),
        };
        self.tracer
            .emit(now.as_ps(), EventKind::AdapterRegDown, a, b);
        self.down.push(now, ev).expect("space checked");
    }

    /// The hub's NoC node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Event counters.
    pub fn stats(&self) -> ControlHubStats {
        self.stats
    }

    /// Configures a register's mode (also available via MMIO).
    pub fn set_reg_mode(&mut self, reg: usize, mode: RegMode) {
        self.modes[reg] = mode;
    }

    /// Current mode of a register.
    pub fn reg_mode(&self, reg: usize) -> RegMode {
        self.modes[reg]
    }

    /// Fabric-side CDC links for building [`duet_fpga::ports::FabricPorts`].
    pub fn fabric_links(&mut self) -> (&mut Link<RegDown>, &mut Link<RegUp>) {
        (&mut self.down, &mut self.up)
    }

    /// Reclocks the fabric-side FIFOs.
    pub fn set_fpga_clock(&mut self, clock: Clock) {
        self.fpga_clock_mhz = clock.freq_mhz();
        self.down.set_consumer_clock(clock);
        self.up.set_producer_clock(clock);
    }

    /// A clock change requested by software, to be applied by the adapter.
    pub fn take_clock_change(&mut self) -> Option<f64> {
        self.pending_clock_mhz.take()
    }

    /// A reset pulse requested by software.
    pub fn take_reset(&mut self) -> bool {
        std::mem::take(&mut self.reset_pulse)
    }

    /// Whether the programming engine is mid-bitstream (hubs must be
    /// deactivated).
    pub fn programming(&self) -> bool {
        self.prog_status == ProgStatus::Programming
    }

    /// Programming engine status.
    pub fn prog_status(&self) -> ProgStatus {
        self.prog_status
    }

    /// Latched error code.
    pub fn error_code(&self) -> u64 {
        self.error_code
    }

    /// Whether an exception is latched.
    pub fn exception_pending(&self) -> bool {
        self.error_code != 0
    }

    /// Pops a pending interrupt.
    pub fn pop_irq(&mut self) -> Option<IrqCause> {
        self.irqs.pop_front()
    }

    /// Queues an incoming MMIO access (`req.addr` is the offset within the
    /// adapter region).
    pub fn mmio_request(&mut self, req: MemReq, reply_to: NodeId) {
        self.mmio_in.push_back((req, reply_to));
    }

    /// Directly queues a response (used by the adapter for hub-region
    /// accesses it decodes itself).
    pub fn respond_now(&mut self, now: Time, id: u64, value: u64, reply_to: NodeId) {
        let ready = now + self.cfg.clock.period().mul(u64::from(self.cfg.resp_cycles));
        self.out.push_at(
            ready,
            (
                reply_to,
                DuetMsg::MmioResp {
                    resp: MemResp {
                        id,
                        rdata: value,
                        line: None,
                        cacheable: false,
                        breakdown: Default::default(),
                    },
                },
            ),
        );
    }

    /// Pops a ready outgoing message.
    pub fn pop_outgoing(&mut self, now: Time) -> Option<(NodeId, DuetMsg)> {
        self.out.pop(now)
    }

    /// Whether fabric-bound input awaits the slow domain: occupancy in the
    /// FPGA-bound down FIFO (its consumer pops on eFPGA edges, so it is
    /// *not* part of [`next_event_time`](ControlHub::next_event_time)'s
    /// fast-side contract) or an undelivered reset pulse.
    pub fn fabric_input_pending(&self) -> bool {
        !self.down.is_empty() || self.reset_pulse
    }

    /// Whether all queues are drained.
    pub fn is_idle(&self) -> bool {
        self.mmio_in.is_empty()
            && self.waiting.is_none()
            && self.out.is_empty()
            && self.down.is_empty()
            && self.up.is_empty()
    }

    /// The earliest time ticking or draining this hub can next do observable
    /// work, or `None` when it can only be woken externally (MMIO arrival or
    /// a fabric push).
    ///
    /// Mirrors [`tick`](ControlHub::tick): queued MMIO accesses, pending
    /// interrupts, and software-requested clock/reset changes act
    /// immediately; fabric events act when they clear the up-synchronizer;
    /// responses leave when their ready time passes; a head-of-line blocked
    /// access either completes now (its result/data has arrived) or times
    /// out just after `timeout_cycles` fabric-free cycles.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if !self.mmio_in.is_empty()
            || !self.irqs.is_empty()
            || self.pending_clock_mhz.is_some()
            || self.reset_pulse
        {
            return Some(now);
        }
        let mut earliest = merge_min(self.up.front_ready_at(), self.out.front_ready_at());
        if let Some(w) = self.waiting {
            let deadline = |started: Time| {
                started + self.cfg.clock.period().mul(self.timeout_cycles) + Time::from_ps(1)
            };
            let cand = match w {
                WaitSt::NormalTxn { txn, started, .. } => {
                    if self.txn_results.contains_key(&txn) {
                        now
                    } else {
                        deadline(started)
                    }
                }
                WaitSt::CpuBound { reg, started, .. } => {
                    if !self.cpu_fifo[reg as usize].is_empty() {
                        now
                    } else {
                        deadline(started)
                    }
                }
                // Waiting on down-FIFO space: space visibility depends on
                // slow-domain pops; treat as hot (rare, short-lived states).
                WaitSt::DownSpace { .. } | WaitSt::DownSpaceThenTxn { .. } => now,
            };
            earliest = merge_min(earliest, Some(cand));
        }
        earliest
    }

    fn raise(&mut self, code: u64) {
        if self.error_code == 0 {
            self.error_code = code;
            self.irqs.push_back(IrqCause::Exception { code });
        }
    }

    /// Fences the soft-register interface after the adapter watchdog
    /// declared the accelerator hung: deactivates the interface (subsequent
    /// accesses answer [`BOGUS`] immediately), latches
    /// [`error_codes::ACCEL_FENCED`], and fails the head-of-line blocked
    /// access — if any — with [`BOGUS`] so the issuing core unblocks. The
    /// paper's adapter guarantee: a wedged kernel must never wedge the host.
    pub fn fence(&mut self, now: Time) {
        self.active = false;
        self.raise(error_codes::ACCEL_FENCED);
        // Abandon fabric-bound register events: the design is fenced off
        // and will never consume them, and they must not hold up
        // quiescence.
        self.down.clear();
        if let Some(w) = self.waiting.take() {
            let (id, reply_to) = match w {
                WaitSt::NormalTxn { id, reply_to, .. }
                | WaitSt::CpuBound { id, reply_to, .. }
                | WaitSt::DownSpace { id, reply_to, .. }
                | WaitSt::DownSpaceThenTxn { id, reply_to, .. } => (id, reply_to),
            };
            self.stats.timeouts += 1;
            self.respond_now(now, id, BOGUS, reply_to);
        }
    }

    /// Monotone count of fabric-side soft-register activity: events the
    /// fabric consumed from the down FIFO, events it produced into the up
    /// FIFO, *and* events the CPU side pushed toward the fabric. The
    /// adapter watchdog samples this: a signature that stops advancing
    /// while work is pending means the accelerator hung. Counting arrivals
    /// (down pushes) re-arms the watchdog at the instant new work shows up,
    /// which is a deterministic, edge-skip-invariant event — so an
    /// accelerator that hangs before consuming its very first input is
    /// still fenced exactly `fence_after` later in both scheduling modes.
    pub fn progress_signature(&self) -> u64 {
        self.down.stats().pops + self.down.stats().pushes + self.up.stats().pushes
    }

    /// Advances the hub by one fast-clock edge.
    pub fn tick(&mut self, now: Time) {
        // 1. Absorb fabric pushes.
        while let Some(ev) = self.up.pop(now) {
            let (a, b) = match ev {
                RegUp::Push { reg, value } => (u64::from(reg), value),
                RegUp::ReadResp { txn, value } => (txn, value),
                RegUp::WriteAck { txn } => (txn, 0),
            };
            self.tracer.emit(now.as_ps(), EventKind::AdapterRegUp, a, b);
            match ev {
                RegUp::Push { reg, value } => {
                    let r = reg as usize % REG_COUNT;
                    match self.modes[r] {
                        RegMode::CpuBound => self.cpu_fifo[r].push_back(value),
                        RegMode::Token => self.tokens[r] += 1,
                        RegMode::ShadowPlain => self.plain[r] = value,
                        // Pushes to non-shadowed registers are dropped (a
                        // fabric design bug, harmless to the system).
                        RegMode::Normal | RegMode::FpgaBound => {}
                    }
                }
                RegUp::ReadResp { txn, value } => {
                    self.txn_results.insert(txn, value);
                }
                RegUp::WriteAck { txn } => {
                    self.txn_results.insert(txn, 0);
                }
            }
        }

        // 2. Progress the head-of-line blocked access, if any.
        if let Some(w) = self.waiting {
            match w {
                WaitSt::NormalTxn {
                    txn,
                    id,
                    reply_to,
                    started,
                } => {
                    if let Some(v) = self.txn_results.remove(&txn) {
                        self.waiting = None;
                        self.respond_now(now, id, v, reply_to);
                    } else if self.timed_out(now, started) {
                        self.stats.timeouts += 1;
                        self.waiting = None;
                        self.raise(error_codes::TIMEOUT);
                        self.respond_now(now, id, BOGUS, reply_to);
                    }
                }
                WaitSt::CpuBound {
                    reg,
                    id,
                    reply_to,
                    started,
                } => {
                    let r = reg as usize;
                    if let Some(v) = self.cpu_fifo[r].pop_front() {
                        self.waiting = None;
                        self.respond_now(now, id, v, reply_to);
                    } else if self.timed_out(now, started) {
                        self.stats.timeouts += 1;
                        self.waiting = None;
                        self.raise(error_codes::TIMEOUT);
                        self.respond_now(now, id, BOGUS, reply_to);
                    }
                }
                WaitSt::DownSpace { ev, id, reply_to } => {
                    if self.down.can_push(now) {
                        self.push_down(now, ev);
                        self.waiting = None;
                        self.respond_now(now, id, 0, reply_to);
                    }
                }
                WaitSt::DownSpaceThenTxn {
                    ev,
                    txn,
                    id,
                    reply_to,
                } => {
                    if self.down.can_push(now) {
                        self.push_down(now, ev);
                        self.waiting = Some(WaitSt::NormalTxn {
                            txn,
                            id,
                            reply_to,
                            started: now,
                        });
                    }
                }
            }
            if self.waiting.is_some() {
                return; // strict I/O ordering: head-of-line blocks
            }
        }

        // 3. Dispatch the next MMIO access.
        let Some((req, reply_to)) = self.mmio_in.pop_front() else {
            return;
        };
        self.stats.mmio_ops += 1;
        let offset = req.addr;
        let is_read = matches!(req.op, MemOp::Load(_) | MemOp::LoadLine | MemOp::IFetch);
        if offset < mmio_map::REG_MODE {
            self.soft_reg_access(now, req, reply_to, is_read);
        } else {
            self.manager_access(now, req, reply_to, is_read, offset);
        }
    }

    fn timed_out(&self, now: Time, started: Time) -> bool {
        now.saturating_sub(started) > self.cfg.clock.period().mul(self.timeout_cycles)
    }

    fn soft_reg_access(&mut self, now: Time, req: MemReq, reply_to: NodeId, is_read: bool) {
        let reg = ((req.addr - mmio_map::SOFT_REG_BASE) / 8) as usize % REG_COUNT;
        if !self.active {
            // Deactivated: bogus data, never stall the system.
            self.respond_now(now, req.id, BOGUS, reply_to);
            return;
        }
        match (self.modes[reg], is_read) {
            (RegMode::Normal, true) => {
                self.stats.normal_crossings += 1;
                let txn = self.alloc_txn();
                let ev = RegDown::ReadReq {
                    txn,
                    reg: reg as u8,
                };
                self.push_down_or_wait(now, ev, req.id, reply_to, Some(txn));
            }
            (RegMode::Normal, false) => {
                self.stats.normal_crossings += 1;
                let txn = self.alloc_txn();
                let ev = RegDown::WriteReq {
                    txn,
                    reg: reg as u8,
                    value: req.wdata,
                };
                self.push_down_or_wait(now, ev, req.id, reply_to, Some(txn));
            }
            (RegMode::ShadowPlain, true) => {
                self.stats.shadow_fast += 1;
                self.respond_now(now, req.id, self.plain[reg], reply_to);
            }
            (RegMode::ShadowPlain, false) => {
                self.stats.shadow_fast += 1;
                self.plain[reg] = req.wdata;
                let ev = RegDown::ShadowWrite {
                    reg: reg as u8,
                    value: req.wdata,
                };
                // Ack as soon as the forwarding FIFO admits the write.
                if self.down.can_push(now) {
                    self.push_down(now, ev);
                    self.respond_now(now, req.id, 0, reply_to);
                } else {
                    self.waiting = Some(WaitSt::DownSpace {
                        ev,
                        id: req.id,
                        reply_to,
                    });
                }
            }
            (RegMode::FpgaBound, false) => {
                self.stats.shadow_fast += 1;
                let ev = RegDown::ShadowWrite {
                    reg: reg as u8,
                    value: req.wdata,
                };
                if self.down.can_push(now) {
                    self.push_down(now, ev);
                    self.respond_now(now, req.id, 0, reply_to);
                } else {
                    self.waiting = Some(WaitSt::DownSpace {
                        ev,
                        id: req.id,
                        reply_to,
                    });
                }
            }
            (RegMode::FpgaBound, true) => {
                // Reading an FPGA-bound FIFO is meaningless; bogus data.
                self.respond_now(now, req.id, BOGUS, reply_to);
            }
            (RegMode::CpuBound, true) => {
                self.stats.shadow_fast += 1;
                if let Some(v) = self.cpu_fifo[reg].pop_front() {
                    self.respond_now(now, req.id, v, reply_to);
                } else {
                    self.waiting = Some(WaitSt::CpuBound {
                        reg: reg as u8,
                        id: req.id,
                        reply_to,
                        started: now,
                    });
                }
            }
            (RegMode::CpuBound, false) => {
                self.respond_now(now, req.id, BOGUS, reply_to);
            }
            (RegMode::Token, true) => {
                self.stats.shadow_fast += 1;
                if self.tokens[reg] > 0 {
                    self.tokens[reg] -= 1;
                    self.respond_now(now, req.id, 1, reply_to);
                } else {
                    self.respond_now(now, req.id, 0, reply_to);
                }
            }
            (RegMode::Token, false) => {
                self.respond_now(now, req.id, BOGUS, reply_to);
            }
        }
    }

    fn push_down_or_wait(
        &mut self,
        now: Time,
        ev: RegDown,
        id: u64,
        reply_to: NodeId,
        txn: Option<u64>,
    ) {
        if self.down.can_push(now) {
            self.push_down(now, ev);
            if let Some(txn) = txn {
                self.waiting = Some(WaitSt::NormalTxn {
                    txn,
                    id,
                    reply_to,
                    started: now,
                });
            }
        } else if let Some(txn) = txn {
            // No space yet: wait for space, then for the fabric's reply.
            // The timeout restarts when the push succeeds.
            self.waiting = Some(WaitSt::DownSpaceThenTxn {
                ev,
                txn,
                id,
                reply_to,
            });
        }
    }

    fn alloc_txn(&mut self) -> u64 {
        let t = self.txn_next;
        self.txn_next += 1;
        t
    }

    fn manager_access(
        &mut self,
        now: Time,
        req: MemReq,
        reply_to: NodeId,
        is_read: bool,
        offset: u64,
    ) {
        use mmio_map::*;
        let value = req.wdata;
        let mut resp = 0u64;
        match offset {
            REG_MODE if !is_read => {
                let reg = ((value >> 8) as usize) % REG_COUNT;
                if let Some(mode) = RegMode::from_u64(value & 0xFF) {
                    self.modes[reg] = mode;
                }
            }
            FPGA_CLOCK_MHZ => {
                if is_read {
                    resp = self.fpga_clock_mhz as u64;
                } else {
                    self.pending_clock_mhz = Some(value as f64);
                }
            }
            BITSTREAM_BEGIN if !is_read => {
                self.prog_expected_checksum = value;
                self.prog_acc = 0;
            }
            BITSTREAM_LEN if !is_read => {
                self.prog_remaining = value;
                self.prog_status = ProgStatus::Programming;
            }
            BITSTREAM_DATA if !is_read => {
                if self.prog_status == ProgStatus::Programming {
                    self.prog_acc = self.prog_acc.rotate_left(1) ^ value;
                    self.prog_remaining = self.prog_remaining.saturating_sub(1);
                    if self.prog_remaining == 0 {
                        if self.prog_acc == self.prog_expected_checksum {
                            self.prog_status = ProgStatus::Done;
                        } else {
                            self.prog_status = ProgStatus::Error;
                            self.raise(error_codes::BITSTREAM_CORRUPT);
                        }
                    }
                }
            }
            BITSTREAM_STATUS if is_read => {
                resp = self.prog_status as u64;
            }
            ERROR_CODE if is_read => {
                resp = self.error_code;
            }
            CLEAR_ERROR if !is_read => {
                self.error_code = 0;
                self.active = true;
            }
            TIMEOUT_LIMIT if !is_read => {
                self.timeout_cycles = value.max(1);
            }
            ACCEL_RESET if !is_read => {
                self.reset_pulse = true;
            }
            INTERFACE_ACTIVE if !is_read => {
                self.active = value != 0;
            }
            _ => {
                resp = BOGUS;
            }
        }
        self.respond_now(now, req.id, resp, reply_to);
    }

    /// Latches a VPN for a subsequent per-hub TLB insert (adapter decode
    /// helper).
    pub fn latch_tlb_vpn(&mut self, hub: usize, vpn: u64) {
        self.tlb_vpn_latch[hub % 8] = vpn;
    }

    /// Reads back the latched VPN.
    pub fn latched_tlb_vpn(&self, hub: usize) -> u64 {
        self.tlb_vpn_latch[hub % 8]
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter, Time};

    use super::{ControlHub, ControlHubStats, ProgStatus, RegDown, RegMode, WaitSt};

    impl Pack for RegMode {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(*self as u8);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            RegMode::from_u64(u64::from(r.u8()?))
                .ok_or(SnapError::Corrupt("invalid RegMode discriminant"))
        }
    }

    impl Pack for ProgStatus {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(*self as u8);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => ProgStatus::Idle,
                1 => ProgStatus::Programming,
                2 => ProgStatus::Done,
                3 => ProgStatus::Error,
                _ => return Err(SnapError::Corrupt("invalid ProgStatus discriminant")),
            })
        }
    }

    impl Pack for ControlHubStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.mmio_ops);
            w.u64(self.shadow_fast);
            w.u64(self.normal_crossings);
            w.u64(self.timeouts);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(ControlHubStats {
                mmio_ops: r.u64()?,
                shadow_fast: r.u64()?,
                normal_crossings: r.u64()?,
                timeouts: r.u64()?,
            })
        }
    }

    impl Pack for WaitSt {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                WaitSt::NormalTxn {
                    txn,
                    id,
                    reply_to,
                    started,
                } => {
                    w.u8(0);
                    w.u64(*txn);
                    w.u64(*id);
                    w.len64(*reply_to);
                    started.pack(w);
                }
                WaitSt::CpuBound {
                    reg,
                    id,
                    reply_to,
                    started,
                } => {
                    w.u8(1);
                    w.u8(*reg);
                    w.u64(*id);
                    w.len64(*reply_to);
                    started.pack(w);
                }
                WaitSt::DownSpace { ev, id, reply_to } => {
                    w.u8(2);
                    ev.pack(w);
                    w.u64(*id);
                    w.len64(*reply_to);
                }
                WaitSt::DownSpaceThenTxn {
                    ev,
                    txn,
                    id,
                    reply_to,
                } => {
                    w.u8(3);
                    ev.pack(w);
                    w.u64(*txn);
                    w.u64(*id);
                    w.len64(*reply_to);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => WaitSt::NormalTxn {
                    txn: r.u64()?,
                    id: r.u64()?,
                    reply_to: r.len64()?,
                    started: Time::unpack(r)?,
                },
                1 => WaitSt::CpuBound {
                    reg: r.u8()?,
                    id: r.u64()?,
                    reply_to: r.len64()?,
                    started: Time::unpack(r)?,
                },
                2 => WaitSt::DownSpace {
                    ev: RegDown::unpack(r)?,
                    id: r.u64()?,
                    reply_to: r.len64()?,
                },
                3 => WaitSt::DownSpaceThenTxn {
                    ev: RegDown::unpack(r)?,
                    txn: r.u64()?,
                    id: r.u64()?,
                    reply_to: r.len64()?,
                },
                _ => return Err(SnapError::Corrupt("invalid WaitSt discriminant")),
            })
        }
    }

    impl Snap for ControlHub {
        /// Everything observable is serialized; the tracer handle is not
        /// (the owning system re-installs it after a restore). The CDC
        /// links carry their own clock state, so a snapshot taken after a
        /// software clock change restores the retimed FIFOs exactly.
        fn save(&self, w: &mut SnapWriter) {
            self.modes.pack(w);
            self.plain.pack(w);
            self.cpu_fifo.pack(w);
            self.tokens.pack(w);
            self.down.save(w);
            self.up.save(w);
            self.mmio_in.pack(w);
            self.waiting.pack(w);
            self.txn_results.pack(w);
            w.u64(self.txn_next);
            self.out.save(w);
            self.active.pack(w);
            w.u64(self.error_code);
            w.u64(self.timeout_cycles);
            self.fpga_clock_mhz.pack(w);
            self.pending_clock_mhz.pack(w);
            self.prog_status.pack(w);
            w.u64(self.prog_expected_checksum);
            w.u64(self.prog_remaining);
            w.u64(self.prog_acc);
            self.reset_pulse.pack(w);
            self.tlb_vpn_latch.pack(w);
            self.stats.pack(w);
            self.irqs.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.modes = Pack::unpack(r)?;
            self.plain = Pack::unpack(r)?;
            let cpu_fifo: Vec<std::collections::VecDeque<u64>> = Pack::unpack(r)?;
            if cpu_fifo.len() != super::REG_COUNT {
                return Err(SnapError::Corrupt("cpu_fifo register count mismatch"));
            }
            self.cpu_fifo = cpu_fifo;
            self.tokens = Pack::unpack(r)?;
            self.down.load(r)?;
            self.up.load(r)?;
            self.mmio_in = Pack::unpack(r)?;
            self.waiting = Pack::unpack(r)?;
            self.txn_results = Pack::unpack(r)?;
            self.txn_next = r.u64()?;
            self.out.load(r)?;
            self.active = Pack::unpack(r)?;
            self.error_code = r.u64()?;
            self.timeout_cycles = r.u64()?;
            self.fpga_clock_mhz = Pack::unpack(r)?;
            self.pending_clock_mhz = Pack::unpack(r)?;
            self.prog_status = Pack::unpack(r)?;
            self.prog_expected_checksum = r.u64()?;
            self.prog_remaining = r.u64()?;
            self.prog_acc = r.u64()?;
            self.reset_pulse = Pack::unpack(r)?;
            self.tlb_vpn_latch = Pack::unpack(r)?;
            self.stats = ControlHubStats::unpack(r)?;
            self.irqs = Pack::unpack(r)?;
            Ok(())
        }
    }
}

impl Component for ControlHub {
    fn name(&self) -> String {
        format!("ctl@n{}", self.node)
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Fast
    }

    fn tick(&mut self, now: Time) {
        ControlHub::tick(self, now);
    }

    fn next_event_time(&self, now: Time) -> Option<Time> {
        ControlHub::next_event_time(self, now)
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        visit("reg_down", self.down.report());
        visit("reg_up", self.up.report());
        visit("noc_out", self.out.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_mem::types::Width;

    fn fast() -> Clock {
        Clock::ghz1()
    }

    fn slow() -> Clock {
        Clock::from_mhz(100.0)
    }

    fn hub() -> ControlHub {
        ControlHub::new(ControlHubConfig::dolly(fast()), 0, slow())
    }

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    fn run_until_resp(h: &mut ControlHub, from_cycle: u64, max: u64) -> (u64, MemResp) {
        for c in from_cycle..from_cycle + max {
            h.tick(t(c * 1000));
            if let Some((_, DuetMsg::MmioResp { resp })) = h.pop_outgoing(t(c * 1000)) {
                return (c, resp);
            }
        }
        panic!("no MMIO response within {max} cycles");
    }

    #[test]
    fn shadow_plain_write_acks_fast_and_forwards() {
        let mut h = hub();
        h.set_reg_mode(0, RegMode::ShadowPlain);
        h.mmio_request(MemReq::store(1, 0, Width::B8, 42), 5);
        let (cycle, resp) = run_until_resp(&mut h, 1, 20);
        assert_eq!(resp.id, 1);
        assert!(cycle < 10, "shadow write acked from the fast domain");
        // The write is synchronized into the fabric.
        let (down, _) = h.fabric_links();
        let ev = down.pop(t(40_000)).expect("forwarded");
        assert_eq!(ev, RegDown::ShadowWrite { reg: 0, value: 42 });
        // Reads return the fast-domain copy immediately.
        h.mmio_request(MemReq::load(2, 0, Width::B8), 5);
        let (_, resp) = run_until_resp(&mut h, 50, 20);
        assert_eq!(resp.rdata, 42);
    }

    #[test]
    fn normal_register_roundtrips_into_fabric() {
        let mut h = hub();
        h.set_reg_mode(1, RegMode::Normal);
        h.mmio_request(MemReq::load(3, 8, Width::B8), 4);
        h.tick(t(1000));
        // No response yet; the fabric must answer.
        assert!(h.pop_outgoing(t(5000)).is_none());
        // Fabric sees the ReadReq after CDC, answers.
        let (down, up) = h.fabric_links();
        let ev = down.pop(t(30_000)).expect("read request crossed");
        let RegDown::ReadReq { txn, reg } = ev else {
            panic!("expected ReadReq, got {ev:?}")
        };
        assert_eq!(reg, 1);
        up.push(t(30_000), RegUp::ReadResp { txn, value: 77 })
            .unwrap();
        let (_, resp) = run_until_resp(&mut h, 31, 50);
        assert_eq!(resp.rdata, 77);
    }

    #[test]
    fn cpu_bound_fifo_blocks_until_push() {
        let mut h = hub();
        h.set_reg_mode(2, RegMode::CpuBound);
        h.mmio_request(MemReq::load(4, 16, Width::B8), 9);
        for c in 1..10 {
            h.tick(t(c * 1000));
        }
        assert!(
            h.pop_outgoing(t(10_000)).is_none(),
            "read blocks on empty FIFO"
        );
        // The fabric pushes; the read completes.
        {
            let (_, up) = h.fabric_links();
            up.push(t(10_000), RegUp::Push { reg: 2, value: 123 })
                .unwrap();
        }
        let (_, resp) = run_until_resp(&mut h, 11, 50);
        assert_eq!(resp.rdata, 123);
    }

    #[test]
    fn cpu_bound_read_times_out_with_bogus_and_error() {
        let mut h = hub();
        h.set_reg_mode(2, RegMode::CpuBound);
        // Shrink the timeout via MMIO.
        h.mmio_request(MemReq::store(1, mmio_map::TIMEOUT_LIMIT, Width::B8, 10), 0);
        let _ = run_until_resp(&mut h, 1, 20);
        h.mmio_request(MemReq::load(2, 16, Width::B8), 0);
        let (_, resp) = run_until_resp(&mut h, 30, 200);
        assert_eq!(resp.rdata, BOGUS);
        assert_eq!(h.error_code(), error_codes::TIMEOUT);
        assert_eq!(h.stats().timeouts, 1);
    }

    #[test]
    fn token_fifo_is_nonblocking_try_join() {
        let mut h = hub();
        h.set_reg_mode(3, RegMode::Token);
        // Empty: returns 0 immediately.
        h.mmio_request(MemReq::load(1, 24, Width::B8), 0);
        let (_, resp) = run_until_resp(&mut h, 1, 20);
        assert_eq!(resp.rdata, 0);
        // Two pushes = two tokens.
        {
            let (_, up) = h.fabric_links();
            up.push(t(30_000), RegUp::Push { reg: 3, value: 0 })
                .unwrap();
            up.push(t(31_000), RegUp::Push { reg: 3, value: 0 })
                .unwrap();
        }
        for (i, expect) in [(1u64, 1u64), (2, 1), (3, 0)] {
            h.mmio_request(MemReq::load(10 + i, 24, Width::B8), 0);
            let (_, resp) = run_until_resp(&mut h, 40 + i * 20, 30);
            assert_eq!(resp.rdata, expect, "token read {i}");
        }
    }

    #[test]
    fn deactivated_interface_returns_bogus() {
        let mut h = hub();
        h.set_reg_mode(0, RegMode::CpuBound);
        h.mmio_request(
            MemReq::store(1, mmio_map::INTERFACE_ACTIVE, Width::B8, 0),
            0,
        );
        let _ = run_until_resp(&mut h, 1, 20);
        // A read that would normally block now returns bogus instantly.
        h.mmio_request(MemReq::load(2, 0, Width::B8), 0);
        let (_, resp) = run_until_resp(&mut h, 30, 10);
        assert_eq!(resp.rdata, BOGUS);
    }

    #[test]
    fn bitstream_programming_and_integrity() {
        let mut h = hub();
        let words = [0xAAu64, 0xBB, 0xCC];
        let checksum = words.iter().fold(0u64, |a, w| a.rotate_left(1) ^ w);
        let mut cycle = 1;
        let do_write = |h: &mut ControlHub, off, v, cyc: &mut u64| {
            h.mmio_request(MemReq::store(99, off, Width::B8, v), 0);
            let (c, _) = run_until_resp(h, *cyc, 30);
            *cyc = c + 1;
        };
        do_write(&mut h, mmio_map::BITSTREAM_BEGIN, checksum, &mut cycle);
        do_write(&mut h, mmio_map::BITSTREAM_LEN, 3, &mut cycle);
        assert_eq!(h.prog_status(), ProgStatus::Programming);
        assert!(h.programming());
        for w in words {
            do_write(&mut h, mmio_map::BITSTREAM_DATA, w, &mut cycle);
        }
        assert_eq!(h.prog_status(), ProgStatus::Done);
        // Corrupted stream fails the check and raises an exception.
        let mut h2 = hub();
        let mut cycle = 1;
        do_write(&mut h2, mmio_map::BITSTREAM_BEGIN, checksum, &mut cycle);
        do_write(&mut h2, mmio_map::BITSTREAM_LEN, 3, &mut cycle);
        do_write(&mut h2, mmio_map::BITSTREAM_DATA, 0xAA, &mut cycle);
        do_write(&mut h2, mmio_map::BITSTREAM_DATA, 0xBB ^ 1, &mut cycle);
        do_write(&mut h2, mmio_map::BITSTREAM_DATA, 0xCC, &mut cycle);
        assert_eq!(h2.prog_status(), ProgStatus::Error);
        assert_eq!(h2.error_code(), error_codes::BITSTREAM_CORRUPT);
    }

    #[test]
    fn clock_change_is_requested_via_mmio() {
        let mut h = hub();
        h.mmio_request(
            MemReq::store(1, mmio_map::FPGA_CLOCK_MHZ, Width::B8, 250),
            0,
        );
        let _ = run_until_resp(&mut h, 1, 20);
        assert_eq!(h.take_clock_change(), Some(250.0));
        assert_eq!(h.take_clock_change(), None);
    }

    #[test]
    fn reg_mode_mmio_configuration() {
        let mut h = hub();
        h.mmio_request(
            MemReq::store(1, mmio_map::REG_MODE, Width::B8, (7 << 8) | 3),
            0,
        );
        let _ = run_until_resp(&mut h, 1, 20);
        assert_eq!(h.reg_mode(7), RegMode::CpuBound);
    }

    #[test]
    fn io_ordering_normal_blocks_following_shadow() {
        // Fig. 6c: a shadowed access behind a normal access must not
        // complete first.
        let mut h = hub();
        h.set_reg_mode(0, RegMode::Normal);
        h.set_reg_mode(1, RegMode::ShadowPlain);
        h.mmio_request(MemReq::store(1, 0, Width::B8, 5), 0); // normal
        h.mmio_request(MemReq::store(2, 8, Width::B8, 6), 0); // shadow
        for c in 1..30 {
            h.tick(t(c * 1000));
        }
        assert!(
            h.pop_outgoing(t(30_000)).is_none(),
            "shadow write must wait for the normal write's fabric ack"
        );
        // Fabric acks the normal write; both complete, in order.
        let txn = {
            let (down, _) = h.fabric_links();
            match down.pop(t(30_000)) {
                Some(RegDown::WriteReq { txn, .. }) => txn,
                other => panic!("expected WriteReq, got {other:?}"),
            }
        };
        {
            let (_, up) = h.fabric_links();
            up.push(t(31_000), RegUp::WriteAck { txn }).unwrap();
        }
        let (_, r1) = run_until_resp(&mut h, 32, 60);
        assert_eq!(r1.id, 1, "normal write completes first");
        let (_, r2) = run_until_resp(&mut h, 40, 60);
        assert_eq!(r2.id, 2);
    }
}
