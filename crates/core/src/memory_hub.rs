//! The **Memory Hub** (Sec. II-B): Proxy Cache + exception handler +
//! feature switches + per-hub TLB, all in the fast clock domain.
//!
//! A Memory Hub bridges the eFPGA's simple memory interface to the
//! cache-coherent NoC:
//!
//! * the **Proxy Cache** is an unmodified private L2
//!   ([`duet_mem::priv_cache::PrivCache`]) with its CPU-side port driven by
//!   fabric requests — exactly Dolly's "coherent memory interface added to
//!   the unmodified P-Mesh L2",
//! * the hub **never waits for the fabric**: invalidations are forwarded
//!   into the response FIFO without acknowledgement and the proxy answers
//!   coherence immediately (Fig. 5c),
//! * the **exception handler** validates fabric requests (alignment /
//!   feature checks standing in for the RTL's parity) and, on an error,
//!   latches a code and deactivates the hub while the Proxy Cache keeps
//!   serving in-flight coherence,
//! * the optional **TLB** translates accelerator virtual addresses; misses
//!   raise a page-fault interrupt and stall the (in-order) fabric request
//!   stream until the kernel refills the TLB by MMIO (Sec. II-D). For VIVT
//!   soft caches the hub tracks the virtual line of each physical line so
//!   forwarded invalidations carry fabric-visible addresses, and it
//!   invalidates synonyms before completing a fill under a new alias.

use std::collections::BTreeMap;

use duet_fpga::ports::{FpgaMemOp, FpgaMemReq, FpgaMemResp, FpgaRespKind};
use duet_mem::msg::CoherenceMsg;
use duet_mem::priv_cache::{CacheConfig, HomeMap, PrivCache};
use duet_mem::tlb::{PagePerms, Ppn, Tlb, Translation, Vpn};
use duet_mem::types::{LineAddr, MemReq};
use duet_noc::NodeId;
use duet_sim::{
    merge_min, Clock, ClockDomain, Component, LatencyBreakdown, Link, LinkReport, Time,
};
use duet_trace::{EventKind, Tracer};

use crate::msg::IrqCause;

/// Error codes latched by the exception handler.
pub mod error_codes {
    /// Misaligned or malformed fabric request (stands in for parity).
    pub const BAD_REQUEST: u64 = 0x1;
    /// Atomic issued while the atomics feature switch is off.
    pub const ATOMICS_DISABLED: u64 = 0x2;
    /// Access to a page the accelerator lacks permission for.
    pub const PERMISSION: u64 = 0x3;
    /// The kernel killed the accelerator after an invalid page access.
    pub const KILLED: u64 = 0x4;
}

/// Feature switches of a Memory Hub (Sec. II-B). All are processor-
/// configurable via MMIO.
#[derive(Clone, Copy, Debug)]
pub struct HubSwitches {
    /// Hub accepts fabric requests. Cleared during reconfiguration and by
    /// the exception handler.
    pub active: bool,
    /// Forward coherence invalidations into the eFPGA (set when soft
    /// caches are used).
    pub fwd_inv: bool,
    /// Translate fabric addresses through the TLB (virtual-address mode).
    pub tlb_enabled: bool,
    /// Allow fabric atomics.
    pub atomics: bool,
}

impl Default for HubSwitches {
    fn default() -> Self {
        HubSwitches {
            active: true,
            fwd_inv: false,
            tlb_enabled: false,
            atomics: true,
        }
    }
}

/// Memory Hub configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemoryHubConfig {
    /// Proxy Cache geometry/timing (fast domain).
    pub proxy: CacheConfig,
    /// Depth of the fabric→hub request FIFO.
    pub req_fifo_depth: usize,
    /// Depth of the hub→fabric response FIFO.
    pub resp_fifo_depth: usize,
    /// Synchronizer stages of the async FIFOs.
    pub sync_stages: u32,
    /// TLB entries.
    pub tlb_entries: usize,
    /// Initial feature switches.
    pub switches: HubSwitches,
}

impl MemoryHubConfig {
    /// Dolly-like hub: proxy = Dolly L2 with 8 MSHRs, 16-deep FIFOs,
    /// 2-stage synchronizers, 16-entry TLB.
    pub fn dolly(fast_clock: Clock) -> Self {
        MemoryHubConfig {
            proxy: CacheConfig::dolly_l2(fast_clock).with_mshrs(8),
            req_fifo_depth: 16,
            resp_fifo_depth: 16,
            sync_stages: 2,
            tlb_entries: 16,
            switches: HubSwitches::default(),
        }
    }
}

/// Event counters for a Memory Hub.
#[derive(Clone, Copy, Debug, Default)]
pub struct HubStats {
    /// Fabric requests accepted.
    pub requests: u64,
    /// Line loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Atomics.
    pub amos: u64,
    /// Invalidations forwarded into the fabric.
    pub invs_forwarded: u64,
    /// TLB page faults raised.
    pub page_faults: u64,
    /// Exceptions latched.
    pub exceptions: u64,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    fabric_id: u64,
    base: LatencyBreakdown,
    is_amo: bool,
}

/// The Memory Hub. See module docs.
#[derive(Clone)]
pub struct MemoryHub {
    cfg: MemoryHubConfig,
    node: NodeId,
    proxy: PrivCache,
    /// Fabric (slow, producer) → hub (fast, consumer) CDC link.
    req_fifo: Link<FpgaMemReq>,
    /// Hub (fast, producer) → fabric (slow, consumer) CDC link.
    resp_fifo: Link<FpgaMemResp>,
    /// Overflow stage in front of `resp_fifo`, preserving order while never
    /// blocking the proxy (models a deeper hardware FIFO).
    resp_stage: std::collections::VecDeque<FpgaMemResp>,
    tlb: Tlb,
    switches: HubSwitches,
    error_code: u64,
    pending: BTreeMap<u64, Pending>,
    next_proxy_id: u64,
    /// A faulting fabric request waiting for a TLB refill (stalls the
    /// in-order request stream).
    fault: Option<FpgaMemReq>,
    irqs: std::collections::VecDeque<IrqCause>,
    /// Physical line → virtual line, for VIVT invalidation reverse-mapping.
    va_of_pa: BTreeMap<u64, u64>,
    /// This hub's index within its adapter (reported in page faults).
    hub_index: usize,
    stats: HubStats,
    /// Trace handle (events: request-FIFO pops, response-FIFO pushes —
    /// i.e. the CDC crossings). Purely observational.
    tracer: Tracer,
}

impl MemoryHub {
    /// Creates a hub whose Proxy Cache sits on NoC node `node`.
    pub fn new(
        cfg: MemoryHubConfig,
        node: NodeId,
        hub_index: usize,
        home: HomeMap,
        fpga_clock: Clock,
    ) -> Self {
        let fast = cfg.proxy.clock;
        MemoryHub {
            cfg,
            node,
            proxy: PrivCache::new(cfg.proxy, node, home),
            req_fifo: Link::cdc(cfg.req_fifo_depth, cfg.sync_stages, fpga_clock, fast),
            resp_fifo: Link::cdc(cfg.resp_fifo_depth, cfg.sync_stages, fast, fpga_clock),
            resp_stage: std::collections::VecDeque::new(),
            tlb: Tlb::new(cfg.tlb_entries),
            switches: cfg.switches,
            error_code: 0,
            pending: BTreeMap::new(),
            next_proxy_id: 1,
            fault: None,
            irqs: std::collections::VecDeque::new(),
            va_of_pa: BTreeMap::new(),
            hub_index,
            stats: HubStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the trace handle.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a trace handle on the hub's inner Proxy Cache (MSHR and
    /// writeback events attributed to the proxy's component id).
    pub fn set_proxy_tracer(&mut self, tracer: Tracer) {
        self.proxy.set_tracer(tracer);
    }

    /// The hub's NoC node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The hub's configuration.
    pub fn config(&self) -> &MemoryHubConfig {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> HubStats {
        self.stats
    }

    /// Current feature switches.
    pub fn switches(&self) -> HubSwitches {
        self.switches
    }

    /// Updates the feature switches (MMIO).
    pub fn set_switches(&mut self, s: HubSwitches) {
        self.switches = s;
    }

    /// Latched error code (0 = none).
    pub fn error_code(&self) -> u64 {
        self.error_code
    }

    /// Clears the error code and reactivates the hub (MMIO).
    pub fn clear_error(&mut self) {
        self.error_code = 0;
        self.switches.active = true;
    }

    /// Deactivates the hub (used during reconfiguration and by adapter-wide
    /// exception propagation). The Proxy Cache remains fully functional.
    pub fn deactivate(&mut self) {
        self.switches.active = false;
    }

    /// Whether the exception handler has tripped since the last clear.
    pub fn exception_pending(&self) -> bool {
        self.error_code != 0
    }

    /// Inserts a TLB mapping (kernel MMIO refill). Retries a pending fault
    /// on the next tick.
    pub fn tlb_insert(&mut self, vpn: Vpn, ppn: Ppn, perms: PagePerms) {
        self.tlb.insert(vpn, ppn, perms);
    }

    /// Kills the accelerator after an invalid page access: drops the
    /// faulting request, latches an error, deactivates.
    pub fn kill(&mut self) {
        self.fault = None;
        self.raise(error_codes::KILLED);
    }

    /// Pops a pending interrupt.
    pub fn pop_irq(&mut self) -> Option<IrqCause> {
        self.irqs.pop_front()
    }

    /// Whether an interrupt is queued (drained on the fast side even when
    /// the hub itself ticks in the slow domain).
    pub fn has_pending_irq(&self) -> bool {
        !self.irqs.is_empty()
    }

    /// Reclocks the fabric-side FIFOs after a clock-generator change.
    pub fn set_fpga_clock(&mut self, clock: Clock) {
        self.req_fifo.set_producer_clock(clock);
        self.resp_fifo.set_consumer_clock(clock);
    }

    /// Fabric-side CDC links (for building
    /// [`duet_fpga::ports::FabricPorts`]).
    pub fn fabric_links(&mut self) -> (&mut Link<FpgaMemReq>, &mut Link<FpgaMemResp>) {
        (&mut self.req_fifo, &mut self.resp_fifo)
    }

    /// Freezes or thaws both fabric-side CDC FIFOs (fault injection: a
    /// stuck synchronizer). Contents are preserved across the freeze.
    pub fn set_fabric_frozen(&mut self, frozen: bool) {
        self.req_fifo.set_frozen(frozen);
        self.resp_fifo.set_frozen(frozen);
    }

    /// Monotone count of fabric-side memory activity (requests the fabric
    /// issued plus responses it consumed). The adapter watchdog samples
    /// this to distinguish a hung accelerator from a slow one.
    pub fn progress_signature(&self) -> u64 {
        self.req_fifo.stats().pushes + self.resp_fifo.stats().pops
    }

    /// Proxy-cache statistics.
    pub fn proxy_stats(&self) -> duet_mem::priv_cache::CacheStats {
        self.proxy.stats()
    }

    /// Reads a line resident in the Proxy Cache (coherent peek support).
    pub fn peek_proxy_line(&self, line: LineAddr) -> Option<duet_mem::types::LineData> {
        self.proxy.peek_line(line)
    }

    /// The Proxy Cache's stable MESI state for a line (verification aid).
    pub fn proxy_line_state(&self, line: LineAddr) -> Option<duet_mem::LineState> {
        self.proxy.line_state(line)
    }

    /// Whether the proxy and its NoC-facing state are drained (the fabric
    /// FIFOs may still hold responses the accelerator has not popped).
    pub fn proxy_is_quiet(&self) -> bool {
        self.proxy.is_idle() && self.pending.is_empty() && self.fault.is_none()
    }

    /// Delivers a coherence message from the NoC glue.
    pub fn handle_noc(&mut self, now: Time, src: NodeId, msg: CoherenceMsg, flight: Time) {
        self.proxy.handle_msg(now, src, msg, flight);
    }

    /// Pops an outgoing coherence message.
    pub fn pop_outgoing(&mut self, now: Time) -> Option<(NodeId, CoherenceMsg)> {
        self.proxy.pop_outgoing(now)
    }

    /// Whether responses await the fabric: occupancy in the slow-consumed
    /// response FIFO (invisible to the fast-side
    /// [`next_event_time`](MemoryHub::next_event_time) contract).
    pub fn fabric_resp_pending(&self) -> bool {
        !self.resp_fifo.is_empty()
    }

    /// Whether all queues are empty (quiesce checks).
    pub fn is_idle(&self) -> bool {
        self.proxy.is_idle()
            && self.pending.is_empty()
            && self.req_fifo.is_empty()
            && self.resp_fifo.is_empty()
            && self.resp_stage.is_empty()
            && self.fault.is_none()
    }

    /// The earliest time ticking or draining this hub can next do observable
    /// work, or `None` when it can only be woken externally (a fabric push
    /// or a NoC message).
    ///
    /// A pending fault keeps the hub hot: the retry path probes the TLB
    /// (updating its replacement state) every tick, which must not be
    /// elided. Staged responses are hot because backpressure visibility
    /// depends on slow-domain pops. Accepting new fabric requests is bounded
    /// by the request FIFO's synchronizer-crossing time, and only matters
    /// while the hub is switched on.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if self.fault.is_some() || !self.resp_stage.is_empty() || !self.irqs.is_empty() {
            return Some(now);
        }
        let mut earliest = self.proxy.next_event_time(now);
        if self.switches.active {
            earliest = merge_min(earliest, self.req_fifo.front_ready_at());
        }
        earliest
    }

    fn raise(&mut self, code: u64) {
        if self.error_code == 0 {
            self.error_code = code;
            self.stats.exceptions += 1;
            self.irqs.push_back(IrqCause::Exception { code });
        }
        self.switches.active = false;
    }

    fn push_resp(&mut self, now: Time, resp: FpgaMemResp) {
        self.resp_stage.push_back(resp);
        self.drain_resp_stage(now);
    }

    fn drain_resp_stage(&mut self, now: Time) {
        while let Some(front) = self.resp_stage.front() {
            if self.resp_fifo.can_push(now) {
                let r = *front;
                self.resp_stage.pop_front();
                let kind = match r.kind {
                    FpgaRespKind::LoadAck { .. } => 0,
                    FpgaRespKind::StoreAck { .. } => 1,
                    FpgaRespKind::Inv { .. } => 2,
                };
                self.tracer
                    .emit(now.as_ps(), EventKind::AdapterRespPush, r.id, kind);
                self.resp_fifo.push(now, r).expect("space checked");
            } else {
                break;
            }
        }
    }

    /// Advances the hub by one fast-clock edge.
    pub fn tick(&mut self, now: Time) {
        self.proxy.tick(now);
        self.drain_resp_stage(now);

        // Forward back-invalidations into the fabric (ack-free; Sec. II-C).
        for (line, _reason) in self.proxy.take_back_invalidations() {
            if self.switches.fwd_inv {
                let fabric_line = if self.switches.tlb_enabled {
                    match self.va_of_pa.get(&line.0) {
                        Some(va) => LineAddr(*va),
                        None => continue, // never exposed to the fabric
                    }
                } else {
                    line
                };
                self.stats.invs_forwarded += 1;
                self.push_resp(
                    now,
                    FpgaMemResp {
                        id: 0,
                        kind: FpgaRespKind::Inv { line: fabric_line },
                        breakdown: LatencyBreakdown::new(),
                    },
                );
            }
        }

        // Complete proxy responses toward the fabric.
        while let Some(resp) = self.proxy.pop_cpu_resp(now) {
            let Some(p) = self.pending.remove(&resp.id) else {
                panic!("proxy response for unknown id {}", resp.id);
            };
            let mut bd = p.base;
            bd.merge(&resp.breakdown);
            let kind = match resp.line {
                Some(data) => FpgaRespKind::LoadAck { data },
                None => FpgaRespKind::StoreAck {
                    old: if p.is_amo { resp.rdata } else { 0 },
                },
            };
            self.push_resp(
                now,
                FpgaMemResp {
                    id: p.fabric_id,
                    kind,
                    breakdown: bd,
                },
            );
        }

        // Retry a faulting request after a TLB refill.
        if let Some(req) = self.fault {
            if self.proxy.can_accept() {
                let is_write = !matches!(req.op, FpgaMemOp::LoadLine);
                match self.tlb.translate(req.addr, is_write) {
                    Translation::Hit(pa) => {
                        self.fault = None;
                        self.issue_translated(now, req, pa);
                    }
                    Translation::Miss => {} // still waiting for the kernel
                    Translation::Fault => self.raise(error_codes::PERMISSION),
                }
            }
            return; // in-order: nothing behind the fault may proceed
        }

        // Accept new fabric requests.
        while self.switches.active && self.proxy.can_accept() {
            let Some(req) = self.req_fifo.pop(now) else {
                break;
            };
            self.tracer
                .emit(now.as_ps(), EventKind::AdapterReqPop, req.id, req.addr);
            // Exception handler: validation standing in for parity checks.
            let width_ok = match req.op {
                FpgaMemOp::LoadLine => req.addr % 16 == 0,
                FpgaMemOp::Store(w) | FpgaMemOp::Amo(_, w) => req.addr % (w.bytes() as u64) == 0,
            };
            if !width_ok {
                self.raise(error_codes::BAD_REQUEST);
                break;
            }
            if matches!(req.op, FpgaMemOp::Amo(..)) && !self.switches.atomics {
                self.raise(error_codes::ATOMICS_DISABLED);
                break;
            }
            if self.switches.tlb_enabled {
                let is_write = !matches!(req.op, FpgaMemOp::LoadLine);
                match self.tlb.translate(req.addr, is_write) {
                    Translation::Hit(pa) => self.issue_translated(now, req, pa),
                    Translation::Miss => {
                        self.stats.page_faults += 1;
                        self.fault = Some(req);
                        self.irqs.push_back(IrqCause::PageFault {
                            vaddr: req.addr,
                            is_write,
                            hub: self.hub_index,
                        });
                        break;
                    }
                    Translation::Fault => {
                        self.raise(error_codes::PERMISSION);
                        break;
                    }
                }
            } else {
                let pa = req.addr;
                self.issue_translated(now, req, pa);
            }
        }
    }

    /// Issues a validated, translated fabric request into the Proxy Cache.
    fn issue_translated(&mut self, now: Time, req: FpgaMemReq, pa: u64) {
        self.stats.requests += 1;
        let mut base = LatencyBreakdown::new();
        // Request-side CDC: time from the fabric edge that issued it to
        // this fast edge.
        base.cdc += now.saturating_sub(req.issued_at);

        // VIVT reverse map + synonym exclusion (Sec. II-D): remember which
        // virtual line this physical line is cached under; if the fabric
        // re-accesses it under a different alias, invalidate the old one.
        if self.switches.tlb_enabled {
            let pa_line = LineAddr::containing(pa);
            let va_line = LineAddr::containing(req.addr);
            if let Some(&old_va) = self.va_of_pa.get(&pa_line.0) {
                if old_va != va_line.0 && self.switches.fwd_inv {
                    self.stats.invs_forwarded += 1;
                    self.push_resp(
                        now,
                        FpgaMemResp {
                            id: 0,
                            kind: FpgaRespKind::Inv {
                                line: LineAddr(old_va),
                            },
                            breakdown: LatencyBreakdown::new(),
                        },
                    );
                }
            }
            self.va_of_pa.insert(pa_line.0, va_line.0);
        }

        let proxy_id = self.next_proxy_id;
        self.next_proxy_id += 1;
        let (mem_req, is_amo) = match req.op {
            FpgaMemOp::LoadLine => {
                self.stats.loads += 1;
                (MemReq::load_line(proxy_id, pa), false)
            }
            FpgaMemOp::Store(w) => {
                self.stats.stores += 1;
                (MemReq::store(proxy_id, pa, w, req.wdata), false)
            }
            FpgaMemOp::Amo(op, w) => {
                self.stats.amos += 1;
                (
                    MemReq::amo(proxy_id, op, pa, w, req.wdata, req.expected),
                    true,
                )
            }
        };
        self.pending.insert(
            proxy_id,
            Pending {
                fabric_id: req.id,
                base,
                is_amo,
            },
        );
        self.proxy.cpu_request(mem_req);
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{HubStats, HubSwitches, LatencyBreakdown, MemoryHub, Pending};

    impl Pack for HubSwitches {
        fn pack(&self, w: &mut SnapWriter) {
            self.active.pack(w);
            self.fwd_inv.pack(w);
            self.tlb_enabled.pack(w);
            self.atomics.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(HubSwitches {
                active: bool::unpack(r)?,
                fwd_inv: bool::unpack(r)?,
                tlb_enabled: bool::unpack(r)?,
                atomics: bool::unpack(r)?,
            })
        }
    }

    impl Pack for HubStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.requests);
            w.u64(self.loads);
            w.u64(self.stores);
            w.u64(self.amos);
            w.u64(self.invs_forwarded);
            w.u64(self.page_faults);
            w.u64(self.exceptions);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(HubStats {
                requests: r.u64()?,
                loads: r.u64()?,
                stores: r.u64()?,
                amos: r.u64()?,
                invs_forwarded: r.u64()?,
                page_faults: r.u64()?,
                exceptions: r.u64()?,
            })
        }
    }

    impl Pack for Pending {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.fabric_id);
            self.base.pack(w);
            self.is_amo.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Pending {
                fabric_id: r.u64()?,
                base: LatencyBreakdown::unpack(r)?,
                is_amo: bool::unpack(r)?,
            })
        }
    }

    impl Snap for MemoryHub {
        /// Everything observable is serialized; the tracer handles (hub and
        /// proxy) are not — the owning system re-installs them after a
        /// restore.
        fn save(&self, w: &mut SnapWriter) {
            self.proxy.save(w);
            self.req_fifo.save(w);
            self.resp_fifo.save(w);
            self.resp_stage.pack(w);
            self.tlb.save(w);
            self.switches.pack(w);
            w.u64(self.error_code);
            self.pending.pack(w);
            w.u64(self.next_proxy_id);
            self.fault.pack(w);
            self.irqs.pack(w);
            self.va_of_pa.pack(w);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.proxy.load(r)?;
            self.req_fifo.load(r)?;
            self.resp_fifo.load(r)?;
            self.resp_stage = Pack::unpack(r)?;
            self.tlb.load(r)?;
            self.switches = Pack::unpack(r)?;
            self.error_code = r.u64()?;
            self.pending = Pack::unpack(r)?;
            self.next_proxy_id = r.u64()?;
            self.fault = Pack::unpack(r)?;
            self.irqs = Pack::unpack(r)?;
            self.va_of_pa = Pack::unpack(r)?;
            self.stats = HubStats::unpack(r)?;
            Ok(())
        }
    }
}

impl Component for MemoryHub {
    fn name(&self) -> String {
        format!("hub{}@n{}", self.hub_index, self.node)
    }

    fn domain(&self) -> ClockDomain {
        if self.cfg.proxy.slow_domain {
            ClockDomain::Slow
        } else {
            ClockDomain::Fast
        }
    }

    fn tick(&mut self, now: Time) {
        MemoryHub::tick(self, now);
    }

    fn next_event_time(&self, now: Time) -> Option<Time> {
        MemoryHub::next_event_time(self, now)
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        visit("fabric_req", self.req_fifo.report());
        visit("fabric_resp", self.resp_fifo.report());
        self.proxy
            .visit_links(&mut |name, report| visit(&format!("proxy.{name}"), report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_fpga::ports::HubPort;
    use duet_mem::msg::Grant;
    use duet_mem::types::Width;

    fn fast() -> Clock {
        Clock::ghz1()
    }

    fn slow() -> Clock {
        Clock::from_mhz(100.0)
    }

    fn hub() -> MemoryHub {
        MemoryHub::new(
            MemoryHubConfig::dolly(fast()),
            0,
            0,
            HomeMap::new(vec![1]),
            slow(),
        )
    }

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    /// Pushes a fabric load at a slow edge and runs the hub until the GetS
    /// appears on the NoC side.
    #[test]
    fn fabric_load_reaches_noc_with_cdc_attribution() {
        let mut h = hub();
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.load_line(t(10_000), 7, 0x100));
        }
        // CDC: visible to hub at 12_000 (two fast edges).
        h.tick(t(11_000));
        assert_eq!(h.stats().requests, 0);
        h.tick(t(12_000));
        assert_eq!(h.stats().requests, 1);
        let mut saw = false;
        for c in 13..20 {
            h.tick(t(c * 1000));
            while let Some((dst, m)) = h.pop_outgoing(t(40_000)) {
                assert_eq!(dst, 1);
                assert!(matches!(m, CoherenceMsg::GetS { .. }));
                saw = true;
            }
        }
        assert!(saw);
        // Fill comes back; response lands in the fabric FIFO with CDC time
        // recorded.
        h.handle_noc(
            t(20_000),
            1,
            CoherenceMsg::Data {
                line: LineAddr::containing(0x100),
                data: [9u8; 16],
                grant: Grant::E,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::from_ns(4),
        );
        for c in 21..30 {
            h.tick(t(c * 1000));
        }
        let (_, resp_fifo) = h.fabric_links();
        let resp = resp_fifo.pop(t(60_000)).expect("fabric response");
        assert_eq!(resp.id, 7);
        assert!(matches!(resp.kind, FpgaRespKind::LoadAck { data } if data[0] == 9));
        assert!(
            resp.breakdown.cdc >= Time::from_ns(2),
            "request CDC recorded"
        );
        assert!(
            resp.breakdown.noc >= Time::from_ns(4),
            "NoC flight recorded"
        );
    }

    #[test]
    fn misaligned_request_trips_exception_and_deactivates() {
        let mut h = hub();
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.store(t(10_000), 1, 0x101, Width::B8, 5)); // misaligned
        }
        h.tick(t(12_000));
        assert_eq!(h.error_code(), error_codes::BAD_REQUEST);
        assert!(!h.switches().active);
        assert!(
            matches!(h.pop_irq(), Some(IrqCause::Exception { code }) if code == error_codes::BAD_REQUEST)
        );
        // Deactivated hub stops accepting (request stays in FIFO).
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.store(t(20_000), 2, 0x108, Width::B8, 5));
        }
        h.tick(t(22_000));
        assert_eq!(h.stats().requests, 0);
        // Clear + reactivate resumes.
        h.clear_error();
        h.tick(t(23_000));
        assert_eq!(h.stats().requests, 1);
    }

    #[test]
    fn proxy_keeps_serving_coherence_while_deactivated() {
        let mut h = hub();
        h.deactivate();
        // Warm a line into the proxy, then hit it with an Inv.
        // (Direct warm via proxy is not exposed; drive a fill instead.)
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            // Re-activate briefly to get a line in.
            port.load_line(t(10_000), 1, 0x200);
        }
        h.clear_error(); // also reactivates
        h.tick(t(12_000));
        if h.pop_outgoing(t(12_000)).is_none() {
            h.tick(t(13_000));
        }
        h.handle_noc(
            t(14_000),
            1,
            CoherenceMsg::Data {
                line: LineAddr::containing(0x200),
                data: [1u8; 16],
                grant: Grant::E,
                acks: 0,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        for c in 15..20 {
            h.tick(t(c * 1000));
        }
        h.deactivate();
        // An invalidation must still be answered while deactivated.
        h.handle_noc(
            t(21_000),
            1,
            CoherenceMsg::FwdGetM {
                line: LineAddr::containing(0x200),
                requestor: 2,
                breakdown: LatencyBreakdown::new(),
            },
            Time::ZERO,
        );
        h.tick(t(22_000));
        let mut found = false;
        for c in 23..28 {
            while let Some((dst, m)) = h.pop_outgoing(t(c * 1000)) {
                if matches!(m, CoherenceMsg::DataOwner { .. }) {
                    assert_eq!(dst, 2);
                    found = true;
                }
            }
            h.tick(t(c * 1000));
        }
        assert!(found, "deactivated hub's proxy must answer coherence");
    }

    #[test]
    fn tlb_miss_raises_page_fault_and_stalls_in_order() {
        let mut h = hub();
        let mut sw = h.switches();
        sw.tlb_enabled = true;
        h.set_switches(sw);
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.load_line(t(10_000), 1, 0x5000)); // unmapped VA
            assert!(port.load_line(t(20_000), 2, 0x6000)); // behind the fault
        }
        h.tick(t(12_000));
        assert!(matches!(
            h.pop_irq(),
            Some(IrqCause::PageFault {
                vaddr: 0x5000,
                is_write: false,
                hub: 0
            })
        ));
        // Nothing issues while faulted.
        for c in 13..30 {
            h.tick(t(c * 1000));
        }
        assert_eq!(h.stats().requests, 0);
        // Kernel refills; the faulting access retries, then the next one.
        h.tlb_insert(Vpn(0x5), Ppn(0x9), PagePerms::rw());
        h.tlb_insert(Vpn(0x6), Ppn(0xA), PagePerms::rw());
        for c in 30..40 {
            h.tick(t(c * 1000));
        }
        assert_eq!(h.stats().requests, 2);
        // Both GetS messages target translated physical lines.
        let mut lines = Vec::new();
        while let Some((_, m)) = h.pop_outgoing(t(60_000)) {
            if let CoherenceMsg::GetS { line } = m {
                lines.push(line.0);
            }
        }
        assert_eq!(lines, vec![0x9000 >> 4, 0xA000 >> 4]);
    }

    #[test]
    fn write_to_readonly_page_is_permission_exception() {
        let mut h = hub();
        let mut sw = h.switches();
        sw.tlb_enabled = true;
        h.set_switches(sw);
        h.tlb_insert(Vpn(0x5), Ppn(0x9), PagePerms::ro());
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.store(t(10_000), 1, 0x5000, Width::B8, 1));
        }
        h.tick(t(12_000));
        assert_eq!(h.error_code(), error_codes::PERMISSION);
    }

    #[test]
    fn vivt_synonym_invalidates_old_alias() {
        let mut h = hub();
        let mut sw = h.switches();
        sw.tlb_enabled = true;
        sw.fwd_inv = true;
        h.set_switches(sw);
        // Two VAs mapping to the same PA.
        h.tlb_insert(Vpn(0x5), Ppn(0x9), PagePerms::rw());
        h.tlb_insert(Vpn(0x6), Ppn(0x9), PagePerms::rw());
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.load_line(t(10_000), 1, 0x5000));
        }
        h.tick(t(12_000));
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.load_line(t(20_000), 2, 0x6000)); // synonym
        }
        h.tick(t(22_000));
        // The fabric must receive an Inv for the OLD virtual line (0x5000).
        let (_, resp_fifo) = h.fabric_links();
        let mut saw_inv = false;
        while let Some(r) = resp_fifo.pop(t(80_000)) {
            if let FpgaRespKind::Inv { line } = r.kind {
                assert_eq!(line, LineAddr::containing(0x5000));
                saw_inv = true;
            }
        }
        assert!(saw_inv, "synonym must invalidate the previous alias");
    }

    #[test]
    fn kill_drops_fault_and_latches_error() {
        let mut h = hub();
        let mut sw = h.switches();
        sw.tlb_enabled = true;
        h.set_switches(sw);
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.load_line(t(10_000), 1, 0x7000));
        }
        h.tick(t(12_000));
        assert_eq!(h.stats().page_faults, 1);
        h.kill();
        assert_eq!(h.error_code(), error_codes::KILLED);
        assert!(!h.switches().active);
    }

    #[test]
    fn amo_blocked_by_feature_switch() {
        let mut h = hub();
        let mut sw = h.switches();
        sw.atomics = false;
        h.set_switches(sw);
        {
            let (req, resp) = h.fabric_links();
            let mut port = HubPort {
                req,
                resp,
                tracer: duet_trace::Tracer::disabled(),
            };
            assert!(port.amo(
                t(10_000),
                1,
                duet_mem::types::AmoOp::Add,
                0x100,
                Width::B8,
                1,
                0
            ));
        }
        h.tick(t(12_000));
        assert_eq!(h.error_code(), error_codes::ATOMICS_DISABLED);
    }
}
