#![warn(missing_docs)]
//! # duet-core
//!
//! **The paper's primary contribution: the Duet Adapter** (Sec. II), which
//! integrates embedded FPGAs as equal, cache-coherent peers of the
//! processors on the NoC:
//!
//! * [`memory_hub`] — Memory Hubs with the hardware **Proxy Cache**
//!   (hybrid coherence: full MESI on the NoC side, an ack-free
//!   Load/Store/LoadAck/StoreAck/Inv protocol on the eFPGA side), exception
//!   handler, feature switches, and per-hub TLB with VIVT reverse mapping,
//! * [`control_hub`] — the Control Hub: FPGA Manager (bitstream programming
//!   with integrity checks, programmable clock generator, timeout limits)
//!   and the Soft Register Interface with all four **Shadow Register**
//!   flavours (plain / FPGA-bound FIFO / CPU-bound FIFO / token FIFO) under
//!   strict I/O ordering,
//! * [`adapter`] — the assembled [`adapter::DuetAdapter`]: MMIO decode,
//!   adapter-wide exception propagation, clock-generator plumbing, and the
//!   [`duet_fpga::ports::FabricPorts`] construction for the accelerator,
//! * [`msg`] — the unified NoC payload (coherence + MMIO + interrupts).
//!
//! The defining property, tested throughout: **nothing in the fast domain
//! ever waits for the eFPGA.** The Proxy Cache answers coherence
//! immediately and forwards invalidations without acknowledgement; Shadow
//! Registers acknowledge processor writes from the fast domain.

pub mod adapter;
pub mod control_hub;
pub mod memory_hub;
pub mod msg;

pub use adapter::{AdapterConfig, DuetAdapter};
pub use control_hub::{ControlHub, ControlHubConfig, ProgStatus, RegMode, BOGUS, REG_COUNT};
pub use memory_hub::{HubStats, HubSwitches, MemoryHub, MemoryHubConfig};
pub use msg::{DuetMsg, IrqCause};
