//! The **Duet Adapter**: one Control Hub plus one or more Memory Hubs,
//! presented to the system as a set of tiles (Sec. II-A, Fig. 8).
//!
//! In Dolly terms: the adapter's Control Hub and first Memory Hub share the
//! *C-tile*; every further Memory Hub is an *M-tile*. The adapter owns all
//! dual-clock FIFOs, decodes the MMIO device region, propagates exceptions
//! ("deactivates all Memory Hubs in the same Duet Adapter"), applies
//! clock-generator changes, and builds the [`FabricPorts`] handed to the
//! soft accelerator on every eFPGA clock edge.

use duet_fpga::ports::{FabricPorts, HubPort, RegPort};
use duet_mem::priv_cache::HomeMap;
use duet_mem::tlb::{PagePerms, Ppn, Vpn};
use duet_mem::types::{MemOp, MemReq};
use duet_noc::NodeId;
use duet_sim::{Clock, Time};
use duet_trace::{TraceSession, Tracer};

use crate::control_hub::{mmio_map, ControlHub, ControlHubConfig};
use crate::memory_hub::{HubSwitches, MemoryHub, MemoryHubConfig};
use crate::msg::DuetMsg;

/// Adapter configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdapterConfig {
    /// Base physical address of this adapter's MMIO region.
    pub mmio_base: u64,
    /// Per-hub configuration (applied to every Memory Hub).
    pub hub: MemoryHubConfig,
    /// Control-hub configuration.
    pub ctrl: ControlHubConfig,
    /// Node that receives this adapter's interrupts.
    pub irq_target: NodeId,
}

/// The Duet Adapter. See module docs.
#[derive(Clone)]
pub struct DuetAdapter {
    cfg: AdapterConfig,
    /// The Control Hub (C-tile).
    pub control: ControlHub,
    /// Memory Hubs; `hubs[0]` shares the C-tile, the rest are M-tiles.
    pub hubs: Vec<MemoryHub>,
    fpga_clock: Clock,
    /// Trace handle cloned into the fabric-side [`HubPort`]s (fabric
    /// request/response events, attributed to the accelerator).
    fabric_tracer: Tracer,
}

impl DuetAdapter {
    /// Builds an adapter whose Control Hub sits on `ctrl_node` and whose
    /// Memory Hubs sit on `hub_nodes` (possibly empty for an M0 system).
    pub fn new(
        cfg: AdapterConfig,
        ctrl_node: NodeId,
        hub_nodes: &[NodeId],
        home: HomeMap,
        fpga_clock: Clock,
    ) -> Self {
        let control = ControlHub::new(cfg.ctrl, ctrl_node, fpga_clock);
        let hubs = hub_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| MemoryHub::new(cfg.hub, n, i, home.clone(), fpga_clock))
            .collect();
        DuetAdapter {
            cfg,
            control,
            hubs,
            fpga_clock,
            fabric_tracer: Tracer::disabled(),
        }
    }

    /// Registers the adapter's hubs with a trace session and installs the
    /// handles. Components register in canonical walk order: the Control
    /// Hub, then each Memory Hub (with its inner Proxy Cache sharing the
    /// hub's id).
    pub fn install_tracers(&mut self, session: &mut TraceSession) {
        self.control.set_tracer(session.tracer("adapter.control"));
        for (i, hub) in self.hubs.iter_mut().enumerate() {
            let t = session.tracer(&format!("adapter.hub{i}"));
            hub.set_tracer(t.clone());
            hub.set_proxy_tracer(t);
        }
    }

    /// Installs the accelerator-attributed handle cloned into the
    /// fabric-side ports (fabric request/response events).
    pub fn set_fabric_tracer(&mut self, fabric: Tracer) {
        self.fabric_tracer = fabric;
    }

    /// Resets every trace handle in the adapter (control hub, memory hubs,
    /// proxies, fabric ports) to disabled. Used when forking a system: the
    /// child must not share the parent's trace session.
    pub fn clear_tracers(&mut self) {
        self.control.set_tracer(Tracer::disabled());
        for hub in &mut self.hubs {
            hub.set_tracer(Tracer::disabled());
            hub.set_proxy_tracer(Tracer::disabled());
        }
        self.fabric_tracer = Tracer::disabled();
    }

    /// The adapter's configuration.
    pub fn config(&self) -> &AdapterConfig {
        &self.cfg
    }

    /// Current eFPGA clock.
    pub fn fpga_clock(&self) -> Clock {
        self.fpga_clock
    }

    /// Reprograms the eFPGA clock (the Control Hub's programmable clock
    /// generator), reclocking every dual-clock FIFO.
    pub fn set_fpga_clock(&mut self, clock: Clock) {
        self.fpga_clock = clock;
        self.control.set_fpga_clock(clock);
        for h in &mut self.hubs {
            h.set_fpga_clock(clock);
        }
    }

    /// Whether `addr` falls inside this adapter's MMIO region.
    pub fn owns_addr(&self, addr: u64) -> bool {
        addr >= self.cfg.mmio_base && addr < self.cfg.mmio_base + mmio_map::REGION_SIZE
    }

    /// Queues an incoming MMIO access addressed to this adapter.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the adapter's region.
    pub fn mmio_request(&mut self, now: Time, mut req: MemReq, reply_to: NodeId) {
        assert!(self.owns_addr(req.addr), "MMIO for a different device");
        let offset = req.addr - self.cfg.mmio_base;
        if offset >= mmio_map::HUB_BASE {
            self.hub_region_access(now, req, reply_to, offset);
            return;
        }
        req.addr = offset;
        self.control.mmio_request(req, reply_to);
    }

    /// Handles the per-hub register region (decoded by the adapter; all
    /// operations are single-cycle and respond via the Control Hub).
    fn hub_region_access(&mut self, now: Time, req: MemReq, reply_to: NodeId, offset: u64) {
        let hub_idx = ((offset - mmio_map::HUB_BASE) / mmio_map::HUB_STRIDE) as usize;
        let reg = (offset - mmio_map::HUB_BASE) % mmio_map::HUB_STRIDE;
        let is_read = matches!(req.op, MemOp::Load(_) | MemOp::LoadLine | MemOp::IFetch);
        let mut resp = 0u64;
        if hub_idx < self.hubs.len() {
            let hub = &mut self.hubs[hub_idx];
            match reg {
                mmio_map::HUB_TLB_VPN if !is_read => {
                    self.control.latch_tlb_vpn(hub_idx, req.wdata);
                }
                mmio_map::HUB_TLB_PPN if !is_read => {
                    let vpn = Vpn(self.control.latched_tlb_vpn(hub_idx));
                    let ppn = Ppn(req.wdata & 0x3FFF_FFFF_FFFF_FFFF);
                    let perms = PagePerms {
                        read: req.wdata & (1 << 62) != 0,
                        write: req.wdata & (1 << 63) != 0,
                    };
                    hub.tlb_insert(vpn, ppn, perms);
                }
                mmio_map::HUB_SWITCHES if !is_read => {
                    hub.set_switches(HubSwitches {
                        active: req.wdata & 1 != 0,
                        fwd_inv: req.wdata & 2 != 0,
                        tlb_enabled: req.wdata & 4 != 0,
                        atomics: req.wdata & 8 != 0,
                    });
                }
                mmio_map::HUB_SWITCHES if is_read => {
                    let s = hub.switches();
                    resp = u64::from(s.active)
                        | u64::from(s.fwd_inv) << 1
                        | u64::from(s.tlb_enabled) << 2
                        | u64::from(s.atomics) << 3;
                }
                mmio_map::HUB_ERROR if is_read => {
                    resp = hub.error_code();
                }
                mmio_map::HUB_KILL if !is_read => {
                    hub.kill();
                }
                mmio_map::HUB_CLEAR if !is_read => {
                    hub.clear_error();
                }
                _ => {
                    resp = crate::control_hub::BOGUS;
                }
            }
        } else {
            resp = crate::control_hub::BOGUS;
        }
        self.control.respond_now(now, req.id, resp, reply_to);
    }

    /// Builds the fabric-side port set handed to the soft accelerator on an
    /// eFPGA clock edge.
    pub fn fabric_ports(&mut self, now: Time) -> FabricPorts<'_> {
        let clock = self.fpga_clock;
        let hubs = self
            .hubs
            .iter_mut()
            .map(|h| {
                let (req, resp) = h.fabric_links();
                HubPort {
                    req,
                    resp,
                    tracer: self.fabric_tracer.clone(),
                }
            })
            .collect();
        let (down, up) = self.control.fabric_links();
        FabricPorts {
            now,
            clock,
            hubs,
            regs: RegPort { down, up },
        }
    }

    /// Advances the adapter by one fast-clock edge.
    pub fn tick(&mut self, now: Time) {
        self.tick_parts(now, true);
    }

    /// Advances the control hub, and the Memory Hubs only when `hubs` is
    /// true. The FPSoC-like baseline (Sec. V-D) moves the hubs into the
    /// slow clock domain: the system then calls `tick_parts(now, false)`
    /// on fast edges and [`tick_hub`](DuetAdapter::tick_hub) on slow edges.
    pub fn tick_parts(&mut self, now: Time, hubs: bool) {
        self.control.tick(now);
        // Apply a software-requested clock change.
        if let Some(mhz) = self.control.take_clock_change() {
            self.set_fpga_clock(Clock::from_mhz(mhz.max(1.0)));
        }
        // Hubs are held inactive while the bitstream streams in.
        if self.control.programming() {
            for h in &mut self.hubs {
                h.deactivate();
            }
        }
        if hubs {
            for h in &mut self.hubs {
                h.tick(now);
            }
        }
        // Exception propagation: any latched hub error deactivates every
        // hub in the adapter (Sec. II-B).
        if self.hubs.iter().any(|h| h.exception_pending()) {
            for h in &mut self.hubs {
                h.deactivate();
            }
        }
    }

    /// Ticks a single Memory Hub (slow-domain hub variants).
    pub fn tick_hub(&mut self, i: usize, now: Time) {
        self.hubs[i].tick(now);
    }

    /// Drains pending interrupts (to `cfg.irq_target`) and MMIO responses.
    pub fn pop_outgoing(&mut self, now: Time) -> Option<(NodeId, DuetMsg)> {
        for h in &mut self.hubs {
            if let Some(cause) = h.pop_irq() {
                return Some((
                    self.cfg.irq_target,
                    DuetMsg::Interrupt {
                        cause,
                        from: self.control.node(),
                    },
                ));
            }
        }
        if let Some(cause) = self.control.pop_irq() {
            return Some((
                self.cfg.irq_target,
                DuetMsg::Interrupt {
                    cause,
                    from: self.control.node(),
                },
            ));
        }
        self.control.pop_outgoing(now)
    }

    /// Whether every queue in the adapter is drained.
    pub fn is_idle(&self) -> bool {
        self.control.is_idle() && self.hubs.iter().all(|h| h.is_idle())
    }

    /// The earliest time the fast-edge adapter path
    /// ([`tick_parts`](DuetAdapter::tick_parts) +
    /// [`pop_outgoing`](DuetAdapter::pop_outgoing)) can next do observable
    /// work, or `None` when the adapter can only be woken externally.
    ///
    /// With `include_hubs` false (FPSoC-style slow-domain hubs), hub queues
    /// are excluded — they tick on slow edges — but queued hub interrupts
    /// still count: they are drained on the fast side, and a freshly raised
    /// hub exception must reach the next fast edge so sibling-hub
    /// deactivation happens on the same edge as with per-edge ticking.
    pub fn next_event_time(&self, now: Time, include_hubs: bool) -> Option<Time> {
        let mut earliest = self.control.next_event_time(now);
        for h in &self.hubs {
            if include_hubs {
                if let Some(t) = h.next_event_time(now) {
                    earliest = Some(earliest.map_or(t, |e: Time| e.min(t)));
                }
            } else if h.has_pending_irq() {
                return Some(now);
            }
        }
        earliest
    }

    /// Whether the fast-edge adapter path could do anything at `now`.
    pub fn is_active(&self, now: Time, include_hubs: bool) -> bool {
        self.next_event_time(now, include_hubs)
            .is_some_and(|t| t <= now)
    }

    /// Takes a pending accelerator-reset pulse.
    pub fn take_reset(&mut self) -> bool {
        self.control.take_reset()
    }

    /// Fences a non-progressing accelerator (graceful degradation, the
    /// paper's adapter guarantee): the control hub deactivates its
    /// soft-register interface and fails the head-of-line blocked MMIO
    /// access with `BOGUS`, and every Memory Hub drops its in-flight
    /// faulting request and deactivates. Proxy Caches stay fully coherent —
    /// outstanding MSHRs complete and future invalidations are honoured, so
    /// the rest of the mesh is unaffected. Returns the number of hubs
    /// fenced.
    pub fn fence_accelerator(&mut self, now: Time) -> usize {
        self.control.fence(now);
        for h in &mut self.hubs {
            h.kill();
        }
        self.hubs.len()
    }

    /// Aggregate fabric-progress signature (control-hub register traffic
    /// plus per-hub memory traffic). Strictly monotone while the
    /// accelerator interacts with the adapter; constant while it is hung.
    pub fn progress_signature(&self) -> u64 {
        let mut sig = self.control.progress_signature();
        for h in &self.hubs {
            sig = sig.wrapping_add(h.progress_signature());
        }
        sig
    }

    /// Freezes or thaws one hub's fabric CDC FIFO pair (fault injection).
    pub fn set_hub_fabric_frozen(&mut self, hub: usize, frozen: bool) {
        if let Some(h) = self.hubs.get_mut(hub) {
            h.set_fabric_frozen(frozen);
        }
    }

    /// Whether any input is pending on the fabric side of the adapter's
    /// CDC FIFOs: register traffic or a reset in the control hub's down
    /// path, or a memory response awaiting a fabric pop. While this holds,
    /// eFPGA edges must execute even for an accelerator reporting
    /// [`is_idle`](duet_fpga::ports::SoftAccelerator::is_idle) — the input
    /// may wake it.
    pub fn fabric_input_pending(&self) -> bool {
        self.control.fabric_input_pending() || self.hubs.iter().any(|h| h.fabric_resp_pending())
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{Clock, DuetAdapter};

    impl Snap for DuetAdapter {
        /// The eFPGA clock is state (software can reprogram it mid-run), so
        /// it is saved before the hubs; each CDC link additionally carries
        /// its own clocks inside its own section of state. Tracer handles
        /// are re-installed by the owning system.
        fn save(&self, w: &mut SnapWriter) {
            self.fpga_clock.pack(w);
            self.control.save(w);
            w.len64(self.hubs.len());
            for h in &self.hubs {
                h.save(w);
            }
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.fpga_clock = Clock::unpack(r)?;
            self.control.load(r)?;
            let n = r.len64()?;
            if n != self.hubs.len() {
                return Err(SnapError::Corrupt("adapter hub count mismatch"));
            }
            for h in &mut self.hubs {
                h.load(r)?;
            }
            Ok(())
        }
    }
}

/// Re-export for users of the IRQ type.
pub use crate::msg::IrqCause as AdapterIrq;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::IrqCause;
    use duet_fpga::ports::{FpgaRespKind, RegDown};
    use duet_mem::types::Width;

    fn adapter() -> DuetAdapter {
        let fast = Clock::ghz1();
        let cfg = AdapterConfig {
            mmio_base: 0x4000_0000,
            hub: MemoryHubConfig::dolly(fast),
            ctrl: ControlHubConfig::dolly(fast),
            irq_target: 0,
        };
        DuetAdapter::new(
            cfg,
            2,
            &[2, 3],
            HomeMap::new(vec![0, 1, 2, 3]),
            Clock::from_mhz(100.0),
        )
    }

    fn t(c: u64) -> Time {
        Time::from_ps(c * 1000)
    }

    fn mmio_until_resp(a: &mut DuetAdapter, req: MemReq, start: u64) -> (u64, u64) {
        a.mmio_request(t(start), req, 0);
        for c in start..start + 300 {
            a.tick(t(c));
            if let Some((_, DuetMsg::MmioResp { resp })) = a.pop_outgoing(t(c)) {
                return (c, resp.rdata);
            }
        }
        panic!("no adapter MMIO response");
    }

    #[test]
    fn address_decode_routes_hub_and_control() {
        let mut a = adapter();
        assert!(a.owns_addr(0x4000_0000));
        assert!(a.owns_addr(0x4000_0FFF));
        assert!(!a.owns_addr(0x4000_1000));
        // Hub 1 switches write + readback.
        let sw_addr =
            0x4000_0000 + mmio_map::HUB_BASE + mmio_map::HUB_STRIDE + mmio_map::HUB_SWITCHES;
        let (_, _) = mmio_until_resp(&mut a, MemReq::store(1, sw_addr, Width::B8, 0b1111), 1);
        let (_, v) = mmio_until_resp(&mut a, MemReq::load(2, sw_addr, Width::B8), 50);
        assert_eq!(v, 0b1111);
        assert!(a.hubs[1].switches().tlb_enabled);
    }

    #[test]
    fn tlb_refill_via_mmio() {
        let mut a = adapter();
        let base = 0x4000_0000 + mmio_map::HUB_BASE;
        mmio_until_resp(
            &mut a,
            MemReq::store(1, base + mmio_map::HUB_TLB_VPN, Width::B8, 0x5),
            1,
        );
        let ppn_perms = 0x9u64 | (1 << 62) | (1 << 63);
        mmio_until_resp(
            &mut a,
            MemReq::store(2, base + mmio_map::HUB_TLB_PPN, Width::B8, ppn_perms),
            40,
        );
        // The hub's TLB now translates 0x5xxx -> 0x9xxx: verified via the
        // hub directly.
        let mut sw = a.hubs[0].switches();
        sw.tlb_enabled = true;
        a.hubs[0].set_switches(sw);
        {
            let mut ports = a.fabric_ports(t(100));
            assert!(ports.hubs[0].load_line(t(100), 1, 0x5000));
        }
        for c in 101..130 {
            a.tick(t(c));
        }
        let reqs: Vec<_> = std::iter::from_fn(|| a.hubs[0].pop_outgoing(t(200))).collect();
        assert!(reqs
            .iter()
            .any(|(_, m)| matches!(m, duet_mem::msg::CoherenceMsg::GetS { line } if line.0 == 0x9000 >> 4)));
    }

    #[test]
    fn exception_in_one_hub_deactivates_all() {
        let mut a = adapter();
        {
            let mut ports = a.fabric_ports(t(10));
            // Misaligned store into hub 0 trips its exception handler.
            assert!(ports.hubs[0].store(t(10), 1, 0x101, Width::B8, 1));
        }
        for c in 11..20 {
            a.tick(t(c));
        }
        assert!(a.hubs[0].exception_pending());
        assert!(!a.hubs[1].switches().active, "sibling hub deactivated");
        // The interrupt reaches the IRQ target.
        let mut saw_irq = false;
        for c in 20..25 {
            if let Some((dst, DuetMsg::Interrupt { cause, .. })) = a.pop_outgoing(t(c)) {
                assert_eq!(dst, 0);
                assert!(matches!(cause, IrqCause::Exception { .. }));
                saw_irq = true;
                break;
            }
        }
        assert!(saw_irq);
    }

    #[test]
    fn clock_change_reclocks_fifos() {
        let mut a = adapter();
        let addr = 0x4000_0000 + mmio_map::FPGA_CLOCK_MHZ;
        mmio_until_resp(&mut a, MemReq::store(1, addr, Width::B8, 500), 1);
        for c in 50..55 {
            a.tick(t(c));
        }
        assert!((a.fpga_clock().freq_mhz() - 500.0).abs() < 1.0);
        let (_, v) = mmio_until_resp(&mut a, MemReq::load(2, addr, Width::B8), 60);
        assert_eq!(v, 500);
    }

    #[test]
    fn fabric_ports_expose_all_hubs_and_regs() {
        let mut a = adapter();
        a.control
            .set_reg_mode(0, crate::control_hub::RegMode::CpuBound);
        let now = t(100);
        {
            let mut ports = a.fabric_ports(now);
            assert_eq!(ports.hubs.len(), 2);
            assert!(ports.regs.push(now, 0, 55));
        }
        for c in 101..200 {
            a.tick(t(c));
        }
        // The push should now satisfy a CPU-bound read instantly.
        let (_, v) = mmio_until_resp(&mut a, MemReq::load(9, 0x4000_0000, Width::B8), 200);
        assert_eq!(v, 55);
    }

    #[test]
    fn invalidation_forwarding_reaches_fabric_port() {
        let mut a = adapter();
        let mut sw = a.hubs[0].switches();
        sw.fwd_inv = true;
        a.hubs[0].set_switches(sw);
        // Fill a line through hub 0's proxy.
        {
            let mut ports = a.fabric_ports(t(10));
            assert!(ports.hubs[0].load_line(t(10), 1, 0x200));
        }
        for c in 11..20 {
            a.tick(t(c));
        }
        let (dst, _gets) = a.hubs[0].pop_outgoing(t(20)).expect("GetS sent");
        a.hubs[0].handle_noc(
            t(21),
            dst,
            duet_mem::msg::CoherenceMsg::Data {
                line: duet_mem::types::LineAddr::containing(0x200),
                data: [1; 16],
                grant: duet_mem::msg::Grant::E,
                acks: 0,
                breakdown: Default::default(),
            },
            Time::ZERO,
        );
        for c in 22..30 {
            a.tick(t(c));
        }
        // Now invalidate it via coherence.
        a.hubs[0].handle_noc(
            t(30),
            dst,
            duet_mem::msg::CoherenceMsg::FwdGetM {
                line: duet_mem::types::LineAddr::containing(0x200),
                requestor: 1,
                breakdown: Default::default(),
            },
            Time::ZERO,
        );
        for c in 31..40 {
            a.tick(t(c));
        }
        // The fabric receives LoadAck then Inv, in order.
        let mut kinds = Vec::new();
        {
            let mut ports = a.fabric_ports(t(1_000_000));
            while let Some(r) = ports.hubs[0].pop_resp(t(1_000_000)) {
                kinds.push(match r.kind {
                    FpgaRespKind::LoadAck { .. } => "fill",
                    FpgaRespKind::StoreAck { .. } => "ack",
                    FpgaRespKind::Inv { .. } => "inv",
                });
            }
        }
        assert_eq!(kinds, vec!["fill", "inv"], "in-order delivery");
    }

    #[test]
    fn shadow_write_faster_than_normal_write() {
        // The headline of Fig. 6: shadow-register writes ack from the fast
        // domain; normal writes round-trip into the slow fabric.
        let mut a = adapter();
        a.control
            .set_reg_mode(0, crate::control_hub::RegMode::FpgaBound);
        a.control
            .set_reg_mode(1, crate::control_hub::RegMode::Normal);
        let base = 0x4000_0000;
        let (shadow_done, _) = mmio_until_resp(&mut a, MemReq::store(1, base, Width::B8, 1), 1);
        // Normal write: we must emulate the fabric answering.
        a.mmio_request(
            t(shadow_done + 1),
            MemReq::store(2, base + 8, Width::B8, 1),
            0,
        );
        let mut normal_done = 0;
        'outer: for c in shadow_done + 1..shadow_done + 3000 {
            a.tick(t(c));
            // Fabric echo: ack any WriteReq on the next slow edge.
            let now = t(c);
            let mut acks = Vec::new();
            {
                let mut ports = a.fabric_ports(now);
                while let Some(ev) = ports.regs.pop(now) {
                    if let RegDown::WriteReq { txn, .. } = ev {
                        acks.push(txn);
                    }
                }
                for txn in acks {
                    ports.regs.write_ack(now, txn);
                }
            }
            if let Some((_, DuetMsg::MmioResp { resp })) = a.pop_outgoing(t(c)) {
                assert_eq!(resp.id, 2);
                normal_done = c;
                break 'outer;
            }
        }
        assert!(normal_done > 0, "normal write never completed");
        let shadow_latency = shadow_done - 1;
        let normal_latency = normal_done - shadow_done - 1;
        assert!(
            normal_latency > 2 * shadow_latency,
            "normal {normal_latency} vs shadow {shadow_latency}"
        );
    }
}
