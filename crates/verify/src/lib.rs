#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # duet-verify
//!
//! Fault injection, runtime protocol verification, and run-error reporting
//! for the Duet reproduction.
//!
//! The paper's central safety claim (PAPER.md §3–4) is that the Duet adapters
//! keep the host coherence protocol correct *regardless of what the
//! eFPGA-mapped accelerator does*. This crate provides the machinery to test
//! that claim:
//!
//! * [`FaultPlan`] — a deterministic, seeded schedule of injected faults
//!   (hung accelerators, frozen CDC FIFOs, dropped/delayed/reordered NoC
//!   traffic, stalled L3 response ports). Faults are pure functions of
//!   simulated time so runs replay bit-identically, and they are applied at
//!   the `Link<T>`/`Component` layer so no protocol code is forked.
//! * [`MesiChecker`] / [`NocOrderChecker`] — runtime observers that validate
//!   single-writer/multiple-reader exclusivity and NoC point-to-point
//!   ordering as messages are delivered. Observers never mutate simulation
//!   state, so enabling them cannot change a fingerprint.
//! * [`RunError`] / [`StallSnapshot`] — structured run outcomes replacing
//!   panic-based deadlines: a deadlock or protocol violation carries a
//!   per-component stall snapshot naming the components that wedged.
//!
//! The system-level wiring (where faults are actually applied and where the
//! checkers observe deliveries) lives in `duet-system`; this crate only
//! depends on the protocol/message layers so it can be unit-tested with
//! synthetic message streams.

pub mod fault;
pub mod mesi;
pub mod noc_order;
pub mod report;

pub use fault::{DegradeConfig, FaultIndex, FaultKind, FaultPlan, FaultSpec, PlanParseError};
pub use mesi::MesiChecker;
pub use noc_order::NocOrderChecker;
pub use report::{ComponentStall, RunError, StallSnapshot, Violation};
