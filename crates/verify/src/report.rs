//! Structured run outcomes: protocol violations, stall snapshots, and the
//! [`RunError`] returned by the system run loop in place of a panic.

use std::fmt;

use duet_noc::NodeId;

/// A runtime invariant violation detected by one of the checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An exclusive (E/M) grant was delivered to a node while another node
    /// still held unrelieved write permission for the same line.
    MesiDoubleOwner {
        /// Line address.
        line: u64,
        /// Node that still held write permission.
        holder: NodeId,
        /// Node the conflicting grant was delivered to.
        granted_to: NodeId,
        /// Delivery time (picoseconds).
        at_ps: u64,
    },
    /// A shared grant was delivered while another node still held unrelieved
    /// write permission for the same line.
    MesiReaderWhileWriter {
        /// Line address.
        line: u64,
        /// Node that still held write permission.
        writer: NodeId,
        /// Node the shared grant was delivered to.
        reader: NodeId,
        /// Delivery time (picoseconds).
        at_ps: u64,
    },
    /// A structural sweep found the directory and the caches disagreeing
    /// about a line (owner not holding E/M, a holder missing from the
    /// sharers list, or two caches holding E/M at once).
    MesiDirectoryMismatch {
        /// Line address.
        line: u64,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// Two messages on the same (source, destination, virtual network) flow
    /// were delivered out of their injection order.
    NocOrderInversion {
        /// Flow source node.
        src: NodeId,
        /// Flow destination node.
        dst: NodeId,
        /// Virtual network index.
        vnet: usize,
        /// Trace id of the previously delivered (newer) message.
        prev_id: u64,
        /// Trace id of the out-of-order (older) message.
        id: u64,
        /// Delivery time (picoseconds).
        at_ps: u64,
    },
    /// The adapter/MMIO plumbing broke an internal invariant (e.g. a
    /// response arrived for an unknown transaction id).
    AdapterInvariant {
        /// Human-readable description.
        detail: String,
        /// Detection time (picoseconds).
        at_ps: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MesiDoubleOwner {
                line,
                holder,
                granted_to,
                at_ps,
            } => write!(
                f,
                "MESI single-writer violated on line {line:#x} at {at_ps}ps: \
                 exclusive grant delivered to n{granted_to} while n{holder} still owns it"
            ),
            Violation::MesiReaderWhileWriter {
                line,
                writer,
                reader,
                at_ps,
            } => write!(
                f,
                "MESI writer exclusivity violated on line {line:#x} at {at_ps}ps: \
                 shared grant delivered to n{reader} while n{writer} still owns it"
            ),
            Violation::MesiDirectoryMismatch { line, detail } => {
                write!(f, "directory/cache mismatch on line {line:#x}: {detail}")
            }
            Violation::NocOrderInversion {
                src,
                dst,
                vnet,
                prev_id,
                id,
                at_ps,
            } => write!(
                f,
                "NoC point-to-point order violated on n{src}->n{dst} vnet{vnet} at {at_ps}ps: \
                 message #{id} delivered after #{prev_id}"
            ),
            Violation::AdapterInvariant { detail, at_ps } => {
                write!(f, "adapter invariant violated at {at_ps}ps: {detail}")
            }
        }
    }
}

/// One component's state at the moment a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentStall {
    /// Component name (matches the `duet-trace` track name).
    pub name: String,
    /// Whether the component reported itself active.
    pub active: bool,
    /// The component's next event time in picoseconds, if it had one.
    pub next_event_ps: Option<u64>,
    /// Total entries queued across the component's links.
    pub queued: usize,
}

/// A per-component snapshot of where work was stuck when a run failed,
/// carried inside [`RunError`] so deadlock reports name the culprits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Simulated time of the failure (picoseconds).
    pub at_ps: u64,
    /// Components that were still active or had queued work. Quiet
    /// components are omitted to keep reports readable.
    pub components: Vec<ComponentStall>,
    /// Free-form diagnostic notes (accelerator status, pending injections,
    /// recent trace events, ...), most significant first.
    pub notes: Vec<String>,
}

impl StallSnapshot {
    /// Renders the snapshot as an indented multi-line report.
    pub fn report(&self) -> String {
        let mut out = format!("stall snapshot at {}ps:\n", self.at_ps);
        for n in &self.notes {
            out.push_str(&format!("  ! {n}\n"));
        }
        if self.components.is_empty() {
            out.push_str("  (no component reported pending work)\n");
        }
        for c in &self.components {
            let next = match c.next_event_ps {
                Some(t) => format!("next_event={t}ps"),
                None => "no next event".to_string(),
            };
            out.push_str(&format!(
                "  {:<16} {} queued={} {}\n",
                c.name,
                if c.active { "ACTIVE" } else { "idle  " },
                c.queued,
                next
            ));
        }
        out
    }
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

/// Why a run loop stopped without reaching its goal. Replaces the previous
/// panic-based deadline: callers decide whether to recover, report, or abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The deadline passed without the halt/quiesce condition being met.
    Deadlock {
        /// The deadline that expired (picoseconds).
        deadline_ps: u64,
        /// Where work was stuck.
        snapshot: StallSnapshot,
    },
    /// A runtime checker detected a protocol violation.
    ProtocolViolation {
        /// The first violation observed.
        violation: Violation,
        /// System state at detection time.
        snapshot: StallSnapshot,
    },
}

impl RunError {
    /// The stall snapshot carried by either variant.
    pub fn snapshot(&self) -> &StallSnapshot {
        match self {
            RunError::Deadlock { snapshot, .. } => snapshot,
            RunError::ProtocolViolation { snapshot, .. } => snapshot,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock {
                deadline_ps,
                snapshot,
            } => {
                write!(
                    f,
                    "no progress toward halt before deadline {deadline_ps}ps\n{}",
                    snapshot.report()
                )
            }
            RunError::ProtocolViolation {
                violation,
                snapshot,
            } => {
                write!(f, "{violation}\n{}", snapshot.report())
            }
        }
    }
}

impl std::error::Error for RunError {}

mod snap_impls {
    use duet_sim::{Pack, SnapError, SnapReader, SnapWriter};

    use super::Violation;

    impl Pack for Violation {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                Violation::MesiDoubleOwner {
                    line,
                    holder,
                    granted_to,
                    at_ps,
                } => {
                    w.u8(0);
                    line.pack(w);
                    holder.pack(w);
                    granted_to.pack(w);
                    at_ps.pack(w);
                }
                Violation::MesiReaderWhileWriter {
                    line,
                    writer,
                    reader,
                    at_ps,
                } => {
                    w.u8(1);
                    line.pack(w);
                    writer.pack(w);
                    reader.pack(w);
                    at_ps.pack(w);
                }
                Violation::MesiDirectoryMismatch { line, detail } => {
                    w.u8(2);
                    line.pack(w);
                    detail.pack(w);
                }
                Violation::NocOrderInversion {
                    src,
                    dst,
                    vnet,
                    prev_id,
                    id,
                    at_ps,
                } => {
                    w.u8(3);
                    src.pack(w);
                    dst.pack(w);
                    vnet.pack(w);
                    prev_id.pack(w);
                    id.pack(w);
                    at_ps.pack(w);
                }
                Violation::AdapterInvariant { detail, at_ps } => {
                    w.u8(4);
                    detail.pack(w);
                    at_ps.pack(w);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => Violation::MesiDoubleOwner {
                    line: Pack::unpack(r)?,
                    holder: Pack::unpack(r)?,
                    granted_to: Pack::unpack(r)?,
                    at_ps: Pack::unpack(r)?,
                },
                1 => Violation::MesiReaderWhileWriter {
                    line: Pack::unpack(r)?,
                    writer: Pack::unpack(r)?,
                    reader: Pack::unpack(r)?,
                    at_ps: Pack::unpack(r)?,
                },
                2 => Violation::MesiDirectoryMismatch {
                    line: Pack::unpack(r)?,
                    detail: Pack::unpack(r)?,
                },
                3 => Violation::NocOrderInversion {
                    src: Pack::unpack(r)?,
                    dst: Pack::unpack(r)?,
                    vnet: Pack::unpack(r)?,
                    prev_id: Pack::unpack(r)?,
                    id: Pack::unpack(r)?,
                    at_ps: Pack::unpack(r)?,
                },
                4 => Violation::AdapterInvariant {
                    detail: Pack::unpack(r)?,
                    at_ps: Pack::unpack(r)?,
                },
                _ => return Err(SnapError::Corrupt("invalid Violation discriminant")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_report_names_active_components() {
        let err = RunError::Deadlock {
            deadline_ps: 1_000,
            snapshot: StallSnapshot {
                at_ps: 900,
                components: vec![ComponentStall {
                    name: "accel".to_string(),
                    active: true,
                    next_event_ps: Some(900),
                    queued: 2,
                }],
                notes: vec!["accelerator busy and unfenced".to_string()],
            },
        };
        let text = err.to_string();
        assert!(text.contains("deadline 1000ps"));
        assert!(text.contains("accel"));
        assert!(text.contains("ACTIVE"));
        assert!(text.contains("busy and unfenced"));
    }

    #[test]
    fn violation_display_is_specific() {
        let v = Violation::NocOrderInversion {
            src: 1,
            dst: 2,
            vnet: 0,
            prev_id: 9,
            id: 4,
            at_ps: 77,
        };
        let s = v.to_string();
        assert!(s.contains("n1->n2"));
        assert!(s.contains("#4"));
        assert!(s.contains("#9"));
    }
}
