//! NoC point-to-point ordering checker.
//!
//! The mesh guarantees that two messages injected at the same source toward
//! the same destination on the same virtual network are delivered in
//! injection order (XY routing over FIFO channels). Directory protocols
//! lean on this guarantee implicitly, so a fault that breaks it — a
//! reordering link, a retransmit bug — must be caught even when the
//! protocol happens to survive. The checker keys on the monotone per-mesh
//! `trace_id` stamped at injection: per `(src, dst, vnet)` flow, delivered
//! ids must be strictly increasing (gaps are fine — drops and filtering are
//! not ordering violations).

use std::collections::BTreeMap;

use duet_noc::NodeId;
use duet_sim::Time;

use crate::report::Violation;

/// Observes message ejections and checks per-flow delivery order.
#[derive(Clone, Debug, Default)]
pub struct NocOrderChecker {
    last: BTreeMap<(NodeId, NodeId, usize), u64>,
    checked: u64,
    violations: u64,
    first: Option<Violation>,
}

impl NocOrderChecker {
    /// A fresh checker with no history.
    pub fn new() -> Self {
        NocOrderChecker::default()
    }

    /// Number of ejections observed.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of inversions detected (only the first is retained).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first inversion detected, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Observes one message being ejected (delivered) at `dst`. `trace_id`
    /// is the mesh-assigned injection sequence number. Returns the
    /// inversion this ejection caused, if any (also recorded internally).
    pub fn on_eject(
        &mut self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        vnet: usize,
        trace_id: u64,
    ) -> Option<Violation> {
        self.checked += 1;
        let key = (src, dst, vnet);
        match self.last.get_mut(&key) {
            Some(prev) if *prev >= trace_id => {
                self.violations += 1;
                let v = Violation::NocOrderInversion {
                    src,
                    dst,
                    vnet,
                    prev_id: *prev,
                    id: trace_id,
                    at_ps: now.as_ps(),
                };
                if self.first.is_none() {
                    self.first = Some(v.clone());
                }
                Some(v)
            }
            Some(prev) => {
                *prev = trace_id;
                None
            }
            None => {
                self.last.insert(key, trace_id);
                None
            }
        }
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::NocOrderChecker;

    impl Snap for NocOrderChecker {
        fn save(&self, w: &mut SnapWriter) {
            self.last.pack(w);
            self.checked.pack(w);
            self.violations.pack(w);
            self.first.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.last = Pack::unpack(r)?;
            self.checked = Pack::unpack(r)?;
            self.violations = Pack::unpack(r)?;
            self.first = Pack::unpack(r)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_flows_pass_even_with_gaps() {
        let mut c = NocOrderChecker::new();
        let t = Time::from_ns(1);
        c.on_eject(t, 0, 1, 0, 10);
        c.on_eject(t, 0, 1, 0, 12); // gap: a drop, not an inversion
        c.on_eject(t, 0, 1, 1, 11); // different vnet: independent flow
        c.on_eject(t, 1, 0, 0, 5); // different direction: independent flow
        assert_eq!(c.violations(), 0);
        assert_eq!(c.checked(), 4);
    }

    #[test]
    fn inversion_on_one_flow_is_flagged() {
        let mut c = NocOrderChecker::new();
        let t = Time::from_ns(2);
        c.on_eject(t, 3, 4, 2, 100);
        c.on_eject(t, 3, 4, 2, 90);
        assert_eq!(c.violations(), 1);
        match c.first_violation() {
            Some(Violation::NocOrderInversion {
                src,
                dst,
                prev_id,
                id,
                ..
            }) => {
                assert_eq!((*src, *dst), (3, 4));
                assert_eq!(*prev_id, 100);
                assert_eq!(*id, 90);
            }
            other => panic!("unexpected violation: {other:?}"),
        }
    }

    #[test]
    fn duplicate_delivery_counts_as_inversion() {
        let mut c = NocOrderChecker::new();
        let t = Time::from_ns(3);
        c.on_eject(t, 0, 2, 0, 7);
        c.on_eject(t, 0, 2, 0, 7);
        assert_eq!(c.violations(), 1);
    }
}
