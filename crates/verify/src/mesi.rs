//! Runtime MESI invariant checker.
//!
//! The checker is a *shadow automaton* over observed message deliveries: it
//! never reads protocol state and never mutates anything, so enabling it
//! cannot change a run's fingerprint. It tracks, per line, which node holds
//! unrelieved write permission, and flags:
//!
//! * an exclusive (E/M) grant delivered while another node's write
//!   permission has not been relieved ([`Violation::MesiDoubleOwner`]);
//! * a shared grant delivered under the same condition
//!   ([`Violation::MesiReaderWhileWriter`]).
//!
//! "Relieved" means the checker observed the event that, in this protocol,
//! necessarily precedes a conflicting grant: a `FwdGetS`/`FwdGetM`/`Inv`
//! delivered *to* the holder, or the holder's own `PutM`/`WBData` delivered
//! at the home. Because the blocking directory serializes transactions per
//! line and forwarded data (`DataOwner`) is only sent after the old owner
//! processed its forward, a correct run never trips either check — including
//! with stale sharer supersets from silent S evictions, which the checker
//! deliberately does not model as readers-block-writers.

use std::collections::BTreeMap;

use duet_mem::{CoherenceMsg, Grant};
use duet_noc::NodeId;
use duet_sim::Time;

use crate::report::Violation;

#[derive(Clone, Debug, Default)]
struct ShadowLine {
    /// Node holding unrelieved write permission, if any.
    writer: Option<NodeId>,
    /// Bitmask of nodes granted shared copies since the last full clear
    /// (diagnostic only — silent evictions make it a superset).
    readers: u64,
}

/// Observes coherence message deliveries and checks writer exclusivity.
#[derive(Clone, Debug, Default)]
pub struct MesiChecker {
    lines: BTreeMap<u64, ShadowLine>,
    checked: u64,
    violations: u64,
    first: Option<Violation>,
}

impl MesiChecker {
    /// A fresh checker with no history.
    pub fn new() -> Self {
        MesiChecker::default()
    }

    /// Number of deliveries observed.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of violations detected (only the first is retained).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first violation detected, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Observes one coherence message being *delivered* to `dst` (for
    /// directory-bound messages `dst` is the home shard's node). `src` is
    /// the sending node from the NoC envelope. Returns the violation this
    /// delivery caused, if any (also recorded internally).
    pub fn on_delivery(
        &mut self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        msg: &CoherenceMsg,
    ) -> Option<Violation> {
        self.checked += 1;
        let line = msg.line().0;
        let entry = self.lines.entry(line).or_default();
        let mut violation = None;
        match msg {
            CoherenceMsg::Data { grant, .. } | CoherenceMsg::DataOwner { grant, .. } => match grant
            {
                Grant::S => {
                    if let Some(w) = entry.writer {
                        if w != dst {
                            violation = Some(Violation::MesiReaderWhileWriter {
                                line,
                                writer: w,
                                reader: dst,
                                at_ps: now.as_ps(),
                            });
                        }
                    }
                    entry.readers |= reader_bit(dst);
                }
                Grant::E | Grant::M => {
                    if let Some(w) = entry.writer {
                        if w != dst {
                            violation = Some(Violation::MesiDoubleOwner {
                                line,
                                holder: w,
                                granted_to: dst,
                                at_ps: now.as_ps(),
                            });
                        }
                    }
                    entry.writer = Some(dst);
                    entry.readers &= !reader_bit(dst);
                }
            },
            // Relief events: the holder has been told to give the line up,
            // or its write-back reached the home.
            CoherenceMsg::FwdGetS { .. } => {
                if entry.writer == Some(dst) {
                    entry.writer = None;
                    // Downgrade: the old owner keeps a shared copy.
                    entry.readers |= reader_bit(dst);
                }
            }
            CoherenceMsg::FwdGetM { .. } => {
                if entry.writer == Some(dst) {
                    entry.writer = None;
                }
                entry.readers &= !reader_bit(dst);
            }
            CoherenceMsg::Inv { .. } => {
                entry.readers &= !reader_bit(dst);
                if entry.writer == Some(dst) {
                    entry.writer = None;
                }
            }
            CoherenceMsg::PutM { .. } | CoherenceMsg::WBData { .. } => {
                if entry.writer == Some(src) {
                    entry.writer = None;
                }
            }
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetM { .. }
            | CoherenceMsg::PutAck { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::Unblock { .. } => {}
        }
        if entry.writer.is_none() && entry.readers == 0 {
            self.lines.remove(&line);
        }
        if let Some(v) = &violation {
            self.violations += 1;
            if self.first.is_none() {
                self.first = Some(v.clone());
            }
        }
        violation
    }
}

mod snap_impls {
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{MesiChecker, ShadowLine};

    impl Pack for ShadowLine {
        fn pack(&self, w: &mut SnapWriter) {
            self.writer.pack(w);
            self.readers.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(ShadowLine {
                writer: Pack::unpack(r)?,
                readers: Pack::unpack(r)?,
            })
        }
    }

    impl Snap for MesiChecker {
        fn save(&self, w: &mut SnapWriter) {
            self.lines.pack(w);
            self.checked.pack(w);
            self.violations.pack(w);
            self.first.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.lines = Pack::unpack(r)?;
            self.checked = Pack::unpack(r)?;
            self.violations = Pack::unpack(r)?;
            self.first = Pack::unpack(r)?;
            Ok(())
        }
    }
}

/// Nodes above 63 fall out of the diagnostic reader mask; writer tracking
/// (the checked invariant) is exact for any node count.
fn reader_bit(node: NodeId) -> u64 {
    if node < 64 {
        1u64 << node
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use duet_mem::LineAddr;
    use duet_sim::LatencyBreakdown;

    use super::*;

    fn data(line: u64, grant: Grant) -> CoherenceMsg {
        CoherenceMsg::Data {
            line: LineAddr(line),
            data: [0; 16],
            grant,
            acks: 0,
            breakdown: LatencyBreakdown::new(),
        }
    }

    fn data_owner(line: u64, grant: Grant) -> CoherenceMsg {
        CoherenceMsg::DataOwner {
            line: LineAddr(line),
            data: [0; 16],
            grant,
            breakdown: LatencyBreakdown::new(),
        }
    }

    fn fwd_getm(line: u64, requestor: NodeId) -> CoherenceMsg {
        CoherenceMsg::FwdGetM {
            line: LineAddr(line),
            requestor,
            breakdown: LatencyBreakdown::new(),
        }
    }

    fn fwd_gets(line: u64, requestor: NodeId) -> CoherenceMsg {
        CoherenceMsg::FwdGetS {
            line: LineAddr(line),
            requestor,
            breakdown: LatencyBreakdown::new(),
        }
    }

    const HOME: NodeId = 9;

    #[test]
    fn clean_ownership_transfer_passes() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(1);
        // A gets M, is relieved by a forward, B gets the line from A.
        c.on_delivery(t, HOME, 1, &data(0x40, Grant::M));
        c.on_delivery(t, HOME, 1, &fwd_getm(0x40, 2));
        c.on_delivery(t, 1, 2, &data_owner(0x40, Grant::M));
        assert_eq!(c.violations(), 0);
        assert_eq!(c.checked(), 3);
    }

    #[test]
    fn downgrade_then_shared_grant_passes() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(1);
        c.on_delivery(t, HOME, 1, &data(0x80, Grant::E));
        c.on_delivery(t, HOME, 1, &fwd_gets(0x80, 2));
        c.on_delivery(t, 1, 2, &data_owner(0x80, Grant::S));
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn writeback_relieves_the_owner() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(1);
        c.on_delivery(t, HOME, 1, &data(0xc0, Grant::M));
        c.on_delivery(
            t,
            1,
            HOME,
            &CoherenceMsg::PutM {
                line: LineAddr(0xc0),
                data: [0; 16],
            },
        );
        c.on_delivery(t, HOME, 2, &data(0xc0, Grant::M));
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn double_exclusive_grant_is_flagged() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(2);
        c.on_delivery(t, HOME, 1, &data(0x40, Grant::M));
        c.on_delivery(t, HOME, 2, &data(0x40, Grant::M));
        assert_eq!(c.violations(), 1);
        match c.first_violation() {
            Some(Violation::MesiDoubleOwner {
                holder, granted_to, ..
            }) => {
                assert_eq!(*holder, 1);
                assert_eq!(*granted_to, 2);
            }
            other => panic!("unexpected violation: {other:?}"),
        }
    }

    #[test]
    fn shared_grant_under_live_writer_is_flagged() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(2);
        c.on_delivery(t, HOME, 1, &data(0x40, Grant::E));
        c.on_delivery(t, HOME, 3, &data(0x40, Grant::S));
        assert_eq!(c.violations(), 1);
        assert!(matches!(
            c.first_violation(),
            Some(Violation::MesiReaderWhileWriter {
                writer: 1,
                reader: 3,
                ..
            })
        ));
    }

    #[test]
    fn only_first_violation_is_retained_but_all_are_counted() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(3);
        c.on_delivery(t, HOME, 1, &data(0x40, Grant::M));
        c.on_delivery(t, HOME, 2, &data(0x40, Grant::M));
        c.on_delivery(t, HOME, 3, &data(0x40, Grant::M));
        assert_eq!(c.violations(), 2);
        assert!(matches!(
            c.first_violation(),
            Some(Violation::MesiDoubleOwner { granted_to: 2, .. })
        ));
    }

    #[test]
    fn stale_sharers_do_not_block_a_new_writer() {
        let mut c = MesiChecker::new();
        let t = Time::from_ns(4);
        // Two sharers; one silently evicts (no message). A write grant with
        // invalidations still in flight must not be a false positive.
        c.on_delivery(t, HOME, 1, &data(0x40, Grant::S));
        c.on_delivery(t, HOME, 2, &data(0x40, Grant::S));
        c.on_delivery(t, HOME, 3, &data(0x40, Grant::M));
        c.on_delivery(
            t,
            HOME,
            1,
            &CoherenceMsg::Inv {
                line: LineAddr(0x40),
                requestor: 3,
            },
        );
        assert_eq!(c.violations(), 0);
    }
}
