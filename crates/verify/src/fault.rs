//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is a seeded schedule of [`FaultSpec`]s. Every fault is a
//! *pure function of simulated time*: a spec is active exactly when
//! `from <= now < until`, and budgeted faults (drop/reorder counts) consume
//! their budget in deterministic delivery order. Re-running the same plan on
//! the same workload is therefore byte-identical, with or without edge
//! skipping — the run loop merges every window boundary into its event
//! horizon so both schedulers observe fault activations at the same edges.

use std::fmt;

use duet_noc::NodeId;
use duet_sim::{SimRng, SnapWriter, Time};

/// One kind of injectable fault. Node/hub indices refer to the mesh node or
/// adapter hub they target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The soft accelerator stops making progress: its `tick` is suppressed
    /// while the window is active (models a wedged kernel / combinational
    /// lock-up). The fabric-side FIFOs keep their contents.
    AccelHang,
    /// Freeze the CDC `AsyncFifo` pair between a memory hub and the fabric:
    /// pushes are rejected and pops return nothing while active (models a
    /// stuck synchronizer / clock-domain brown-out).
    CdcFreeze {
        /// Adapter hub index whose fabric request/response FIFOs freeze.
        hub: usize,
    },
    /// Stall NoC injection at one node: messages queue in the injection pipe
    /// but none enter the mesh while the window is active (delays flits).
    NocDelay {
        /// Mesh node whose local injection port stalls.
        node: NodeId,
    },
    /// Swap adjacent deliveries at one node: the next `count` ejections are
    /// each held back and delivered *after* the following ejection at the
    /// same node, breaking the mesh's point-to-point ordering guarantee.
    NocReorder {
        /// Mesh node whose ejections are reordered.
        node: NodeId,
        /// Number of swaps to perform within the window.
        count: u32,
    },
    /// Silently drop the next `count` messages ejected at one node
    /// (duplicate-suppression gone wrong / a lossy link).
    NocDrop {
        /// Mesh node whose ejections are dropped.
        node: NodeId,
        /// Number of messages to drop within the window.
        count: u32,
    },
    /// Stall the outgoing response port of the L3 shard at `node`: prepared
    /// MESI responses sit in the shard's output pipe until the window ends
    /// (delays directory responses).
    L3RespStall {
        /// Mesh node hosting the stalled shard.
        node: NodeId,
    },
    /// Drop the next `count` outgoing messages of the L3 shard at `node`
    /// (a lost directory response — fatal for a blocking protocol).
    L3RespDrop {
        /// Mesh node hosting the lossy shard.
        node: NodeId,
        /// Number of shard responses to drop within the window.
        count: u32,
    },
}

impl FaultKind {
    /// Short stable label (used in plan files, traces, and reports).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AccelHang => "accel_hang",
            FaultKind::CdcFreeze { .. } => "cdc_freeze",
            FaultKind::NocDelay { .. } => "noc_delay",
            FaultKind::NocReorder { .. } => "noc_reorder",
            FaultKind::NocDrop { .. } => "noc_drop",
            FaultKind::L3RespStall { .. } => "l3_stall",
            FaultKind::L3RespDrop { .. } => "l3_drop",
        }
    }

    /// The stable `(code, arg_a, arg_b)` triple used by the canonical byte
    /// encoding ([`FaultPlan::canonical_encode`]). Codes are append-only:
    /// existing kinds never renumber, so canonical bytes (and every hash
    /// derived from them — snapshot headers, service cache keys) stay
    /// comparable across revisions.
    pub fn canonical_code(&self) -> (u64, u64, u64) {
        match *self {
            FaultKind::AccelHang => (0, 0, 0),
            FaultKind::CdcFreeze { hub } => (1, hub as u64, 0),
            FaultKind::NocDelay { node } => (2, node as u64, 0),
            FaultKind::NocReorder { node, count } => (3, node as u64, u64::from(count)),
            FaultKind::NocDrop { node, count } => (4, node as u64, u64::from(count)),
            FaultKind::L3RespStall { node } => (5, node as u64, 0),
            FaultKind::L3RespDrop { node, count } => (6, node as u64, u64::from(count)),
        }
    }
}

/// A fault plus the simulated-time window in which it is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// First instant (inclusive) at which the fault is active.
    pub from: Time,
    /// First instant at which the fault is no longer active
    /// ([`Time::MAX`] for an open-ended fault).
    pub until: Time,
}

impl FaultSpec {
    /// An open-ended fault starting at `from`.
    pub fn starting(kind: FaultKind, from: Time) -> Self {
        FaultSpec {
            kind,
            from,
            until: Time::MAX,
        }
    }

    /// Whether the fault is active at `now`.
    pub fn active_at(&self, now: Time) -> bool {
        self.from <= now && now < self.until
    }
}

/// Graceful-degradation policy for the adapter-level watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeConfig {
    /// How long the accelerator may stay busy without fabric-visible
    /// progress before the adapter fences it.
    pub fence_after: Time,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            fence_after: Time::from_us(50),
        }
    }
}

/// A deterministic, seeded fault schedule carried in `SystemConfig`.
///
/// The default (empty) plan injects nothing and costs nothing on the hot
/// path. `seed` records how a randomized plan was generated so CI soak
/// failures can be replayed exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed used to generate the plan (0 for hand-written plans).
    pub seed: u64,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
    /// When set, the adapter watchdog fences a non-progressing accelerator
    /// instead of letting the run deadlock.
    pub degrade: Option<DegradeConfig>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults and no degradation policy.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty() && self.degrade.is_none()
    }

    /// Adds a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Enables graceful degradation (builder style).
    pub fn with_degrade(mut self, degrade: DegradeConfig) -> Self {
        self.degrade = Some(degrade);
        self
    }

    /// The earliest window boundary (a `from` or `until`) strictly after
    /// `now`, if any. The run loop merges this into its event horizon so
    /// edge skipping never jumps across a fault (de)activation.
    pub fn next_boundary(&self, now: Time) -> Option<Time> {
        let mut best: Option<Time> = None;
        for s in &self.specs {
            for t in [s.from, s.until] {
                if t > now && t < Time::MAX && best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// Appends the plan's canonical byte encoding to `w`: seed, each spec
    /// as its [`FaultKind::canonical_code`] triple plus window bounds, and
    /// the degrade policy. This is *the* canonical form — the
    /// `SystemConfig` hash stamped into snapshot headers and the
    /// content-addressed cache key of the service layer both hash exactly
    /// these bytes, so the two can never disagree about what a plan means.
    pub fn canonical_encode(&self, w: &mut SnapWriter) {
        w.u64(self.seed);
        w.len64(self.specs.len());
        for spec in &self.specs {
            let (code, a, b) = spec.kind.canonical_code();
            w.u64(code);
            w.u64(a);
            w.u64(b);
            w.u64(spec.from.as_ps());
            w.u64(spec.until.as_ps());
        }
        w.u8(u8::from(self.degrade.is_some()));
        if let Some(d) = &self.degrade {
            w.u64(d.fence_after.as_ps());
        }
    }

    /// Generates a small randomized plan for soak testing. `nodes` is the
    /// mesh size, `hubs` the adapter hub count (0 for processor-only
    /// systems), and `horizon` the time range in which windows are placed.
    /// The same `(seed, nodes, hubs, horizon)` always yields the same plan.
    pub fn randomized(seed: u64, nodes: usize, hubs: usize, horizon: Time) -> Self {
        let mut rng = SimRng::new(seed ^ 0x6475_6574_2d76_6679);
        let span = horizon.as_ps().max(2);
        let window = |rng: &mut SimRng| {
            let a = rng.gen_range(0..span);
            let b = rng.gen_range(0..span);
            (Time::from_ps(a.min(b)), Time::from_ps(a.max(b) + 1))
        };
        let nspecs = rng.gen_range(1..4) as usize;
        let mut specs = Vec::with_capacity(nspecs);
        for _ in 0..nspecs {
            let node = rng.gen_range(0..nodes.max(1) as u64) as NodeId;
            let count = rng.gen_range(1..4) as u32;
            // Recoverable-by-construction kinds only: drops wedge a blocking
            // protocol forever, which the deterministic matrix covers; the
            // soak wants runs that finish so it can diff fingerprints.
            let kind = match rng.gen_range(0..4) {
                0 if hubs > 0 => FaultKind::CdcFreeze {
                    hub: rng.gen_range(0..hubs as u64) as usize,
                },
                1 => FaultKind::NocDelay { node },
                2 => FaultKind::L3RespStall { node },
                _ => FaultKind::NocReorder { node, count },
            };
            let (from, until) = window(&mut rng);
            specs.push(FaultSpec { kind, from, until });
        }
        FaultPlan {
            seed,
            specs,
            degrade: None,
        }
    }

    /// Parses the plan-file format used by the `--faults` flag:
    ///
    /// ```text
    /// # comment
    /// seed = 42
    /// degrade fence_after_us=50
    /// fault accel_hang from_us=10
    /// fault cdc_freeze hub=0 from_us=5 until_us=20
    /// fault noc_drop node=2 count=1 from_us=0
    /// fault noc_delay node=1 from_ps=1500 until_ps=2500001
    /// ```
    ///
    /// Every time key comes in a `_us` (microseconds) and a `_ps`
    /// (picoseconds) spelling; giving both for the same bound is an error.
    /// A missing `until_us`/`until_ps` means open-ended. [`render`] emits
    /// `_us` for whole-microsecond instants and `_ps` otherwise, so any
    /// plan — including the picosecond-granular windows produced by
    /// [`randomized`] — round-trips losslessly through the text format.
    ///
    /// [`render`]: FaultPlan::render
    /// [`randomized`]: FaultPlan::randomized
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::empty();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| PlanParseError {
                line: lineno + 1,
                msg: msg.to_string(),
            };
            if let Some(rest) = line.strip_prefix("seed") {
                let v = rest
                    .trim_start()
                    .strip_prefix('=')
                    .ok_or_else(|| err("expected `seed = <u64>`"))?;
                plan.seed = v.trim().parse().map_err(|_| err("seed is not a number"))?;
            } else if let Some(rest) = line.strip_prefix("degrade") {
                let kv = parse_kv(rest, lineno + 1)?;
                let fence_after = lookup_time(&kv, "fence_after", lineno + 1)?
                    .ok_or_else(|| err("degrade needs fence_after_us=<u64> (or _ps)"))?;
                plan.degrade = Some(DegradeConfig { fence_after });
            } else if let Some(rest) = line.strip_prefix("fault") {
                let mut words = rest.trim().splitn(2, char::is_whitespace);
                let name = words.next().unwrap_or("");
                let kv = parse_kv(words.next().unwrap_or(""), lineno + 1)?;
                let node = || lookup(&kv, "node").map(|v| v as NodeId);
                let count = lookup(&kv, "count").unwrap_or(1) as u32;
                let kind = match name {
                    "accel_hang" => FaultKind::AccelHang,
                    "cdc_freeze" => FaultKind::CdcFreeze {
                        hub: lookup(&kv, "hub").unwrap_or(0) as usize,
                    },
                    "noc_delay" => FaultKind::NocDelay {
                        node: node().ok_or_else(|| err("noc_delay needs node=<n>"))?,
                    },
                    "noc_reorder" => FaultKind::NocReorder {
                        node: node().ok_or_else(|| err("noc_reorder needs node=<n>"))?,
                        count,
                    },
                    "noc_drop" => FaultKind::NocDrop {
                        node: node().ok_or_else(|| err("noc_drop needs node=<n>"))?,
                        count,
                    },
                    "l3_stall" => FaultKind::L3RespStall {
                        node: node().ok_or_else(|| err("l3_stall needs node=<n>"))?,
                    },
                    "l3_drop" => FaultKind::L3RespDrop {
                        node: node().ok_or_else(|| err("l3_drop needs node=<n>"))?,
                        count,
                    },
                    other => {
                        return Err(err(&format!("unknown fault kind `{other}`")));
                    }
                };
                let from = lookup_time(&kv, "from", lineno + 1)?
                    .ok_or_else(|| err("fault needs from_us=<u64> (or from_ps)"))?;
                let until = lookup_time(&kv, "until", lineno + 1)?.unwrap_or(Time::MAX);
                plan.specs.push(FaultSpec { kind, from, until });
            } else {
                return Err(err("expected `seed`, `degrade`, or `fault`"));
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into the exact [`parse`](FaultPlan::parse)
    /// syntax. Whole-microsecond instants come out as the human-friendly
    /// `_us` keys, anything finer as `_ps`, so `parse(render(p)) == p` for
    /// *every* plan — including picosecond-granular randomized windows and
    /// sub-microsecond degrade fences. Service specs embed plans as this
    /// text, and the round-trip guarantee is what lets the server echo
    /// them back to clients losslessly.
    pub fn render(&self) -> String {
        let time_kv = |key: &str, t: Time| {
            let ps = t.as_ps();
            if ps.is_multiple_of(1_000_000) {
                format!(" {key}_us={}", ps / 1_000_000)
            } else {
                format!(" {key}_ps={ps}")
            }
        };
        let mut out = String::new();
        out.push_str(&format!("seed = {}\n", self.seed));
        if let Some(d) = &self.degrade {
            out.push_str(&format!(
                "degrade{}\n",
                time_kv("fence_after", d.fence_after)
            ));
        }
        for s in &self.specs {
            out.push_str(&format!("fault {}", s.kind.label()));
            match s.kind {
                FaultKind::AccelHang => {}
                FaultKind::CdcFreeze { hub } => out.push_str(&format!(" hub={hub}")),
                FaultKind::NocDelay { node } | FaultKind::L3RespStall { node } => {
                    out.push_str(&format!(" node={node}"));
                }
                FaultKind::NocReorder { node, count }
                | FaultKind::NocDrop { node, count }
                | FaultKind::L3RespDrop { node, count } => {
                    out.push_str(&format!(" node={node} count={count}"));
                }
            }
            out.push_str(&time_kv("from", s.from));
            if s.until < Time::MAX {
                out.push_str(&time_kv("until", s.until));
            }
            out.push('\n');
        }
        out
    }
}

/// Per-node index over a plan's NoC fault specs.
///
/// The run loop consults the plan on two hot paths: the injection pump asks
/// "is this source node delay-stalled?" and the ejection dispatcher asks
/// "does any reorder/drop window target this node?". Scanning `plan.specs`
/// linearly on every message is wasted work for the common empty plan and
/// scales poorly once the mesh tick itself is sharded, so the index buckets
/// spec *indices* per node once at construction. Indices (not copies) are
/// stored so budget bookkeeping keyed by spec position keeps working, and
/// each bucket preserves plan order so overlapping windows consume budgets
/// in exactly the order the linear scan did.
#[derive(Clone, Debug, Default)]
pub struct FaultIndex {
    delay: Vec<Vec<usize>>,
    eject: Vec<Vec<usize>>,
}

impl FaultIndex {
    /// Builds the index for a mesh with `nodes` routers. Specs targeting
    /// out-of-range nodes are ignored (they can never fire).
    pub fn new(plan: &FaultPlan, nodes: usize) -> Self {
        let mut delay = vec![Vec::new(); nodes];
        let mut eject = vec![Vec::new(); nodes];
        for (i, s) in plan.specs.iter().enumerate() {
            match s.kind {
                FaultKind::NocDelay { node } => {
                    if let Some(bucket) = delay.get_mut(node) {
                        bucket.push(i);
                    }
                }
                FaultKind::NocReorder { node, .. } | FaultKind::NocDrop { node, .. } => {
                    if let Some(bucket) = eject.get_mut(node) {
                        bucket.push(i);
                    }
                }
                _ => {}
            }
        }
        FaultIndex { delay, eject }
    }

    /// Plan-order indices of `NocDelay` specs targeting `node` (the
    /// injection path).
    pub fn delay_specs(&self, node: NodeId) -> &[usize] {
        self.delay.get(node).map_or(&[], Vec::as_slice)
    }

    /// Plan-order indices of `NocReorder`/`NocDrop` specs targeting `node`
    /// (the ejection path).
    pub fn eject_specs(&self, node: NodeId) -> &[usize] {
        self.eject.get(node).map_or(&[], Vec::as_slice)
    }

    /// True when no spec targets any NoC path (both tables are all-empty).
    pub fn is_empty(&self) -> bool {
        self.delay.iter().all(Vec::is_empty) && self.eject.iter().all(Vec::is_empty)
    }
}

fn parse_kv(rest: &str, line: usize) -> Result<Vec<(String, u64)>, PlanParseError> {
    let mut kv = Vec::new();
    for word in rest.split_whitespace() {
        let (k, v) = word.split_once('=').ok_or_else(|| PlanParseError {
            line,
            msg: format!("expected key=value, got `{word}`"),
        })?;
        let v: u64 = v.parse().map_err(|_| PlanParseError {
            line,
            msg: format!("`{k}` is not a number"),
        })?;
        kv.push((k.to_string(), v));
    }
    Ok(kv)
}

fn lookup(kv: &[(String, u64)], key: &str) -> Option<u64> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Resolves a time bound that may be spelled `<base>_us` or `<base>_ps`.
/// Both at once is ambiguous and rejected.
fn lookup_time(
    kv: &[(String, u64)],
    base: &str,
    line: usize,
) -> Result<Option<Time>, PlanParseError> {
    let us = lookup(kv, &format!("{base}_us"));
    let ps = lookup(kv, &format!("{base}_ps"));
    match (us, ps) {
        (Some(_), Some(_)) => Err(PlanParseError {
            line,
            msg: format!("give {base}_us or {base}_ps, not both"),
        }),
        (Some(us), None) => Ok(Some(Time::from_us(us))),
        (None, Some(ps)) => Ok(Some(Time::from_ps(ps))),
        (None, None) => Ok(None),
    }
}

/// A syntax error in a fault-plan file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_boundary_free() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.next_boundary(Time::ZERO), None);
    }

    #[test]
    fn windows_and_boundaries() {
        let p = FaultPlan::empty().with(FaultSpec {
            kind: FaultKind::AccelHang,
            from: Time::from_us(10),
            until: Time::from_us(20),
        });
        assert!(!p.specs[0].active_at(Time::from_us(9)));
        assert!(p.specs[0].active_at(Time::from_us(10)));
        assert!(p.specs[0].active_at(Time::from_us(19)));
        assert!(!p.specs[0].active_at(Time::from_us(20)));
        assert_eq!(p.next_boundary(Time::ZERO), Some(Time::from_us(10)));
        assert_eq!(p.next_boundary(Time::from_us(10)), Some(Time::from_us(20)));
        assert_eq!(p.next_boundary(Time::from_us(20)), None);
    }

    #[test]
    fn parse_roundtrips_through_render() {
        let text = "\
seed = 7
degrade fence_after_us=50
fault accel_hang from_us=10
fault cdc_freeze hub=1 from_us=5 until_us=20
fault noc_drop node=2 count=3 from_us=0
fault l3_stall node=4 from_us=1 until_us=9
";
        let p = FaultPlan::parse(text).expect("plan parses");
        assert_eq!(p.seed, 7);
        assert_eq!(p.specs.len(), 4);
        assert_eq!(p.specs[0].kind, FaultKind::AccelHang);
        assert_eq!(p.specs[0].until, Time::MAX);
        assert_eq!(p.specs[1].kind, FaultKind::CdcFreeze { hub: 1 });
        assert_eq!(p.specs[2].kind, FaultKind::NocDrop { node: 2, count: 3 });
        let p2 = FaultPlan::parse(&p.render()).expect("rendered plan parses");
        assert_eq!(p, p2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(FaultPlan::parse("bogus line").is_err());
        assert!(FaultPlan::parse("fault unknown_kind from_us=0").is_err());
        assert!(FaultPlan::parse("fault noc_drop from_us=0").is_err());
        assert!(FaultPlan::parse("fault accel_hang").is_err());
        assert!(FaultPlan::parse("seed = banana").is_err());
        let err = FaultPlan::parse("seed = 1\nnope").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = FaultPlan::parse("# hi\n\n  seed = 3  # trailing\n").expect("parses");
        assert_eq!(p.seed, 3);
        assert!(p.specs.is_empty());
    }

    #[test]
    fn fault_index_buckets_noc_specs_per_node() {
        let plan = FaultPlan::empty()
            .with(FaultSpec::starting(FaultKind::AccelHang, Time::ZERO))
            .with(FaultSpec::starting(
                FaultKind::NocDelay { node: 2 },
                Time::ZERO,
            ))
            .with(FaultSpec::starting(
                FaultKind::NocDrop { node: 2, count: 1 },
                Time::ZERO,
            ))
            .with(FaultSpec::starting(
                FaultKind::NocReorder { node: 2, count: 1 },
                Time::from_us(1),
            ))
            .with(FaultSpec::starting(
                FaultKind::NocDelay { node: 99 }, // out of range: ignored
                Time::ZERO,
            ));
        let idx = FaultIndex::new(&plan, 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.delay_specs(2), &[1]);
        // Plan order preserved so overlapping budgets drain identically.
        assert_eq!(idx.eject_specs(2), &[2, 3]);
        assert!(idx.delay_specs(0).is_empty());
        assert!(idx.eject_specs(3).is_empty());
        // Out-of-range queries are safe, not a panic.
        assert!(idx.delay_specs(99).is_empty());

        let empty = FaultIndex::new(&FaultPlan::empty(), 4);
        assert!(empty.is_empty());
    }

    #[test]
    fn render_roundtrips_ps_granular_plans_losslessly() {
        // The text format historically truncated to whole microseconds;
        // randomized plans have picosecond-granular windows, and service
        // specs embed sub-microsecond degrade fences. All of it must come
        // back bit-equal through parse → render → parse.
        for seed in 0..32u64 {
            let mut p = FaultPlan::randomized(seed, 16, 2, Time::from_us(100));
            p.degrade = Some(DegradeConfig {
                fence_after: Time::from_ps(1_234_567),
            });
            let text = p.render();
            let p2 = FaultPlan::parse(&text).expect("rendered plan parses");
            assert_eq!(p, p2, "seed {seed} did not round-trip:\n{text}");
            // A second trip is a fixed point.
            assert_eq!(p2.render(), text);
        }
    }

    #[test]
    fn parse_accepts_ps_keys_and_rejects_ambiguous_bounds() {
        let p = FaultPlan::parse("fault noc_delay node=1 from_ps=1500 until_ps=2500001\n")
            .expect("ps keys parse");
        assert_eq!(p.specs[0].from, Time::from_ps(1500));
        assert_eq!(p.specs[0].until, Time::from_ps(2_500_001));
        let d = FaultPlan::parse("degrade fence_after_ps=42\n").expect("ps fence parses");
        assert_eq!(
            d.degrade,
            Some(DegradeConfig {
                fence_after: Time::from_ps(42)
            })
        );
        let err = FaultPlan::parse("fault accel_hang from_us=1 from_ps=1000000\n").unwrap_err();
        assert!(err.msg.contains("not both"), "got: {}", err.msg);
    }

    #[test]
    fn canonical_encoding_distinguishes_plans_and_is_stable() {
        let enc = |p: &FaultPlan| {
            let mut w = SnapWriter::new();
            p.canonical_encode(&mut w);
            w.finish()
        };
        let a = FaultPlan::empty().with(FaultSpec::starting(
            FaultKind::NocDrop { node: 2, count: 1 },
            Time::from_us(1),
        ));
        assert_eq!(enc(&a), enc(&a.clone()), "encoding must be deterministic");
        let b = FaultPlan::empty().with(FaultSpec::starting(
            FaultKind::NocDrop { node: 2, count: 2 },
            Time::from_us(1),
        ));
        assert_ne!(enc(&a), enc(&b), "budget must be encoded");
        let mut c = a.clone();
        c.degrade = Some(DegradeConfig::default());
        assert_ne!(enc(&a), enc(&c), "degrade policy must be encoded");
        let mut d = a.clone();
        d.seed = 9;
        assert_ne!(enc(&a), enc(&d), "seed must be encoded");
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let a = FaultPlan::randomized(9, 9, 2, Time::from_us(100));
        let b = FaultPlan::randomized(9, 9, 2, Time::from_us(100));
        let c = FaultPlan::randomized(10, 9, 2, Time::from_us(100));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.specs.is_empty());
        for s in &a.specs {
            assert!(s.from < s.until);
        }
    }
}
