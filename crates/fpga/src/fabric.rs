//! The eFPGA fabric resource, area, and timing model.
//!
//! Dolly builds its eFPGA with PRGA in a standard island-style architecture
//! and maps accelerators onto the VTR flagship model
//! `k6_frac_N10_frac_chain_mem32K_40nm` (Stratix-IV-like: CLBs of ten
//! fracturable 6-LUTs with carry chains, 32 Kb BRAMs, hard multipliers).
//! We cannot run synthesis/place-and-route, so this module substitutes an
//! analytical model (documented in DESIGN.md):
//!
//! * a design is summarized by a [`NetlistSummary`] (LUTs, FFs, BRAM bits,
//!   multipliers, combinational depth),
//! * [`FabricSpec::implement`] sizes the smallest fabric from a family of
//!   square grids that fits the design, reporting utilization, silicon
//!   area, and an achievable clock from a depth + routing-congestion delay
//!   model,
//! * constants are calibrated against Table II of the paper (the model
//!   reproduces its frequency range of 85–282 MHz and area range of
//!   0.47–14.2× an Ariane+socket).

/// Resource summary of a synthesized accelerator (what VTR would report).
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistSummary {
    /// Design name.
    pub name: &'static str,
    /// 6-input LUTs (fractured LUTs count as halves rounded up).
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// Block-RAM kilobits used.
    pub bram_kbits: u32,
    /// Hard 18×18 multipliers.
    pub mults: u32,
    /// Logic levels on the critical path (LUT hops).
    pub logic_levels: u32,
}

/// Result of "implementing" a netlist on a fabric instance.
#[derive(Clone, Copy, Debug)]
pub struct ImplReport {
    /// CLB (logic) utilization, 0..=1, of the chosen fabric instance.
    pub clb_util: f64,
    /// BRAM utilization, 0..=1.
    pub bram_util: f64,
    /// Multiplier utilization, 0..=1.
    pub mult_util: f64,
    /// Achievable clock frequency, MHz.
    pub fmax_mhz: f64,
    /// Total silicon area of the fabric instance, mm² (45 nm-scaled).
    pub area_mm2: f64,
    /// Grid edge length (tiles) of the chosen instance.
    pub grid: u32,
}

/// An island-style eFPGA architecture family.
#[derive(Clone, Copy, Debug)]
pub struct FabricSpec {
    /// Architecture name.
    pub name: &'static str,
    /// Fracturable 6-LUTs per CLB (N10 → 10).
    pub luts_per_clb: u32,
    /// Flip-flops per CLB (one per LUT output, bypassable).
    pub ffs_per_clb: u32,
    /// Kilobits per BRAM tile (32 for mem32K).
    pub bram_kbits_per_tile: u32,
    /// Fraction of grid columns that are BRAM columns.
    pub bram_column_ratio: f64,
    /// Fraction of grid columns that are multiplier columns.
    pub mult_column_ratio: f64,
    /// CLB tile silicon area, mm² (45 nm-scaled, includes routing).
    pub clb_tile_mm2: f64,
    /// BRAM tile silicon area, mm².
    pub bram_tile_mm2: f64,
    /// Multiplier tile silicon area, mm².
    pub mult_tile_mm2: f64,
    /// Delay of one LUT + local routing hop, ns.
    pub lut_delay_ns: f64,
    /// Extra routing delay per unit of sqrt(grid), ns (long-wire cost grows
    /// with fabric size).
    pub routing_delay_ns_per_col: f64,
    /// Target utilization ceiling used when sizing (VTR-like 80%).
    pub fill_target: f64,
}

impl FabricSpec {
    /// The VTR flagship model used by the paper
    /// (`k6_frac_N10_frac_chain_mem32K_40nm`), with area/delay constants
    /// scaled to 45 nm and calibrated against Table II.
    pub fn k6_frac_n10_mem32k() -> Self {
        FabricSpec {
            name: "k6_frac_N10_frac_chain_mem32K_40nm",
            luts_per_clb: 10,
            ffs_per_clb: 20,
            bram_kbits_per_tile: 32,
            bram_column_ratio: 0.125,
            mult_column_ratio: 0.0625,
            clb_tile_mm2: 0.0046,
            bram_tile_mm2: 0.0092,
            mult_tile_mm2: 0.0069,
            lut_delay_ns: 0.90,
            routing_delay_ns_per_col: 0.050,
            fill_target: 0.80,
        }
    }

    /// Tile counts of a `grid × grid` instance: `(clbs, brams, mults)`.
    pub fn tiles(&self, grid: u32) -> (u32, u32, u32) {
        let bram_cols = ((f64::from(grid) * self.bram_column_ratio).round() as u32).max(1);
        let mult_cols = ((f64::from(grid) * self.mult_column_ratio).round() as u32).max(1);
        let clb_cols = grid.saturating_sub(bram_cols + mult_cols);
        (clb_cols * grid, bram_cols * grid, mult_cols * grid)
    }

    /// Silicon area of a `grid × grid` instance, mm².
    pub fn instance_area_mm2(&self, grid: u32) -> f64 {
        let (clbs, brams, mults) = self.tiles(grid);
        f64::from(clbs) * self.clb_tile_mm2
            + f64::from(brams) * self.bram_tile_mm2
            + f64::from(mults) * self.mult_tile_mm2
    }

    /// Resources a netlist needs: `(clbs, bram_tiles, mults)`.
    pub fn demand(&self, n: &NetlistSummary) -> (u32, u32, u32) {
        let clbs_for_luts = n.luts.div_ceil(self.luts_per_clb);
        let clbs_for_ffs = n.ffs.div_ceil(self.ffs_per_clb);
        let clbs = clbs_for_luts.max(clbs_for_ffs).max(1);
        let brams = n.bram_kbits.div_ceil(self.bram_kbits_per_tile);
        (clbs, brams, n.mults)
    }

    /// Chooses the smallest grid (from 4×4 up) whose resources fit the
    /// netlist at the fill target, then reports utilization, area and Fmax.
    ///
    /// # Panics
    ///
    /// Panics if the design does not fit a 192×192 grid (absurdly large).
    pub fn implement(&self, n: &NetlistSummary) -> ImplReport {
        let (need_clb, need_bram, need_mult) = self.demand(n);
        let mut grid = 4u32;
        loop {
            let (clbs, brams, mults) = self.tiles(grid);
            let fits = f64::from(need_clb) <= f64::from(clbs) * self.fill_target
                && need_bram <= brams
                && need_mult <= mults;
            if fits {
                let clb_util = f64::from(need_clb) / f64::from(clbs);
                let bram_util = if brams == 0 {
                    0.0
                } else {
                    f64::from(need_bram) / f64::from(brams)
                };
                let mult_util = if mults == 0 {
                    0.0
                } else {
                    f64::from(need_mult) / f64::from(mults)
                };
                // Critical path: logic depth plus size- and
                // congestion-dependent routing.
                let congestion = 1.0 + clb_util * clb_util;
                let path_ns = f64::from(n.logic_levels.max(1)) * self.lut_delay_ns * congestion
                    + f64::from(grid) * self.routing_delay_ns_per_col;
                return ImplReport {
                    clb_util,
                    bram_util,
                    mult_util,
                    fmax_mhz: 1000.0 / path_ns,
                    area_mm2: self.instance_area_mm2(grid),
                    grid,
                };
            }
            grid += 2;
            assert!(grid <= 192, "netlist `{}` does not fit any fabric", n.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> NetlistSummary {
        NetlistSummary {
            name: "small",
            luts: 200,
            ffs: 150,
            bram_kbits: 0,
            mults: 0,
            logic_levels: 4,
        }
    }

    #[test]
    fn demand_rounds_up() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        let (clbs, brams, mults) = f.demand(&NetlistSummary {
            name: "x",
            luts: 11,
            ffs: 1,
            bram_kbits: 33,
            mults: 2,
            logic_levels: 1,
        });
        assert_eq!(clbs, 2, "11 LUTs need 2 CLBs");
        assert_eq!(brams, 2, "33 kbit needs 2 BRAM tiles");
        assert_eq!(mults, 2);
    }

    #[test]
    fn implement_fits_and_reports_utilization() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        let r = f.implement(&small_design());
        assert!(r.clb_util > 0.0 && r.clb_util <= 1.0);
        assert!(r.area_mm2 > 0.0);
        assert!(r.grid >= 4);
    }

    #[test]
    fn bigger_design_needs_bigger_fabric() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        let small = f.implement(&small_design());
        let big = f.implement(&NetlistSummary {
            name: "big",
            luts: 20_000,
            ffs: 15_000,
            bram_kbits: 64,
            mults: 8,
            logic_levels: 8,
        });
        assert!(big.grid > small.grid);
        assert!(big.area_mm2 > small.area_mm2);
        assert!(big.fmax_mhz < small.fmax_mhz, "larger + deeper = slower");
    }

    #[test]
    fn fmax_in_paper_range_for_representative_designs() {
        // Table II reports 85-282 MHz for the seven accelerators; designs
        // with 4-12 logic levels should land in that band.
        let f = FabricSpec::k6_frac_n10_mem32k();
        for levels in [3, 6, 9, 12] {
            let r = f.implement(&NetlistSummary {
                name: "probe",
                luts: 2000,
                ffs: 1500,
                bram_kbits: 64,
                mults: 4,
                logic_levels: levels,
            });
            assert!(
                (50.0..450.0).contains(&r.fmax_mhz),
                "levels={levels}: fmax {} out of plausible band",
                r.fmax_mhz
            );
        }
    }

    #[test]
    fn instance_area_monotonic_in_grid() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        assert!(f.instance_area_mm2(8) < f.instance_area_mm2(16));
    }
}
