//! A fabric-side soft-register endpoint used by accelerator designs.
//!
//! An accelerator's "device controller" (Sec. II-E) must speak two wire
//! protocols depending on how the system configures its registers:
//!
//! * **shadowed** (Duet): processor writes arrive as
//!   [`RegDown::ShadowWrite`]; results are *pushed* with `RegUp::Push`
//!   and land in the Control Hub's fast-domain CPU-bound FIFOs,
//! * **normal** (FPSoC baseline, or registers needing non-bufferable
//!   semantics): writes arrive as [`RegDown::WriteReq`] and must be
//!   acknowledged; reads arrive as [`RegDown::ReadReq`] and must be
//!   answered — a read of a result queue blocks (the answer is deferred)
//!   until a result exists.
//!
//! [`FabricRegFile`] implements both so the same accelerator design runs
//! unmodified on Duet and on the FPSoC-like baseline, exactly as the paper
//! evaluates ("FPSoC ... downgrades all shadowed soft registers to normal
//! registers", Sec. V-D). Construct it with `push_mode = true` when the
//! system uses shadow registers.

use std::collections::VecDeque;

use duet_sim::Time;

use crate::ports::{RegDown, RegPort};

/// How reads of a register behave.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FabricRegKind {
    /// A plain value: reads return the latest value.
    #[default]
    Value,
    /// A result queue: reads consume one queued result (blocking in normal
    /// mode, pushed to a CPU-bound FIFO in shadow mode).
    Queue,
    /// A synchronization barrier (Sec. II-F): a read is held until the
    /// accelerator calls [`FabricRegFile::release_barrier`] — "the eFPGA
    /// signals its arrival at the barrier by acknowledging the read". Must
    /// be configured as a *normal* register on the hub side (non-bufferable).
    Barrier,
    /// A token queue (the non-blocking `try_join` FIFO): a normal-mode read
    /// consumes a token and returns 1, or returns 0 immediately when empty.
    /// In push mode tokens are pushed to the hub's token FIFO instead.
    TokenQueue,
}

/// The fabric-side register endpoint. See module docs.
#[derive(Clone, Debug)]
pub struct FabricRegFile {
    push_mode: bool,
    kinds: [FabricRegKind; 32],
    values: [u64; 32],
    inbox: Vec<VecDeque<u64>>,
    outbox: Vec<VecDeque<u64>>,
    pending_reads: VecDeque<(u64, u8)>,
    pending_acks: VecDeque<u64>,
}

impl FabricRegFile {
    /// Creates an endpoint. `push_mode` selects shadow-register delivery of
    /// results (true on Duet, false when registers are normal/FPSoC).
    pub fn new(push_mode: bool) -> Self {
        FabricRegFile {
            push_mode,
            kinds: [FabricRegKind::Value; 32],
            values: [0; 32],
            inbox: (0..32).map(|_| VecDeque::new()).collect(),
            outbox: (0..32).map(|_| VecDeque::new()).collect(),
            pending_reads: VecDeque::new(),
            pending_acks: VecDeque::new(),
        }
    }

    /// Declares `reg` a result queue.
    pub fn set_queue(&mut self, reg: usize) {
        self.kinds[reg] = FabricRegKind::Queue;
    }

    /// Declares `reg` a barrier register.
    pub fn set_barrier(&mut self, reg: usize) {
        self.kinds[reg] = FabricRegKind::Barrier;
    }

    /// Declares `reg` a token queue (non-blocking try-join).
    pub fn set_token(&mut self, reg: usize) {
        self.kinds[reg] = FabricRegKind::TokenQueue;
    }

    /// Releases one blocked barrier read on `reg` (or the next to arrive)
    /// with `value`.
    pub fn release_barrier(&mut self, reg: usize, value: u64) {
        self.outbox[reg].push_back(value);
    }

    /// Whether a processor is currently blocked on a barrier read of `reg`.
    pub fn barrier_waiting(&self, reg: usize) -> bool {
        self.pending_reads.iter().any(|(_, r)| *r as usize == reg)
    }

    /// Whether results are pushed (shadow mode).
    pub fn push_mode(&self) -> bool {
        self.push_mode
    }

    /// The latest value written to `reg`.
    pub fn value(&self, reg: usize) -> u64 {
        self.values[reg]
    }

    /// Consumes the oldest unprocessed write to `reg` (an argument).
    pub fn pop_write(&mut self, reg: usize) -> Option<u64> {
        self.inbox[reg].pop_front()
    }

    /// Queues a result on `reg` for delivery to the processors.
    pub fn push_result(&mut self, reg: usize, value: u64) {
        self.outbox[reg].push_back(value);
        self.values[reg] = value;
    }

    /// Number of results not yet delivered.
    pub fn undelivered(&self, reg: usize) -> usize {
        self.outbox[reg].len()
    }

    /// Whether `reg` has writes the accelerator has not consumed yet.
    pub fn has_pending_write(&self, reg: usize) -> bool {
        !self.inbox[reg].is_empty()
    }

    /// Whether the endpoint's *protocol* side is drained: no unacked
    /// writes, no deferred reads, and no undelivered results — i.e. given
    /// no new down-FIFO input, [`tick`](FabricRegFile::tick) is a no-op.
    ///
    /// Unconsumed argument writes (the inbox) are deliberately *not*
    /// counted: consuming them is the accelerator's decision, and many
    /// designs latch-and-ignore plain parameter registers. An accelerator's
    /// [`is_idle`](crate::ports::SoftAccelerator::is_idle) must separately
    /// check [`has_pending_write`](FabricRegFile::has_pending_write) for
    /// every register it drains with `pop_write`.
    pub fn is_quiescent(&self) -> bool {
        self.pending_reads.is_empty()
            && self.pending_acks.is_empty()
            && self.outbox.iter().all(|q| q.is_empty())
    }

    /// Processes one eFPGA clock edge of register traffic: absorbs
    /// downstream events and services acks, deferred reads, and (in push
    /// mode) result delivery — all bounded by up-FIFO space.
    pub fn tick(&mut self, now: Time, regs: &mut RegPort<'_>) {
        while let Some(ev) = regs.pop(now) {
            match ev {
                RegDown::ShadowWrite { reg, value } => {
                    let r = reg as usize % 32;
                    self.values[r] = value;
                    self.inbox[r].push_back(value);
                }
                RegDown::WriteReq { txn, reg, value } => {
                    let r = reg as usize % 32;
                    self.values[r] = value;
                    self.inbox[r].push_back(value);
                    self.pending_acks.push_back(txn);
                }
                RegDown::ReadReq { txn, reg } => {
                    self.pending_reads.push_back((txn, reg));
                }
            }
        }
        // Acks first (cheap, unblocks the hub's head-of-line).
        while let Some(&txn) = self.pending_acks.front() {
            if !regs.write_ack(now, txn) {
                break;
            }
            self.pending_acks.pop_front();
        }
        // Deferred reads: Value regs answer immediately; Queue regs answer
        // when a result exists (in order per register).
        let mut still_pending = VecDeque::new();
        while let Some((txn, reg)) = self.pending_reads.pop_front() {
            let r = reg as usize % 32;
            let answer = match self.kinds[r] {
                FabricRegKind::Value => Some(self.values[r]),
                FabricRegKind::Queue | FabricRegKind::Barrier => self.outbox[r].front().copied(),
                // Non-blocking: 1-with-consume or 0 immediately.
                FabricRegKind::TokenQueue => {
                    if self.outbox[r].pop_front().is_some() {
                        Some(1)
                    } else {
                        Some(0)
                    }
                }
            };
            match answer {
                Some(v) => {
                    if regs.read_resp(now, txn, v) {
                        if matches!(self.kinds[r], FabricRegKind::Queue | FabricRegKind::Barrier) {
                            self.outbox[r].pop_front();
                        }
                    } else if self.kinds[r] == FabricRegKind::TokenQueue && v == 1 {
                        // Could not send the reply: put the token back.
                        self.outbox[r].push_front(0);
                        still_pending.push_back((txn, reg));
                    } else {
                        still_pending.push_back((txn, reg));
                    }
                }
                None => still_pending.push_back((txn, reg)),
            }
        }
        self.pending_reads = still_pending;
        // Push-mode result delivery (barrier registers are always normal:
        // their releases only answer reads).
        if self.push_mode {
            for r in 0..32 {
                if self.kinds[r] == FabricRegKind::Barrier {
                    continue;
                }
                while let Some(&v) = self.outbox[r].front() {
                    if !regs.push(now, r as u8, v) {
                        return;
                    }
                    self.outbox[r].pop_front();
                }
            }
        }
    }
}

mod snap_impls {
    use std::collections::VecDeque;

    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{FabricRegFile, FabricRegKind};

    impl Pack for FabricRegKind {
        fn pack(&self, w: &mut SnapWriter) {
            w.u8(match self {
                FabricRegKind::Value => 0,
                FabricRegKind::Queue => 1,
                FabricRegKind::Barrier => 2,
                FabricRegKind::TokenQueue => 3,
            });
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => FabricRegKind::Value,
                1 => FabricRegKind::Queue,
                2 => FabricRegKind::Barrier,
                3 => FabricRegKind::TokenQueue,
                _ => return Err(SnapError::Corrupt("invalid FabricRegKind discriminant")),
            })
        }
    }

    impl Snap for FabricRegFile {
        /// `push_mode` is construction-time configuration; it is saved only
        /// to cross-check that the restored endpoint was built the same way.
        fn save(&self, w: &mut SnapWriter) {
            self.push_mode.pack(w);
            self.kinds.pack(w);
            self.values.pack(w);
            self.inbox.pack(w);
            self.outbox.pack(w);
            self.pending_reads.pack(w);
            self.pending_acks.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            let push_mode = bool::unpack(r)?;
            if push_mode != self.push_mode {
                return Err(SnapError::Corrupt("regfile push_mode mismatch"));
            }
            self.kinds = Pack::unpack(r)?;
            self.values = Pack::unpack(r)?;
            let inbox: Vec<VecDeque<u64>> = Pack::unpack(r)?;
            let outbox: Vec<VecDeque<u64>> = Pack::unpack(r)?;
            if inbox.len() != 32 || outbox.len() != 32 {
                return Err(SnapError::Corrupt("regfile queue count mismatch"));
            }
            self.inbox = inbox;
            self.outbox = outbox;
            self.pending_reads = Pack::unpack(r)?;
            self.pending_acks = Pack::unpack(r)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::RegUp;
    use duet_sim::{Clock, Link};

    fn fifos() -> (Link<RegDown>, Link<RegUp>) {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        (Link::cdc(8, 2, fast, slow), Link::cdc(8, 2, slow, fast))
    }

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    #[test]
    fn shadow_write_lands_in_inbox() {
        let (mut down, mut up) = fifos();
        down.push(t(1000), RegDown::ShadowWrite { reg: 0, value: 7 })
            .unwrap();
        let mut rf = FabricRegFile::new(true);
        let mut port = RegPort {
            down: &mut down,
            up: &mut up,
        };
        rf.tick(t(20_000), &mut port);
        assert_eq!(rf.pop_write(0), Some(7));
        assert_eq!(rf.pop_write(0), None);
        assert_eq!(rf.value(0), 7);
    }

    #[test]
    fn normal_write_is_acked() {
        let (mut down, mut up) = fifos();
        down.push(
            t(1000),
            RegDown::WriteReq {
                txn: 3,
                reg: 1,
                value: 9,
            },
        )
        .unwrap();
        let mut rf = FabricRegFile::new(false);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(20_000), &mut port);
        }
        assert_eq!(rf.pop_write(1), Some(9));
        assert_eq!(up.pop(t(25_000)), Some(RegUp::WriteAck { txn: 3 }));
    }

    #[test]
    fn queue_read_blocks_until_result() {
        let (mut down, mut up) = fifos();
        down.push(t(1000), RegDown::ReadReq { txn: 5, reg: 2 })
            .unwrap();
        let mut rf = FabricRegFile::new(false);
        rf.set_queue(2);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(20_000), &mut port);
        }
        assert_eq!(up.pop(t(25_000)), None, "no result yet: read deferred");
        rf.push_result(2, 55);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(30_000), &mut port);
        }
        assert_eq!(
            up.pop(t(35_000)),
            Some(RegUp::ReadResp { txn: 5, value: 55 })
        );
    }

    #[test]
    fn value_read_answers_immediately() {
        let (mut down, mut up) = fifos();
        down.push(
            t(1000),
            RegDown::WriteReq {
                txn: 1,
                reg: 3,
                value: 8,
            },
        )
        .unwrap();
        down.push(t(2000), RegDown::ReadReq { txn: 2, reg: 3 })
            .unwrap();
        let mut rf = FabricRegFile::new(false);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(30_000), &mut port);
        }
        assert_eq!(up.pop(t(35_000)), Some(RegUp::WriteAck { txn: 1 }));
        assert_eq!(
            up.pop(t(36_000)),
            Some(RegUp::ReadResp { txn: 2, value: 8 })
        );
    }

    #[test]
    fn push_mode_delivers_results_as_pushes() {
        let (mut down, mut up) = fifos();
        let mut rf = FabricRegFile::new(true);
        rf.set_queue(4);
        rf.push_result(4, 11);
        rf.push_result(4, 12);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(10_000), &mut port);
        }
        assert_eq!(up.pop(t(15_000)), Some(RegUp::Push { reg: 4, value: 11 }));
        assert_eq!(up.pop(t(16_000)), Some(RegUp::Push { reg: 4, value: 12 }));
    }

    #[test]
    fn non_push_mode_holds_results_for_reads() {
        let (mut down, mut up) = fifos();
        let mut rf = FabricRegFile::new(false);
        rf.set_queue(4);
        rf.push_result(4, 11);
        {
            let mut port = RegPort {
                down: &mut down,
                up: &mut up,
            };
            rf.tick(t(10_000), &mut port);
        }
        assert_eq!(up.pop(t(15_000)), None, "results held, not pushed");
        assert_eq!(rf.undelivered(4), 1);
    }
}
