//! Bitstreams and the configuration-memory model.
//!
//! The Control Hub's FPGA Manager "loads the bitstream into the
//! configuration memory, and performs integrity checks to detect data
//! corruption" (Sec. II-E). This module models the bitstream itself; the
//! programming engine that streams it lives in `duet-core`.

use crate::fabric::{FabricSpec, NetlistSummary};

/// Configuration bits per CLB tile (LUT masks + routing mux state).
const BITS_PER_CLB: u64 = 1600;
/// Configuration bits per BRAM tile (initialization + mode).
const BITS_PER_BRAM: u64 = 2048;
/// Configuration bits per multiplier tile.
const BITS_PER_MULT: u64 = 256;

/// A configuration bitstream for one fabric instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitstream {
    /// Design name this bitstream implements.
    pub design: String,
    /// Configuration words (64-bit).
    pub words: Vec<u64>,
    /// Integrity checksum over `words`.
    pub checksum: u64,
}

impl Bitstream {
    /// Generates a synthetic bitstream sized for `netlist` on `fabric`
    /// (deterministic content derived from the design name).
    pub fn generate(fabric: &FabricSpec, netlist: &NetlistSummary) -> Self {
        let report = fabric.implement(netlist);
        let (clbs, brams, mults) = fabric.tiles(report.grid);
        let bits = u64::from(clbs) * BITS_PER_CLB
            + u64::from(brams) * BITS_PER_BRAM
            + u64::from(mults) * BITS_PER_MULT;
        let n_words = bits.div_ceil(64) as usize;
        let mut seed = netlist.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        let words: Vec<u64> = (0..n_words)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            })
            .collect();
        let checksum = Self::checksum_of(&words);
        Bitstream {
            design: netlist.name.to_string(),
            words,
            checksum,
        }
    }

    /// The integrity checksum the programming engine verifies.
    pub fn checksum_of(words: &[u64]) -> u64 {
        words.iter().fold(0u64, |acc, w| acc.rotate_left(1) ^ *w)
    }

    /// Whether the stored checksum matches the contents.
    pub fn verify(&self) -> bool {
        Self::checksum_of(&self.words) == self.checksum
    }

    /// Length in 64-bit words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Corrupts one word (fault-injection in tests).
    pub fn corrupt(&mut self, index: usize) {
        let i = index % self.words.len().max(1);
        if let Some(w) = self.words.get_mut(i) {
            *w ^= 0x1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist() -> NetlistSummary {
        NetlistSummary {
            name: "probe",
            luts: 500,
            ffs: 400,
            bram_kbits: 32,
            mults: 1,
            logic_levels: 5,
        }
    }

    #[test]
    fn generated_bitstream_verifies() {
        let bs = Bitstream::generate(&FabricSpec::k6_frac_n10_mem32k(), &netlist());
        assert!(bs.len_words() > 0);
        assert!(bs.verify());
    }

    #[test]
    fn corruption_detected() {
        let mut bs = Bitstream::generate(&FabricSpec::k6_frac_n10_mem32k(), &netlist());
        bs.corrupt(7);
        assert!(!bs.verify(), "integrity check must catch corruption");
    }

    #[test]
    fn deterministic_generation() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        let a = Bitstream::generate(&f, &netlist());
        let b = Bitstream::generate(&f, &netlist());
        assert_eq!(a, b);
    }

    #[test]
    fn size_scales_with_design() {
        let f = FabricSpec::k6_frac_n10_mem32k();
        let small = Bitstream::generate(&f, &netlist());
        let big = Bitstream::generate(
            &f,
            &NetlistSummary {
                name: "big",
                luts: 20_000,
                ffs: 10_000,
                bram_kbits: 512,
                mults: 16,
                logic_levels: 8,
            },
        );
        assert!(big.len_words() > small.len_words());
    }
}
