//! The fabric-side interfaces between soft accelerators and the Duet
//! Adapter.
//!
//! The paper's Proxy Cache exposes "a simple memory interface" to the eFPGA
//! (Sec. II-C): two request types (Load and Store, plus optional atomics)
//! and three response types (LoadAck, StoreAck, Invalidation), delivered
//! strictly in order through the asynchronous FIFOs. This module defines
//! those message types, the [`HubPort`]/[`RegPort`] wrappers accelerators
//! use, and the [`SoftAccelerator`] trait every fabric design implements.

use duet_mem::types::{Addr, AmoOp, LineAddr, LineData, Width};
use duet_sim::{Clock, LatencyBreakdown, Link, Time};
use duet_trace::{EventKind, Tracer};

/// Operations an accelerator may issue to a Memory Hub.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpgaMemOp {
    /// Load a full 16-byte line ("the eFPGA can load up to one line per
    /// cycle", Sec. V-C).
    LoadLine,
    /// Store up to 8 bytes (the Dolly L2 "only supports stores up to
    /// 8 Bytes").
    Store(Width),
    /// Atomic read-modify-write (enabled by a feature switch; requires the
    /// soft side to understand the extra message types, Sec. II-C).
    Amo(AmoOp, Width),
}

/// A request from the fabric to a Memory Hub.
#[derive(Clone, Copy, Debug)]
pub struct FpgaMemReq {
    /// Fabric-chosen id echoed in the matching response.
    pub id: u64,
    /// Operation.
    pub op: FpgaMemOp,
    /// Byte address (virtual if the hub's TLB is enabled, else physical).
    pub addr: Addr,
    /// Store/AMO operand.
    pub wdata: u64,
    /// CAS expected value.
    pub expected: u64,
    /// When the fabric issued this request (slow-domain edge) — lets the
    /// hub attribute the request-side CDC crossing.
    pub issued_at: Time,
}

/// The payload of a hub-to-fabric response.
#[derive(Clone, Copy, Debug)]
pub enum FpgaRespKind {
    /// Line fill completing a `LoadLine`.
    LoadAck {
        /// The filled line.
        data: LineData,
    },
    /// Completion of a `Store` (the old value for AMOs rides in `old`).
    StoreAck {
        /// Previous value (AMOs only; zero otherwise).
        old: u64,
    },
    /// Invalidation forwarded from the Proxy Cache. Not a reply to any
    /// request; `id` is zero. Carries the *fabric-visible* line address
    /// (virtual when the soft cache is VIVT — the Proxy Cache reverse-maps
    /// using the stored VPN, Sec. II-D).
    Inv {
        /// Line to invalidate.
        line: LineAddr,
    },
}

/// A response (or invalidation) from a Memory Hub to the fabric. Delivered
/// in hub order via the async FIFO — the ordering guarantee the ack-free
/// proxy protocol relies on.
#[derive(Clone, Copy, Debug)]
pub struct FpgaMemResp {
    /// Echo of the request id (zero for invalidations).
    pub id: u64,
    /// Payload.
    pub kind: FpgaRespKind,
    /// Latency attribution accumulated across the whole transaction.
    pub breakdown: LatencyBreakdown,
}

/// Hub-to-fabric soft-register traffic (pushed by the Control Hub).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegDown {
    /// A value written by a processor through a shadowed register or
    /// FPGA-bound FIFO.
    ShadowWrite {
        /// Register index.
        reg: u8,
        /// Written value.
        value: u64,
    },
    /// A read of a normal (non-shadowed) soft register: the fabric must
    /// answer with [`RegUp::ReadResp`] carrying the same `txn`.
    ReadReq {
        /// Transaction id.
        txn: u64,
        /// Register index.
        reg: u8,
    },
    /// A write to a normal soft register: the fabric must acknowledge with
    /// [`RegUp::WriteAck`].
    WriteReq {
        /// Transaction id.
        txn: u64,
        /// Register index.
        reg: u8,
        /// Written value.
        value: u64,
    },
}

/// Fabric-to-hub soft-register traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegUp {
    /// Pushes a value toward the processors: feeds a CPU-bound FIFO, a
    /// plain shadow register's fast-domain copy, or a token FIFO
    /// (value-less, value ignored).
    Push {
        /// Register index.
        reg: u8,
        /// Pushed value.
        value: u64,
    },
    /// Reply to [`RegDown::ReadReq`].
    ReadResp {
        /// Transaction id being answered.
        txn: u64,
        /// Read value.
        value: u64,
    },
    /// Acknowledgement of [`RegDown::WriteReq`].
    WriteAck {
        /// Transaction id being acknowledged.
        txn: u64,
    },
}

mod pack_impls {
    use duet_mem::types::{AmoOp, LineAddr, LineData, Width};
    use duet_sim::{LatencyBreakdown, Pack, SnapError, SnapReader, SnapWriter, Time};

    use super::{FpgaMemOp, FpgaMemReq, FpgaMemResp, FpgaRespKind, RegDown, RegUp};

    impl Pack for FpgaMemOp {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                FpgaMemOp::LoadLine => w.u8(0),
                FpgaMemOp::Store(width) => {
                    w.u8(1);
                    width.pack(w);
                }
                FpgaMemOp::Amo(op, width) => {
                    w.u8(2);
                    op.pack(w);
                    width.pack(w);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => FpgaMemOp::LoadLine,
                1 => FpgaMemOp::Store(Width::unpack(r)?),
                2 => FpgaMemOp::Amo(AmoOp::unpack(r)?, Width::unpack(r)?),
                _ => return Err(SnapError::Corrupt("invalid FpgaMemOp discriminant")),
            })
        }
    }

    impl Pack for FpgaMemReq {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.id);
            self.op.pack(w);
            w.u64(self.addr);
            w.u64(self.wdata);
            w.u64(self.expected);
            self.issued_at.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(FpgaMemReq {
                id: r.u64()?,
                op: FpgaMemOp::unpack(r)?,
                addr: r.u64()?,
                wdata: r.u64()?,
                expected: r.u64()?,
                issued_at: Time::unpack(r)?,
            })
        }
    }

    impl Pack for FpgaRespKind {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                FpgaRespKind::LoadAck { data } => {
                    w.u8(0);
                    data.pack(w);
                }
                FpgaRespKind::StoreAck { old } => {
                    w.u8(1);
                    w.u64(*old);
                }
                FpgaRespKind::Inv { line } => {
                    w.u8(2);
                    line.pack(w);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => FpgaRespKind::LoadAck {
                    data: LineData::unpack(r)?,
                },
                1 => FpgaRespKind::StoreAck { old: r.u64()? },
                2 => FpgaRespKind::Inv {
                    line: LineAddr::unpack(r)?,
                },
                _ => return Err(SnapError::Corrupt("invalid FpgaRespKind discriminant")),
            })
        }
    }

    impl Pack for FpgaMemResp {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.id);
            self.kind.pack(w);
            self.breakdown.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(FpgaMemResp {
                id: r.u64()?,
                kind: FpgaRespKind::unpack(r)?,
                breakdown: LatencyBreakdown::unpack(r)?,
            })
        }
    }

    impl Pack for RegDown {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                RegDown::ShadowWrite { reg, value } => {
                    w.u8(0);
                    w.u8(*reg);
                    w.u64(*value);
                }
                RegDown::ReadReq { txn, reg } => {
                    w.u8(1);
                    w.u64(*txn);
                    w.u8(*reg);
                }
                RegDown::WriteReq { txn, reg, value } => {
                    w.u8(2);
                    w.u64(*txn);
                    w.u8(*reg);
                    w.u64(*value);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => RegDown::ShadowWrite {
                    reg: r.u8()?,
                    value: r.u64()?,
                },
                1 => RegDown::ReadReq {
                    txn: r.u64()?,
                    reg: r.u8()?,
                },
                2 => RegDown::WriteReq {
                    txn: r.u64()?,
                    reg: r.u8()?,
                    value: r.u64()?,
                },
                _ => return Err(SnapError::Corrupt("invalid RegDown discriminant")),
            })
        }
    }

    impl Pack for RegUp {
        fn pack(&self, w: &mut SnapWriter) {
            match self {
                RegUp::Push { reg, value } => {
                    w.u8(0);
                    w.u8(*reg);
                    w.u64(*value);
                }
                RegUp::ReadResp { txn, value } => {
                    w.u8(1);
                    w.u64(*txn);
                    w.u64(*value);
                }
                RegUp::WriteAck { txn } => {
                    w.u8(2);
                    w.u64(*txn);
                }
            }
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => RegUp::Push {
                    reg: r.u8()?,
                    value: r.u64()?,
                },
                1 => RegUp::ReadResp {
                    txn: r.u64()?,
                    value: r.u64()?,
                },
                2 => RegUp::WriteAck { txn: r.u64()? },
                _ => return Err(SnapError::Corrupt("invalid RegUp discriminant")),
            })
        }
    }
}

/// Fabric-side handle on one Memory Hub's request/response CDC link pair.
pub struct HubPort<'a> {
    /// Fabric → hub requests.
    pub req: &'a mut Link<FpgaMemReq>,
    /// Hub → fabric responses/invalidations.
    pub resp: &'a mut Link<FpgaMemResp>,
    /// Trace handle (events: fabric request issue / response pop). The
    /// adapter installs a live one when tracing is enabled; defaults to
    /// disabled.
    pub tracer: Tracer,
}

impl HubPort<'_> {
    /// Whether a request can be pushed right now.
    pub fn can_issue(&self, now: Time) -> bool {
        self.req.can_push(now)
    }

    /// Issues a whole-line load. Returns false if the FIFO is full.
    pub fn load_line(&mut self, now: Time, id: u64, addr: Addr) -> bool {
        self.issue(
            now,
            FpgaMemReq {
                id,
                op: FpgaMemOp::LoadLine,
                addr,
                wdata: 0,
                expected: 0,
                issued_at: now,
            },
        )
    }

    /// Issues a scalar store. Returns false if the FIFO is full.
    pub fn store(&mut self, now: Time, id: u64, addr: Addr, width: Width, value: u64) -> bool {
        self.issue(
            now,
            FpgaMemReq {
                id,
                op: FpgaMemOp::Store(width),
                addr,
                wdata: value,
                expected: 0,
                issued_at: now,
            },
        )
    }

    /// Issues an atomic. Returns false if the FIFO is full.
    #[allow(clippy::too_many_arguments)]
    pub fn amo(
        &mut self,
        now: Time,
        id: u64,
        op: AmoOp,
        addr: Addr,
        width: Width,
        value: u64,
        expected: u64,
    ) -> bool {
        self.issue(
            now,
            FpgaMemReq {
                id,
                op: FpgaMemOp::Amo(op, width),
                addr,
                wdata: value,
                expected,
                issued_at: now,
            },
        )
    }

    /// Issues a raw request. Returns false if the FIFO is full.
    pub fn issue(&mut self, now: Time, req: FpgaMemReq) -> bool {
        let (id, addr) = (req.id, req.addr);
        let ok = self.req.push(now, req).is_ok();
        if ok {
            self.tracer
                .emit(now.as_ps(), EventKind::FabricReq, id, addr);
        }
        ok
    }

    /// Pops the next visible response.
    pub fn pop_resp(&mut self, now: Time) -> Option<FpgaMemResp> {
        let r = self.resp.pop(now)?;
        let kind = match r.kind {
            FpgaRespKind::LoadAck { .. } => 0,
            FpgaRespKind::StoreAck { .. } => 1,
            FpgaRespKind::Inv { .. } => 2,
        };
        self.tracer
            .emit(now.as_ps(), EventKind::FabricResp, r.id, kind);
        Some(r)
    }
}

/// Fabric-side handle on the Control Hub's soft-register CDC link pair.
pub struct RegPort<'a> {
    /// Hub → fabric (shadow writes, normal reads/writes).
    pub down: &'a mut Link<RegDown>,
    /// Fabric → hub (pushes, read replies, write acks).
    pub up: &'a mut Link<RegUp>,
}

impl RegPort<'_> {
    /// Pops the next visible downstream event.
    pub fn pop(&mut self, now: Time) -> Option<RegDown> {
        self.down.pop(now)
    }

    /// Pushes a value toward the CPU side. Returns false if full.
    pub fn push(&mut self, now: Time, reg: u8, value: u64) -> bool {
        self.up.push(now, RegUp::Push { reg, value }).is_ok()
    }

    /// Answers a normal-register read.
    pub fn read_resp(&mut self, now: Time, txn: u64, value: u64) -> bool {
        self.up.push(now, RegUp::ReadResp { txn, value }).is_ok()
    }

    /// Acknowledges a normal-register write.
    pub fn write_ack(&mut self, now: Time, txn: u64) -> bool {
        self.up.push(now, RegUp::WriteAck { txn }).is_ok()
    }
}

/// Everything a soft accelerator can touch during one slow-clock edge.
pub struct FabricPorts<'a> {
    /// Current time (a slow-clock edge).
    pub now: Time,
    /// The eFPGA clock.
    pub clock: Clock,
    /// One port per Memory Hub available to this accelerator.
    pub hubs: Vec<HubPort<'a>>,
    /// The soft-register port.
    pub regs: RegPort<'a>,
}

/// A fabric design: a timed state machine ticked on every eFPGA clock edge.
///
/// Implementations model the RTL/HLS accelerators of Sec. V-D: they may
/// take multiple ticks per result (pipeline depth / initiation interval)
/// and interact with the system only through [`FabricPorts`].
pub trait SoftAccelerator {
    /// Human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Advances the design by one eFPGA clock edge.
    fn tick(&mut self, ports: &mut FabricPorts<'_>);

    /// Resource summary for the fabric area/frequency model (Table II).
    fn netlist(&self) -> crate::fabric::NetlistSummary;

    /// Resets all internal state (on reconfiguration or feature-switch
    /// reset).
    fn reset(&mut self) {}

    /// Serializes the design's internal state for a system snapshot. The
    /// default writes nothing — correct only for stateless designs. A
    /// design with any internal state (FSM phase, counters, soft caches,
    /// register endpoints) must override both this and
    /// [`load_state`](SoftAccelerator::load_state), or a restored run will
    /// silently diverge from the uninterrupted one.
    fn save_state(&self, _w: &mut duet_sim::SnapWriter) {}

    /// Restores state written by [`save_state`](SoftAccelerator::save_state)
    /// into an already-constructed (freshly built) design.
    fn load_state(&mut self, _r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        Ok(())
    }

    /// Whether the design attests that, with no input visible on any of its
    /// ports, [`tick`](SoftAccelerator::tick) neither changes observable
    /// state nor produces output. The engine uses this to skip provably-dead
    /// eFPGA clock edges (event-horizon scheduling); it re-checks the ports
    /// itself, so an implementation only vouches for its *internal* state:
    /// no in-flight operation, no undelivered result, no unconsumed command.
    ///
    /// Returning `false` is always safe (every slow edge then executes, as
    /// exhaustive ticking would) — which is why it is the default. Returning
    /// `true` while internal work remains breaks cycle accuracy.
    fn is_idle(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_port_roundtrip_through_async_fifos() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut req = Link::cdc(4, 2, slow, fast);
        let mut resp = Link::cdc(4, 2, fast, slow);
        let t_slow = Time::from_ps(10_000);
        {
            let mut port = HubPort {
                req: &mut req,
                resp: &mut resp,
                tracer: Tracer::disabled(),
            };
            assert!(port.load_line(t_slow, 1, 0x40));
        }
        // Hub (fast side) sees it after 2 fast edges.
        let seen = req.pop(Time::from_ps(12_000)).expect("visible to hub");
        assert_eq!(seen.id, 1);
        assert!(matches!(seen.op, FpgaMemOp::LoadLine));
        // Hub replies; fabric sees it after 2 slow edges.
        resp.push(
            Time::from_ps(15_000),
            FpgaMemResp {
                id: 1,
                kind: FpgaRespKind::LoadAck { data: [7; 16] },
                breakdown: LatencyBreakdown::new(),
            },
        )
        .unwrap();
        let mut port = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert!(port.pop_resp(Time::from_ps(20_000)).is_none());
        let r = port
            .pop_resp(Time::from_ps(30_000))
            .expect("after 2 slow edges");
        assert!(matches!(r.kind, FpgaRespKind::LoadAck { data } if data[0] == 7));
    }

    #[test]
    fn reg_port_push_and_ack() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(250.0);
        let mut down = Link::cdc(4, 2, fast, slow);
        let mut up = Link::cdc(4, 2, slow, fast);
        down.push(
            Time::from_ps(1000),
            RegDown::WriteReq {
                txn: 9,
                reg: 2,
                value: 5,
            },
        )
        .unwrap();
        let mut port = RegPort {
            down: &mut down,
            up: &mut up,
        };
        // Visible after 2 slow edges (4000, 8000).
        assert_eq!(port.pop(Time::from_ps(4000)), None);
        let ev = port.pop(Time::from_ps(8000)).unwrap();
        assert_eq!(
            ev,
            RegDown::WriteReq {
                txn: 9,
                reg: 2,
                value: 5
            }
        );
        assert!(port.write_ack(Time::from_ps(8000), 9));
        assert_eq!(
            up.pop(Time::from_ps(10_000)),
            Some(RegUp::WriteAck { txn: 9 })
        );
    }
}
