//! The eFPGA-emulated **soft cache** (Sec. II-C of the paper).
//!
//! A soft cache is built out of fabric BRAMs and tightly integrated into an
//! accelerator's datapath. The Proxy Cache's ack-free protocol imposes two
//! rules, both enforced here:
//!
//! * the soft cache is **write-through** (a store is never globally visible
//!   until the Proxy Cache acknowledges it), with an optional bounded
//!   **write buffer**;
//! * invalidations, line fills, and write acks arrive strictly in the order
//!   the Proxy Cache sent them, and the soft cache applies them in that
//!   order without ever acknowledging back.
//!
//! Read-after-write forwarding from the write buffer is configurable — "it
//! is up to the accelerator designer ... whether read-after-write
//! forwarding is compatible with the consistency assumptions of the
//! application".

use std::collections::VecDeque;

use duet_mem::array::CacheArray;
use duet_mem::types::{read_scalar, write_scalar, Addr, LineAddr, Width};
use duet_sim::Time;

use crate::ports::{FpgaMemResp, FpgaRespKind, HubPort};

/// Soft-cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct SoftCacheConfig {
    /// Sets (power of two).
    pub sets: usize,
    /// Ways.
    pub ways: usize,
    /// Write-buffer entries (0 disables buffering: stores block).
    pub write_buffer: usize,
    /// Allocate lines on store miss (write-allocate) or not. The Proxy
    /// Cache supports both (Sec. II-C).
    pub write_allocate: bool,
    /// Forward pending write-buffer data to loads (RAW forwarding).
    pub raw_forwarding: bool,
}

impl SoftCacheConfig {
    /// A typical BRAM-built cache: 2 KB, 2-way, 4-entry write buffer,
    /// write-allocate, RAW forwarding on.
    pub fn typical() -> Self {
        SoftCacheConfig {
            sets: 64,
            ways: 2,
            write_buffer: 4,
            write_allocate: true,
            raw_forwarding: true,
        }
    }
}

/// Event counters for a soft cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoftCacheStats {
    /// Load hits (including RAW forwards).
    pub hits: u64,
    /// Load misses (fills requested).
    pub misses: u64,
    /// Stores accepted.
    pub stores: u64,
    /// Invalidations applied.
    pub invalidations: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingStore {
    id: u64,
    addr: Addr,
    width: Width,
    value: u64,
    sent: bool,
}

/// The soft cache. The owning accelerator calls [`load`](SoftCache::load) /
/// [`store`](SoftCache::store) from its datapath and must call
/// [`tick`](SoftCache::tick) once per eFPGA clock edge with the hub port it
/// uses.
pub struct SoftCache {
    cfg: SoftCacheConfig,
    array: CacheArray<()>,
    wbuf: VecDeque<PendingStore>,
    /// Lines with an outstanding fill, so duplicate fills aren't issued.
    pending_fills: Vec<(u64, LineAddr)>,
    id_next: u64,
    stats: SoftCacheStats,
}

impl SoftCache {
    /// Creates an empty soft cache. `id_base` namespaces its request ids so
    /// they never collide with the owning accelerator's own hub requests.
    pub fn new(cfg: SoftCacheConfig, id_base: u64) -> Self {
        SoftCache {
            cfg,
            array: CacheArray::new(cfg.sets, cfg.ways),
            wbuf: VecDeque::new(),
            pending_fills: Vec::new(),
            id_next: id_base,
            stats: SoftCacheStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> SoftCacheStats {
        self.stats
    }

    /// Whether this response id belongs to the soft cache.
    pub fn owns_id(&self, id: u64) -> bool {
        self.pending_fills.iter().any(|(i, _)| *i == id) || self.wbuf.iter().any(|s| s.id == id)
    }

    /// Number of buffered (not yet acknowledged) stores.
    pub fn pending_stores(&self) -> usize {
        self.wbuf.len()
    }

    /// Whether a fill for `line` is outstanding.
    pub fn fill_pending(&self, line: LineAddr) -> bool {
        self.pending_fills.iter().any(|(_, l)| *l == line)
    }

    /// Attempts a load. `Some(value)` on a hit (or RAW forward); `None` on
    /// a miss, in which case a fill is requested through `hub` (if the
    /// request FIFO has space) and the caller should retry on later ticks.
    pub fn load(
        &mut self,
        now: Time,
        addr: Addr,
        width: Width,
        hub: &mut HubPort<'_>,
    ) -> Option<u64> {
        if self.cfg.raw_forwarding {
            if let Some(s) = self
                .wbuf
                .iter()
                .rev()
                .find(|s| s.addr == addr && s.width == width)
            {
                self.stats.hits += 1;
                return Some(s.value);
            }
        }
        let line = LineAddr::containing(addr);
        if let Some((_, data)) = self.array.get(line) {
            self.stats.hits += 1;
            return Some(read_scalar(data, LineAddr::offset(addr), width));
        }
        if !self.fill_pending(line) && hub.can_issue(now) {
            self.stats.misses += 1;
            let id = self.alloc_id();
            hub.load_line(now, id, line.base());
            self.pending_fills.push((id, line));
        }
        None
    }

    /// Attempts a store (write-through). Returns false if the write buffer
    /// is full; the caller retries on a later tick.
    pub fn store(&mut self, addr: Addr, width: Width, value: u64) -> bool {
        if self.wbuf.len() >= self.cfg.write_buffer.max(1) {
            return false;
        }
        self.stats.stores += 1;
        // Update the local copy so subsequent loads see the new value
        // (write-allocate installs nothing until the fill path does).
        let line = LineAddr::containing(addr);
        if let Some((_, data)) = self.array.get_mut(line) {
            write_scalar(data, LineAddr::offset(addr), width, value);
        }
        let id = self.alloc_id();
        self.wbuf.push_back(PendingStore {
            id,
            addr,
            width,
            value,
            sent: false,
        });
        true
    }

    /// Processes hub responses addressed to this cache and pumps the write
    /// buffer. The accelerator should pass every response whose id
    /// [`owns_id`](SoftCache::owns_id) (and every `Inv`) to
    /// [`handle_resp`](SoftCache::handle_resp); `tick` only pumps writes.
    pub fn tick(&mut self, now: Time, hub: &mut HubPort<'_>) {
        if let Some(s) = self.wbuf.iter_mut().find(|s| !s.sent) {
            if hub.can_issue(now) {
                let (id, addr, width, value) = (s.id, s.addr, s.width, s.value);
                s.sent = true;
                hub.store(now, id, addr, width, value);
            }
        }
    }

    /// Applies one hub response: a line fill, a store ack, or an
    /// invalidation. Invalidations are applied unconditionally and never
    /// acknowledged (the ack-free protocol).
    pub fn handle_resp(&mut self, resp: &FpgaMemResp) {
        match resp.kind {
            FpgaRespKind::LoadAck { data } => {
                if let Some(pos) = self.pending_fills.iter().position(|(i, _)| *i == resp.id) {
                    let (_, line) = self.pending_fills.remove(pos);
                    let mut d = data;
                    // Replay newer buffered stores over the fill so the
                    // local copy stays ahead of (never behind) the buffer.
                    for s in &self.wbuf {
                        if LineAddr::containing(s.addr) == line {
                            write_scalar(&mut d, LineAddr::offset(s.addr), s.width, s.value);
                        }
                    }
                    self.array.insert(line, d, ());
                }
            }
            FpgaRespKind::StoreAck { .. } => {
                if let Some(pos) = self.wbuf.iter().position(|s| s.id == resp.id) {
                    self.wbuf.remove(pos);
                }
            }
            FpgaRespKind::Inv { line } => {
                self.stats.invalidations += 1;
                self.array.remove(line);
                // A pending fill for this line will deliver data that was
                // valid when the Proxy Cache sent it — and the FIFO
                // guarantees the fill was sent *before* this Inv if it
                // arrives before it. A fill arriving after the Inv is newer
                // data; keep it. Nothing to do here.
            }
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.id_next;
        self.id_next += 1;
        id
    }
}

mod snap_impls {
    use duet_mem::types::{LineAddr, Width};
    use duet_sim::{Pack, Snap, SnapError, SnapReader, SnapWriter};

    use super::{PendingStore, SoftCache, SoftCacheStats};

    impl Pack for PendingStore {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.id);
            w.u64(self.addr);
            self.width.pack(w);
            w.u64(self.value);
            self.sent.pack(w);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(PendingStore {
                id: r.u64()?,
                addr: r.u64()?,
                width: Width::unpack(r)?,
                value: r.u64()?,
                sent: bool::unpack(r)?,
            })
        }
    }

    impl Pack for SoftCacheStats {
        fn pack(&self, w: &mut SnapWriter) {
            w.u64(self.hits);
            w.u64(self.misses);
            w.u64(self.stores);
            w.u64(self.invalidations);
        }
        fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(SoftCacheStats {
                hits: r.u64()?,
                misses: r.u64()?,
                stores: r.u64()?,
                invalidations: r.u64()?,
            })
        }
    }

    impl Snap for SoftCache {
        fn save(&self, w: &mut SnapWriter) {
            self.array.save(w);
            self.wbuf.pack(w);
            self.pending_fills.pack(w);
            w.u64(self.id_next);
            self.stats.pack(w);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.array.load(r)?;
            self.wbuf = Pack::unpack(r)?;
            self.pending_fills = Vec::<(u64, LineAddr)>::unpack(r)?;
            self.id_next = r.u64()?;
            self.stats = SoftCacheStats::unpack(r)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_sim::{Clock, LatencyBreakdown, Link};
    use duet_trace::Tracer;

    fn ports() -> (Link<crate::ports::FpgaMemReq>, Link<FpgaMemResp>) {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        (Link::cdc(8, 2, slow, fast), Link::cdc(8, 2, fast, slow))
    }

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let (mut req, mut resp) = ports();
        let mut sc = SoftCache::new(SoftCacheConfig::typical(), 1 << 32);
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(sc.load(t(10_000), 0x100, Width::B8, &mut hub), None);
        assert!(sc.fill_pending(LineAddr::containing(0x100)));
        // Second load while pending doesn't duplicate the fill.
        assert_eq!(sc.load(t(20_000), 0x100, Width::B8, &mut hub), None);
        assert_eq!(sc.stats().misses, 1);
        // Fill arrives.
        let mut data = [0u8; 16];
        write_scalar(&mut data, 0, Width::B8, 42);
        let fill = FpgaMemResp {
            id: 1 << 32,
            kind: FpgaRespKind::LoadAck { data },
            breakdown: LatencyBreakdown::new(),
        };
        sc.handle_resp(&fill);
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(sc.load(t(30_000), 0x100, Width::B8, &mut hub), Some(42));
        assert_eq!(sc.stats().hits, 1);
    }

    #[test]
    fn write_through_with_buffer_and_ack() {
        let (mut req, mut resp) = ports();
        let mut sc = SoftCache::new(SoftCacheConfig::typical(), 1 << 32);
        assert!(sc.store(0x200, Width::B8, 7));
        assert_eq!(sc.pending_stores(), 1);
        {
            let mut hub = HubPort {
                req: &mut req,
                resp: &mut resp,
                tracer: Tracer::disabled(),
            };
            sc.tick(t(10_000), &mut hub);
        }
        // The store went through the request FIFO.
        let sent = req.pop(t(12_000)).expect("store sent to hub");
        assert_eq!(sent.wdata, 7);
        // Ack retires the buffer entry.
        sc.handle_resp(&FpgaMemResp {
            id: sent.id,
            kind: FpgaRespKind::StoreAck { old: 0 },
            breakdown: LatencyBreakdown::new(),
        });
        assert_eq!(sc.pending_stores(), 0);
    }

    #[test]
    fn raw_forwarding_serves_buffered_store() {
        let (mut req, mut resp) = ports();
        let mut sc = SoftCache::new(SoftCacheConfig::typical(), 1 << 32);
        assert!(sc.store(0x300, Width::B8, 9));
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(sc.load(t(10_000), 0x300, Width::B8, &mut hub), Some(9));
    }

    #[test]
    fn raw_forwarding_can_be_disabled() {
        let (mut req, mut resp) = ports();
        let cfg = SoftCacheConfig {
            raw_forwarding: false,
            ..SoftCacheConfig::typical()
        };
        let mut sc = SoftCache::new(cfg, 1 << 32);
        assert!(sc.store(0x300, Width::B8, 9));
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(sc.load(t(10_000), 0x300, Width::B8, &mut hub), None);
    }

    #[test]
    fn invalidation_removes_line_without_ack() {
        let (mut req, mut resp) = ports();
        let mut sc = SoftCache::new(SoftCacheConfig::typical(), 1 << 32);
        // Install a line via fill.
        {
            let mut hub = HubPort {
                req: &mut req,
                resp: &mut resp,
                tracer: Tracer::disabled(),
            };
            sc.load(t(10_000), 0x400, Width::B8, &mut hub);
        }
        let id = req.pop(t(12_000)).unwrap().id;
        sc.handle_resp(&FpgaMemResp {
            id,
            kind: FpgaRespKind::LoadAck { data: [5; 16] },
            breakdown: LatencyBreakdown::new(),
        });
        // Invalidate it.
        sc.handle_resp(&FpgaMemResp {
            id: 0,
            kind: FpgaRespKind::Inv {
                line: LineAddr::containing(0x400),
            },
            breakdown: LatencyBreakdown::new(),
        });
        assert_eq!(sc.stats().invalidations, 1);
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(
            sc.load(t(20_000), 0x400, Width::B8, &mut hub),
            None,
            "line gone after Inv"
        );
        // No message was pushed back toward the hub by the Inv itself
        // (ack-free): the only new request is the re-fill just issued.
        let m = req.pop(t(22_000)).unwrap();
        assert!(matches!(m.op, crate::ports::FpgaMemOp::LoadLine));
        assert!(req.pop(t(24_000)).is_none());
    }

    #[test]
    fn write_buffer_capacity_blocks() {
        let (mut _req, mut _resp) = ports();
        let cfg = SoftCacheConfig {
            write_buffer: 2,
            ..SoftCacheConfig::typical()
        };
        let mut sc = SoftCache::new(cfg, 0);
        assert!(sc.store(0x0, Width::B8, 1));
        assert!(sc.store(0x8, Width::B8, 2));
        assert!(!sc.store(0x10, Width::B8, 3), "buffer full");
    }

    #[test]
    fn fill_replays_newer_buffered_stores() {
        // Store to a missing line (write-allocate), then the fill arrives:
        // the installed line must reflect the buffered store.
        let (mut req, mut resp) = ports();
        let mut sc = SoftCache::new(SoftCacheConfig::typical(), 1 << 32);
        assert!(sc.store(0x500, Width::B8, 0xAA));
        {
            let mut hub = HubPort {
                req: &mut req,
                resp: &mut resp,
                tracer: Tracer::disabled(),
            };
            // Trigger a fill via a load to the other half of the line.
            assert_eq!(sc.load(t(10_000), 0x508, Width::B8, &mut hub), None);
        }
        let fill_req = {
            let m = req.pop(t(12_000)).unwrap();
            assert!(matches!(m.op, crate::ports::FpgaMemOp::LoadLine));
            m
        };
        sc.handle_resp(&FpgaMemResp {
            id: fill_req.id,
            kind: FpgaRespKind::LoadAck { data: [0; 16] },
            breakdown: LatencyBreakdown::new(),
        });
        let mut hub = HubPort {
            req: &mut req,
            resp: &mut resp,
            tracer: Tracer::disabled(),
        };
        assert_eq!(
            sc.load(t(20_000), 0x500, Width::B8, &mut hub),
            Some(0xAA),
            "buffered store replayed over the fill"
        );
    }
}
