//! The hard-component area/frequency database (Table I of the paper) and
//! the Area-Delay-Product accounting rules of Fig. 12.
//!
//! Table I is reported synthesis data (Synopsys DC + FreePDK45 + published
//! Ariane/OpenPiton numbers); we cannot re-run those flows, so the values
//! are carried as a database and consumed exactly the way the paper
//! consumes them: per-configuration silicon area sums feeding the ADP
//! metric.

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentArea {
    /// Component name.
    pub name: &'static str,
    /// Source technology the number was reported in.
    pub technology: &'static str,
    /// Area in the source technology, mm².
    pub area_mm2: f64,
    /// Typical frequency in the source technology, MHz.
    pub freq_mhz: f64,
    /// Area scaled to 45 nm with a linear MOSFET scaling model, mm².
    pub scaled_area_mm2: f64,
    /// Frequency scaled to 45 nm, MHz.
    pub scaled_freq_mhz: f64,
}

/// Ariane core (GlobalFoundries 22 nm FDX; Zaruba & Benini 2019).
pub const ARIANE: ComponentArea = ComponentArea {
    name: "Ariane",
    technology: "GlobalFoundries 22nm FDX",
    area_mm2: 0.39,
    freq_mhz: 910.0,
    scaled_area_mm2: 1.56,
    scaled_freq_mhz: 455.0,
};

/// P-Mesh socket: L2, NoC routers, L3 shard (IBM 32 nm SOI; OpenPiton).
pub const PMESH_SOCKET: ComponentArea = ComponentArea {
    name: "P-Mesh Socket",
    technology: "IBM 32nm SOI",
    area_mm2: 0.55,
    freq_mhz: 1000.0,
    scaled_area_mm2: 1.1,
    scaled_freq_mhz: 711.0,
};

/// FPGA Manager + Soft Register Interface (FreePDK45 synthesis).
pub const FPGA_MGR_SOFT_REG: ComponentArea = ComponentArea {
    name: "FPGA Mgr + Soft Reg Intf",
    technology: "FreePDK45",
    area_mm2: 0.21,
    freq_mhz: 925.0,
    scaled_area_mm2: 0.21,
    scaled_freq_mhz: 925.0,
};

/// The coherent memory interface added to the P-Mesh L2 (the Proxy Cache
/// glue; FreePDK45 synthesis).
pub const COHERENT_MEM_INTF: ComponentArea = ComponentArea {
    name: "Coherent Memory Intf",
    technology: "FreePDK45",
    area_mm2: 0.04,
    freq_mhz: 1250.0,
    scaled_area_mm2: 0.04,
    scaled_freq_mhz: 1250.0,
};

/// All rows of Table I, in paper order.
pub fn table1() -> Vec<ComponentArea> {
    vec![ARIANE, PMESH_SOCKET, FPGA_MGR_SOFT_REG, COHERENT_MEM_INTF]
}

/// Area of one Ariane + one P-Mesh socket — the normalization unit of
/// Table II and Fig. 12 ("normalized to 1x Ariane + 1x P-Mesh Socket").
pub fn base_tile_area_mm2() -> f64 {
    ARIANE.scaled_area_mm2 + PMESH_SOCKET.scaled_area_mm2
}

/// Silicon-area accounting of Fig. 12 for one system configuration.
///
/// * processor-only: `p` cores × (Ariane + socket),
/// * FPSoC-like: adds the eFPGA fabric,
/// * Duet: further adds the Duet Adapters (Control Hub socket + per-hub
///   coherent memory interfaces + FPGA manager/soft-register interface).
#[derive(Clone, Copy, Debug)]
pub struct AreaModel {
    /// Number of processor tiles.
    pub processors: usize,
    /// Number of Memory Hubs (0 for processor-only / none used).
    pub memory_hubs: usize,
    /// eFPGA fabric silicon area, mm² (0 for processor-only).
    pub fabric_mm2: f64,
}

impl AreaModel {
    /// Total area of the processor-only baseline, mm².
    pub fn processor_only_mm2(&self) -> f64 {
        self.processors as f64 * base_tile_area_mm2()
    }

    /// Total area of the FPSoC-like configuration, mm²: baseline plus the
    /// fabric (the FPSoC integrates the FPGA behind a centralized
    /// interconnect with no adapters).
    pub fn fpsoc_mm2(&self) -> f64 {
        self.processor_only_mm2() + self.fabric_mm2
    }

    /// Total area of the Duet configuration, mm²: FPSoC plus the Duet
    /// Adapter tiles. Each adapter tile reuses a P-Mesh socket (C/M tiles
    /// carry L2+router+L3 shard like any tile) plus the hub-specific logic.
    pub fn duet_mm2(&self) -> f64 {
        let adapter_tiles = self.memory_hubs.max(1); // >=1 C-tile when an eFPGA exists
        let adapters = adapter_tiles as f64
            * (PMESH_SOCKET.scaled_area_mm2 + COHERENT_MEM_INTF.scaled_area_mm2)
            + FPGA_MGR_SOFT_REG.scaled_area_mm2;
        if self.fabric_mm2 == 0.0 {
            // No eFPGA at all: pure processor system.
            self.processor_only_mm2()
        } else {
            self.fpsoc_mm2() + adapters
        }
    }
}

/// Area-Delay Product, normalized: `(area / base_area) * (time / base_time)`.
pub fn normalized_adp(
    area_mm2: f64,
    runtime_ps: u64,
    base_area_mm2: f64,
    base_runtime_ps: u64,
) -> f64 {
    (area_mm2 / base_area_mm2) * (runtime_ps as f64 / base_runtime_ps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].name, "Ariane");
        assert_eq!(t[0].scaled_area_mm2, 1.56);
        assert_eq!(t[1].scaled_freq_mhz, 711.0);
        assert_eq!(t[3].area_mm2, 0.04);
    }

    #[test]
    fn base_tile_is_ariane_plus_socket() {
        assert!((base_tile_area_mm2() - 2.66).abs() < 1e-9);
    }

    #[test]
    fn area_ordering_proconly_fpsoc_duet() {
        let m = AreaModel {
            processors: 4,
            memory_hubs: 1,
            fabric_mm2: 5.0,
        };
        assert!(m.processor_only_mm2() < m.fpsoc_mm2());
        assert!(m.fpsoc_mm2() < m.duet_mm2());
    }

    #[test]
    fn adapter_overhead_is_small() {
        // The paper's headline: "the Duet Adapter introduces negligible
        // hardware overhead". Adapter area must be well under one core.
        let m = AreaModel {
            processors: 1,
            memory_hubs: 1,
            fabric_mm2: 1.0,
        };
        let adapter = m.duet_mm2() - m.fpsoc_mm2();
        assert!(
            adapter < base_tile_area_mm2(),
            "adapter {adapter} mm2 too big"
        );
    }

    #[test]
    fn normalized_adp_identity() {
        assert_eq!(normalized_adp(2.0, 100, 2.0, 100), 1.0);
        // Half the time at double the area = same ADP.
        assert!((normalized_adp(4.0, 50, 2.0, 100) - 1.0).abs() < 1e-12);
    }
}
