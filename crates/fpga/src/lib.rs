#![warn(missing_docs)]
//! # duet-fpga
//!
//! The embedded-FPGA substrate of the Duet reproduction:
//!
//! * [`ports`] — the fabric-side protocol of the Duet Adapter: Load/Store
//!   (+optional atomics) requests; LoadAck/StoreAck/Invalidation responses
//!   delivered in order; the soft-register up/down streams; and the
//!   [`ports::SoftAccelerator`] trait all fabric designs implement,
//! * [`soft_cache`] — the eFPGA-emulated, write-through soft cache with
//!   write buffer and configurable RAW forwarding (Sec. II-C),
//! * [`fabric`] — the island-style fabric resource/area/Fmax model standing
//!   in for the PRGA + Yosys + VTR flow (calibrated against Table II),
//! * [`bitstream`] — configuration bitstreams with integrity checking
//!   (Sec. II-E),
//! * [`area`] — the Table I hard-component database and the ADP accounting
//!   of Fig. 12.
//!
//! # Example: sizing an accelerator on the fabric
//!
//! ```
//! use duet_fpga::fabric::{FabricSpec, NetlistSummary};
//!
//! let fabric = FabricSpec::k6_frac_n10_mem32k();
//! let report = fabric.implement(&NetlistSummary {
//!     name: "popcount",
//!     luts: 1200,
//!     ffs: 900,
//!     bram_kbits: 64,
//!     mults: 0,
//!     logic_levels: 6,
//! });
//! assert!(report.fmax_mhz > 50.0 && report.clb_util <= 1.0);
//! ```

pub mod area;
pub mod bitstream;
pub mod fabric;
pub mod ports;
pub mod regfile;
pub mod soft_cache;

pub use area::{normalized_adp, AreaModel, ComponentArea};
pub use bitstream::Bitstream;
pub use fabric::{FabricSpec, ImplReport, NetlistSummary};
pub use ports::{
    FabricPorts, FpgaMemOp, FpgaMemReq, FpgaMemResp, FpgaRespKind, HubPort, RegDown, RegPort,
    RegUp, SoftAccelerator,
};
pub use regfile::{FabricRegFile, FabricRegKind};
pub use soft_cache::{SoftCache, SoftCacheConfig, SoftCacheStats};
