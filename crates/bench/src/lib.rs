//! Shared helpers for the benchmark harness binaries.
