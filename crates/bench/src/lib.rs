//! Shared helpers for the benchmark harness binaries: a dependency-free
//! parallel sweep runner and wall-clock throughput reporting.
//!
//! Every figure/table harness runs many *independent* simulations (one per
//! (configuration, variant) cell). [`parallel_map`] fans them out across a
//! scoped thread pool — results come back in input order, so the printed
//! tables are byte-identical to a sequential run — and each binary ends
//! with a `throughput:` line giving edges/sec and simulated-ns/sec.
//!
//! Thread count: `--threads N` on the command line, else the
//! `DUET_BENCH_THREADS` environment variable, else all available cores.
//!
//! Tracing: every harness accepts `--trace <path>` (or `--trace=<path>`,
//! or the `DUET_TRACE` environment variable) and writes a Chrome
//! trace-event JSON of a representative traced run to that path —
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The worker-thread count for [`parallel_map`]: `--threads N` (or
/// `--threads=N`) from the command line, else `DUET_BENCH_THREADS`, else
/// [`std::thread::available_parallelism`]. `0` from either source also
/// means "auto" (available parallelism), matching the `sim_threads`
/// convention in `duet-system`. Always at least 1.
///
/// Sweep workers multiply with *intra-run* simulation threads
/// (`SystemConfig::sim_threads` / `DUET_SIM_THREADS`): a sweep of S
/// workers each running a T-shard simulation occupies up to S×T host
/// threads. Harnesses that sweep `sim_threads` should cap the product —
/// bench_smoke runs its intra-run scaling cells with one sweep worker.
pub fn configured_threads() -> usize {
    let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return if n == 0 { auto() } else { n };
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return if n == 0 { auto() } else { n };
            }
        }
    }
    if let Ok(v) = std::env::var("DUET_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return if n == 0 { auto() } else { n };
        }
    }
    auto()
}

/// Applies `f` to every item on a scoped thread pool and returns the
/// results **in input order**. Simulations whose guts are `!Send`
/// (`Rc<RefCell<..>>` accelerators) are fine: each is built and torn down
/// entirely inside one worker. With one configured thread this degrades to
/// a plain sequential map.
pub fn parallel_map<T, R>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = items.len();
    let threads = configured_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i].lock().unwrap().take().expect("job claimed once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled its slot"))
        .collect()
}

/// [`parallel_map`] for warm-state sweeps: boot (and warm) **once**, then
/// fork per sweep point instead of re-running warmup in every worker.
///
/// `snapshot` is a [`System::snapshot`] taken at the warm point and
/// `rebuild` reconstructs the matching structure (same config, programs,
/// accelerator design) — `System` is `!Send`, so each worker rebuilds
/// locally and restores the shared bytes exactly once, no matter how many
/// sweep points it processes. `f` receives the warm base system per item
/// and forks it itself (`base.fork()`, or `base.fork_with(..)` to carry an
/// accelerator), which keeps the per-point cost at O(dirty pages).
/// Results come back in input order; one configured thread degrades to a
/// sequential loop over a single restored base.
///
/// [`System::snapshot`]: duet_system::System::snapshot
pub fn parallel_map_forked<T, R>(
    snapshot: &[u8],
    rebuild: impl Fn() -> duet_system::System + Sync,
    items: Vec<T>,
    f: impl Fn(&duet_system::System, T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let restore_base = || {
        let mut base = rebuild();
        base.restore(snapshot)
            .expect("snapshot must match the structure `rebuild` produces");
        base
    };
    let n = items.len();
    let threads = configured_threads().min(n.max(1));
    if threads <= 1 {
        let base = restore_base();
        return items.into_iter().map(|t| f(&base, t)).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut base: Option<duet_system::System> = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let base = base.get_or_insert_with(restore_base);
                    let item = jobs[i].lock().unwrap().take().expect("job claimed once");
                    let r = f(base, item);
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled its slot"))
        .collect()
}

/// The trace output path, if the user asked for one: `--trace <path>` (or
/// `--trace=<path>`) from the command line, else the `DUET_TRACE`
/// environment variable. `None` means tracing stays disabled (the
/// zero-overhead default).
pub fn configured_trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            if let Some(p) = args.next() {
                return Some(p);
            }
        } else if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.to_string());
        }
    }
    std::env::var("DUET_TRACE").ok().filter(|p| !p.is_empty())
}

/// Honors `--trace <path>` / `DUET_TRACE` for harnesses whose own sweep
/// does not capture traces: re-runs one representative scenario (the
/// proxy-cached Fig. 9 round trip at 250 MHz) with tracing enabled and
/// writes its Chrome trace-event JSON to the configured path. No-op when
/// no trace path is configured. Returns the path written, if any.
pub fn maybe_write_trace(label: &str) -> Option<String> {
    let path = configured_trace_path()?;
    let tcfg = duet_trace::TraceConfig::default();
    let (_, json) = duet_workloads::measure_latency_traced(
        duet_workloads::Mechanism::CpuPullProxy,
        250.0,
        Some(&tcfg),
    );
    let json = json.expect("tracing was enabled, so a trace must exist");
    match std::fs::write(&path, &json) {
        Ok(()) => {
            println!("# {label}: chrome trace written to {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("# {label}: failed to write trace to {path}: {e}");
            None
        }
    }
}

/// The fault-plan path, if the user asked for one: `--faults <path>` (or
/// `--faults=<path>`) from the command line, else the `DUET_FAULTS`
/// environment variable. `None` means no fault injection (the default).
pub fn configured_fault_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--faults" {
            if let Some(p) = args.next() {
                return Some(p);
            }
        } else if let Some(p) = a.strip_prefix("--faults=") {
            return Some(p.to_string());
        }
    }
    std::env::var("DUET_FAULTS").ok().filter(|p| !p.is_empty())
}

/// Honors `--faults <plan>` / `DUET_FAULTS` on the figure harnesses:
/// loads the [`duet_system::FaultPlan`] text file, runs one representative
/// accelerated scenario (the quickstart popcount on Dolly-P1M1) under that
/// plan with the runtime checkers live, and prints the outcome plus every
/// deterministic `verify.*` metric. Unreadable or unparsable plans are
/// clean errors on stderr, not panics. No-op when no plan is configured.
/// Returns the plan path on a completed run.
pub fn maybe_run_faulted(label: &str) -> Option<String> {
    use duet_cpu::asm::Asm;
    use duet_cpu::isa::regs;
    use duet_system::{System, SystemConfig};
    use std::sync::Arc;

    let path = configured_fault_path()?;
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("# {label}: cannot read fault plan {path}: {e}");
            return None;
        }
    };
    let plan = match duet_system::FaultPlan::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("# {label}: bad fault plan {path}: {e}");
            return None;
        }
    };
    println!(
        "# {label}: fault plan {path}: seed {}, {} fault(s), degrade {}",
        plan.seed,
        plan.specs.len(),
        if plan.degrade.is_some() { "on" } else { "off" },
    );
    let mut cfg = SystemConfig::dolly(1, 1, 189.0);
    cfg.faults = plan;
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, duet_core::RegMode::FpgaBound);
    sys.set_reg_mode(1, duet_core::RegMode::CpuBound);
    sys.attach_accelerator(Box::new(duet_workloads::popcount::PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().expect("static program")), "main");
    match sys.run_until_halt(duet_sim::Time::from_us(2_000)) {
        Ok(t) => println!("# {label}: faulted popcount run completed at {t}"),
        Err(e) => println!("# {label}: faulted popcount run failed:\n{e}"),
    }
    for (name, value) in sys.metrics_registry().iter() {
        if name.starts_with("verify.") {
            println!("# {label}: {name} = {value}");
        }
    }
    Some(path)
}

/// Measures wall time and simulation-throughput counters across a
/// harness's working section; [`Throughput::report`] prints the standard
/// `throughput:` line.
pub struct Throughput {
    start: Instant,
    edges0: u64,
    sim_ps0: u64,
}

impl Default for Throughput {
    fn default() -> Self {
        Self::start()
    }
}

impl Throughput {
    /// Starts the clock and snapshots the process-wide counters.
    pub fn start() -> Self {
        let (edges0, sim_ps0) = duet_system::metrics::snapshot();
        Throughput {
            start: Instant::now(),
            edges0,
            sim_ps0,
        }
    }

    /// Prints `# <label> throughput: X edges/sec, Y simulated-ns/sec
    /// (wall Zs, T threads)` from the counter deltas since `start`.
    pub fn report(&self, label: &str) {
        let wall = self.start.elapsed();
        let (edges, sim_ps) = duet_system::metrics::snapshot();
        let line = duet_system::metrics::throughput_line(
            edges.saturating_sub(self.edges0),
            sim_ps.saturating_sub(self.sim_ps0),
            wall,
        );
        println!(
            "# {label} {line} (wall {:.3}s, {} threads)",
            wall.as_secs_f64(),
            configured_threads()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |x| x * 3 + 1);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7u8], |x| x + 1), vec![8]);
    }
}
