//! Regenerates **Table I**: area and typical frequency of Dolly's hard
//! components (from the component database; the paper's numbers come from
//! published works and FreePDK45 synthesis — see DESIGN.md).
//!
//! Run: `cargo run --release -p duet-bench --bin table1`

use duet_bench::Throughput;
use duet_fpga::area::{base_tile_area_mm2, table1, AreaModel};

fn main() {
    let tp = Throughput::start();
    println!("# Table I: Area and Typical Frequency of Dolly Components");
    println!(
        "{:<26} {:<26} {:>10} {:>10} {:>12} {:>12}",
        "component", "technology", "area mm2", "freq MHz", "scaled mm2", "scaled MHz"
    );
    for c in table1() {
        println!(
            "{:<26} {:<26} {:>10.2} {:>10.0} {:>12.2} {:>12.0}",
            c.name, c.technology, c.area_mm2, c.freq_mhz, c.scaled_area_mm2, c.scaled_freq_mhz
        );
    }
    println!();
    println!(
        "# normalization unit (1x Ariane + 1x P-Mesh socket): {:.2} mm2",
        base_tile_area_mm2()
    );
    let m = AreaModel {
        processors: 1,
        memory_hubs: 1,
        fabric_mm2: 0.0,
    };
    let adapter_only = AreaModel {
        processors: 0,
        memory_hubs: 1,
        fabric_mm2: 1.0,
    };
    let adapter = adapter_only.duet_mm2() - adapter_only.fpsoc_mm2();
    println!(
        "# one Duet Adapter (C-tile socket + coherent mem intf + FPGA mgr/soft regs): {:.2} mm2",
        adapter
    );
    println!(
        "# = {:.1}% of a processor tile — the \"negligible hardware overhead\" claim",
        100.0 * adapter / m.processor_only_mm2()
    );
    duet_bench::maybe_write_trace("table1");
    duet_bench::maybe_run_faulted("table1");
    tp.report("table1");
}
