//! Bisect-to-divergence: walk two runs of the same workload — one clean,
//! one under a fault plan (or two different fault plans) — to the exact
//! first clock edge where their simulated states part ways.
//!
//! The tool runs both systems in lockstep with event-horizon edge skipping
//! disabled (so the two edge schedules are identical and edge-indexed
//! comparison is meaningful). A coarse phase advances both by a checkpoint
//! quantum, comparing [`System::divergence_fingerprint`] at each boundary
//! and snapshotting both sides while they still agree. On the first
//! mismatching boundary, a fine phase restores both sides from the
//! last-good checkpoints and single-steps them edge by edge
//! ([`System::step_edge`]) until the fingerprints differ, then reports the
//! divergent edge and every metric that differs at that instant.
//!
//! ```text
//! bisect_divergence [--faults <plan.txt>] [--faults-b <plan.txt>]
//!                   [--quantum-ns N] [--until-us N] [--out <report.txt>]
//! ```
//!
//! With no `--faults`, a built-in known-divergent plan is used: a NoC
//! injection stall at the C-tile crossing the popcount accelerator's
//! line-fetch window. `--faults-b` bisects plan-vs-plan instead of
//! clean-vs-plan.

use std::sync::Arc;

use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_sim::Time;
use duet_system::{FaultKind, FaultPlan, FaultSpec, System, SystemConfig};
use duet_workloads::popcount::PopcountAccel;

/// The shared workload: the quickstart popcount invocation on Dolly-P1M1
/// (one CPU kick, the accelerator streams four lines through the Proxy
/// Cache). Small enough that per-edge fingerprints are cheap, rich enough
/// to cross every subsystem (MMIO, shadow registers, CDC, NoC, MESI).
fn build(plan: &FaultPlan) -> System {
    use duet_core::RegMode;
    let mut cfg = SystemConfig::dolly(1, 1, 189.0);
    cfg.faults = plan.clone();
    let mut sys = System::new(cfg).expect("valid config");
    sys.set_reg_mode(0, RegMode::FpgaBound);
    sys.set_reg_mode(1, RegMode::CpuBound);
    sys.attach_accelerator(Box::new(PopcountAccel::new(true)));
    let vec_addr = 0x1_0000u64;
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    sys.poke_bytes(vec_addr, &data);
    let mmio = sys.config().mmio_base;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], mmio as i64);
    a.li(regs::T[1], vec_addr as i64);
    a.sd(regs::T[1], regs::T[0], 0);
    a.ld(regs::T[2], regs::T[0], 8);
    a.li(regs::T[3], 0x2_0000);
    a.sd(regs::T[2], regs::T[3], 0);
    a.fence();
    a.halt();
    sys.load_program(0, Arc::new(a.assemble().expect("static program")), "main");
    // Edge skipping stays off: both sides must execute the identical edge
    // schedule for "first divergent edge" to be well defined.
    sys.set_edge_skipping(false);
    sys
}

/// The built-in known-divergent plan: stall NoC injection at the C-tile
/// while the accelerator's line fetches are in flight. `NocDelay` is
/// stateless — the stall is re-derived from the plan and the clock at
/// every injection — so the first divergent edge the bisect reports is
/// the first edge where the clean side actually injects a message the
/// faulted side holds, not merely the window opening. The clean run
/// halts at ~353 ns, so a window from 50 ns crosses live traffic.
fn default_plan() -> FaultPlan {
    let cfg = SystemConfig::dolly(1, 1, 189.0);
    FaultPlan {
        seed: 0,
        specs: vec![FaultSpec {
            kind: FaultKind::NocDelay {
                node: cfg.ctile_node(),
            },
            from: Time::from_ns(50),
            until: Time::from_ns(1_000),
        }],
        degrade: None,
    }
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn load_plan(path: &str) -> FaultPlan {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read fault plan {path}: {e}"));
    FaultPlan::parse(&text).unwrap_or_else(|e| panic!("bad fault plan {path}: {e}"))
}

/// Metrics that differ between the two sides at the divergent edge,
/// rendered one per line (`process.*` excluded: process-wide atomics).
fn metric_diff(a: &System, b: &System) -> String {
    let ra = a.metrics_registry();
    let rb = b.metrics_registry();
    let mut out = String::new();
    for (k, va) in ra.iter() {
        if k.starts_with("process.") {
            continue;
        }
        let vb = rb.get(k).unwrap_or(0);
        if va != vb {
            out.push_str(&format!("  {k}: a={va} b={vb}\n"));
        }
    }
    out
}

fn main() {
    let plan_a = arg_value("--faults").map_or_else(FaultPlan::default, |p| load_plan(&p));
    let plan_b = arg_value("--faults-b").map_or_else(
        || {
            if plan_a.is_empty() {
                default_plan()
            } else {
                FaultPlan::default()
            }
        },
        |p| load_plan(&p),
    );
    let quantum = Time::from_ns(
        arg_value("--quantum-ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100),
    );
    let horizon = Time::from_us(
        arg_value("--until-us")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100),
    );

    let mut report = String::new();
    report.push_str("bisect_divergence report\n");
    report.push_str(&format!(
        "side a: {}\n",
        if plan_a.is_empty() {
            "clean".to_string()
        } else {
            plan_a.render().replace('\n', "; ")
        }
    ));
    report.push_str(&format!(
        "side b: {}\n",
        if plan_b.is_empty() {
            "clean".to_string()
        } else {
            plan_b.render().replace('\n', "; ")
        }
    ));
    report.push_str(&format!("quantum: {quantum}, horizon: {horizon}\n"));

    let mut a = build(&plan_a);
    let mut b = build(&plan_b);

    // Coarse phase: advance by the checkpoint quantum, snapshotting while
    // the two sides still agree.
    let mut last_good: Option<(Time, Vec<u8>, Vec<u8>)> = None;
    let mut boundary = Time::ZERO;
    let diverged_boundary = loop {
        if a.divergence_fingerprint() != b.divergence_fingerprint() {
            break boundary;
        }
        if boundary >= horizon {
            report.push_str(&format!(
                "no divergence: fingerprints agree at every checkpoint through {horizon}\n"
            ));
            finish(&report);
            return;
        }
        last_good = Some((boundary, a.snapshot(), b.snapshot()));
        boundary = horizon.min(Time::from_ps(boundary.as_ps() + quantum.as_ps()));
        a.run_until_time(boundary);
        b.run_until_time(boundary);
    };

    // Fine phase: rewind to the last agreeing checkpoint and single-step.
    let from = match &last_good {
        Some((t, snap_a, snap_b)) => {
            a.restore(snap_a).expect("self-restore of side a");
            b.restore(snap_b).expect("self-restore of side b");
            *t
        }
        None => {
            // Diverged before the first checkpoint (differing initial
            // state would be a config bug; report and bail).
            report.push_str("sides differ at time zero — nothing to bisect\n");
            finish(&report);
            std::process::exit(2);
        }
    };
    report.push_str(&format!(
        "coarse: checkpoints agree at {from}, diverge by {diverged_boundary}\n"
    ));

    loop {
        let (ta, da) = a.step_edge();
        let (tb, db) = b.step_edge();
        assert_eq!(
            (ta, da),
            (tb, db),
            "edge schedules must match with edge skipping disabled"
        );
        if a.divergence_fingerprint() != b.divergence_fingerprint() {
            report.push_str(&format!("FIRST DIVERGENT EDGE: {ta} ({da:?} edge)\n"));
            report.push_str(&format!(
                "edges executed from checkpoint: {}\n",
                a.executed_edges()
            ));
            let diff = metric_diff(&a, &b);
            if diff.is_empty() {
                report
                    .push_str("no aggregate metric differs yet (divergence is in queued state)\n");
            } else {
                report.push_str("metrics differing at the divergent edge:\n");
                report.push_str(&diff);
            }
            finish(&report);
            return;
        }
        if ta > diverged_boundary {
            report.push_str(&format!(
                "error: walked past {diverged_boundary} without reproducing the divergence\n"
            ));
            finish(&report);
            std::process::exit(2);
        }
    }
}

fn finish(report: &str) {
    print!("{report}");
    if let Some(path) = arg_value("--out") {
        std::fs::write(&path, report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("# report written to {path}");
    }
}
